"""Heterogeneous edge: base stations and smartphones in one market.

The paper's system model names two EDP hardware classes —
"small-cell/femtocell base stations and smartphones" — while its
mean-field reduction assumes exchangeable EDPs.  This example uses the
multi-population extension (one generic player + density per class,
coupled through the shared Eq. (17) market) to study a 30/70 mix:

* base stations: strong radios (18 MB/s links) and cheap storage
  (low w5);
* smartphones: weaker radios (10 MB/s) and expensive storage
  (high w5).

Run:  python examples/heterogeneous_edge.py
"""

from dataclasses import replace

import numpy as np

from repro import ChannelParameters, MFGCPConfig, MultiPopulationIterator
from repro.analysis.reporting import print_table


def main() -> None:
    base = MFGCPConfig.fast()
    base_station = replace(base, channel=ChannelParameters(bandwidth=18.0), w5=70.0)
    smartphone = replace(base, channel=ChannelParameters(bandwidth=10.0), w5=140.0)

    print("Solving the two-class mean-field equilibrium "
          "(30% base stations, 70% smartphones)...")
    result = MultiPopulationIterator(
        [base_station, smartphone], weights=[0.3, 0.7]
    ).solve()
    print(f"  {result.report.describe()}")

    # ------------------------------------------------------------------
    # Class-level outcomes.
    # ------------------------------------------------------------------
    labels = ("base stations", "smartphones")
    rows = []
    for c, label in enumerate(labels):
        res = result.class_results[c]
        acc = res.accumulated_utility()
        mean_control = res.policy.mean_against(res.density)
        rows.append(
            (
                label,
                float(result.weights[c]),
                float(mean_control.mean()),
                float(res.grid.expectation(res.density[-1], res.grid.q_mesh())),
                acc["staleness_cost"],
                acc["total"],
            )
        )
    print_table(
        ["class", "share", "avg caching rate", "final mean q (MB)",
         "staleness cost", "utility"],
        rows,
        title="\nPer-class equilibrium outcomes",
    )

    # ------------------------------------------------------------------
    # The shared market they both face.
    # ------------------------------------------------------------------
    t = result.market.grid.t
    stride = max(1, len(t) // 6)
    print_table(
        ["t", "market price", "population E[x*]"],
        [
            (f"{t[i]:.2f}", result.market.price[i], result.market.mean_control[i])
            for i in range(0, len(t), stride)
        ],
        title="\nShared market (price couples the classes, Eq. (17))",
    )

    # ------------------------------------------------------------------
    # The story.
    # ------------------------------------------------------------------
    bs, phone = rows[0], rows[1]
    print(
        f"\nBase stations cache harder ({bs[2]:.2f} vs {phone[2]:.2f} average "
        f"rate) thanks to cheap storage, hold more content "
        f"({bs[3]:.1f} vs {phone[3]:.1f} MB remaining), and earn "
        f"{bs[5] / max(phone[5], 1e-9):.2f}x the smartphone utility —\n"
        "while smartphones still benefit from the same depressed market "
        "price the base stations' supply creates."
    )
    print(f"\nPopulation-weighted utility: {result.population_utility():.1f}")


if __name__ == "__main__":
    main()
