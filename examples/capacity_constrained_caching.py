"""Capacity-constrained caching: the knapsack extension of Section IV-C.

The paper's Remark: "MFG-CP can be easily extended to the scenario
whereby the caching capacity of each EDP is less than a fixed
threshold ... the final caching strategy will be further derived by
solving the knapsack problem."

This example solves per-content MFG-CP equilibria for a small catalog,
treats each content's equilibrium cache occupancy as the knapsack
weight and its value function ``V(0)`` as the knapsack value, then
derives capacity-feasible placements with both the fractional
relaxation (natural for continuous caching rates) and the 0/1 dynamic
program (all-or-nothing placement).

Run:  python examples/capacity_constrained_caching.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    ContentCatalog,
    KnapsackItem,
    MFGCPConfig,
    MFGCPSolver,
    MostPopularScheme,
    MultiContentGameSimulator,
    ZipfPopularity,
    capacity_constrained_placement,
    solve_01_knapsack,
    solve_fractional_knapsack,
)
from repro.analysis.reporting import print_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Per-content MFG-CP equilibria over a 5-content catalog.
    # ------------------------------------------------------------------
    base = MFGCPConfig.fast()
    popularity = ZipfPopularity(n_contents=5, exponent=0.9).initial()
    allocations = {}
    values = {}
    rows = []
    for k, pop in enumerate(popularity):
        cfg = replace(
            base,
            popularity=float(pop),
            n_requests=base.n_requests * float(pop) / popularity.mean(),
        )
        result = MFGCPSolver(cfg).solve()
        # Occupancy the strategy would claim: cached amount Q - q.
        occupancy = float(cfg.content_size - result.mean_field.mean_q[-1])
        value = float(
            result.value[0, result.grid.locate(cfg.channel.mean, 70.0)[0],
                         result.grid.locate(cfg.channel.mean, 70.0)[1]]
        )
        allocations[k] = max(occupancy, 1.0)
        values[k] = max(value, 0.0)
        rows.append((f"content-{k}", pop, allocations[k], values[k]))
    print_table(
        ["content", "popularity", "occupancy (MB)", "value V(0)"],
        rows,
        title="Unconstrained MFG-CP allocations",
    )
    demand = sum(allocations.values())

    # ------------------------------------------------------------------
    # 2. Capacity crunch: the EDP can store only part of the demand.
    # ------------------------------------------------------------------
    capacity = 0.5 * demand
    print(f"\nTotal desired occupancy {demand:.1f} MB; capacity {capacity:.1f} MB"
          " -> knapsack required (Section IV-C remark).")

    granted = capacity_constrained_placement(allocations, values, capacity)
    print_table(
        ["content", "desired MB", "granted MB", "fraction kept"],
        [
            (f"content-{k}", allocations[k], granted[k],
             granted[k] / allocations[k])
            for k in sorted(allocations)
        ],
        title="\nFractional knapsack placement (optimal for continuous rates)",
    )
    total_granted = sum(granted.values())
    assert total_granted <= capacity + 1e-9
    print(f"Capacity used: {total_granted:.1f} / {capacity:.1f} MB")

    # ------------------------------------------------------------------
    # 3. All-or-nothing variant (0/1 dynamic program).
    # ------------------------------------------------------------------
    items = [
        KnapsackItem(content_id=k, weight=allocations[k], value=values[k])
        for k in sorted(allocations)
    ]
    selected, total_value = solve_01_knapsack(items, capacity, resolution=1.0)
    print(f"\n0/1 knapsack keeps contents {selected} "
          f"with total value {total_value:.2f}.")

    frac = solve_fractional_knapsack(items, capacity)
    frac_value = sum(frac[item.content_id] * item.value for item in items)
    print(f"Fractional relaxation achieves {frac_value:.2f} "
          "(an upper bound on the 0/1 optimum).")
    assert frac_value >= total_value - 1e-9

    # ------------------------------------------------------------------
    # 4. The joint K-content game with the capacity live in the loop.
    # ------------------------------------------------------------------
    print("\nJoint multi-content game: the knapsack runs inside the "
          "simulation, throttling each EDP's caching claims per step.")
    catalog = ContentCatalog.uniform(5, size_mb=100.0)
    popularity = ZipfPopularity(n_contents=5, exponent=0.9).initial()
    rows = []
    for cap_label, cap in (("uncapped", None), ("200 MB", 200.0), ("100 MB", 100.0)):
        sim = MultiContentGameSimulator(
            config=MFGCPConfig.fast(),
            catalog=catalog,
            popularity=popularity,
            assignments=[(MostPopularScheme, 25)],
            capacity=cap,
            rng=np.random.default_rng(9),
        )
        report = sim.run()
        rows.append(
            (
                cap_label,
                report.total_utility(),
                float(report.throttled_fraction.mean()),
                float(report.capacity_utilisation[-1]) if cap else float("nan"),
            )
        )
    print_table(
        ["capacity", "mean utility", "avg throttled fraction", "final utilisation"],
        rows,
        title="MPC population under shrinking cache budgets",
    )


if __name__ == "__main__":
    main()
