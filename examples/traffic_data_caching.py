"""Urgent traffic-data caching: the timeliness dimension of MFG-CP.

The paper motivates content timeliness with drivers who "hope to
obtain traffic data as soon as possible for route planning" (Def. 2).
This example contrasts two contents with identical popularity but
opposite urgency profiles:

* live traffic flow — high timeliness requirements (drivers),
* archived documentary — low timeliness requirements,

and shows how the urgency factor ``xi^L`` in the caching drift
(Eq. (4)) and the delay penalty shape the equilibrium: urgent content
is held in cache (low remaining space), lax content is discarded
faster and served on demand.

Run:  python examples/traffic_data_caching.py
"""

from dataclasses import replace

import numpy as np

from repro import MFGCPConfig, MFGCPSolver, TimelinessModel, TimelinessTracker
from repro.analysis.reporting import print_table


def solve_for(timeliness: float, label: str):
    config = replace(MFGCPConfig.fast(), timeliness=timeliness)
    result = MFGCPSolver(config).solve()
    acc = result.accumulated_utility()
    return {
        "label": label,
        "timeliness": timeliness,
        "result": result,
        "accumulated": acc,
    }


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Requester populations with different urgency profiles.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(5)
    urgent_model = TimelinessModel(l_max=3.0, shape_a=6.0, shape_b=1.5)  # mass near L_max
    lax_model = TimelinessModel(l_max=3.0, shape_a=1.5, shape_b=6.0)     # mass near 0

    tracker = TimelinessTracker(model=urgent_model, n_contents=2)
    tracker.observe(0, urgent_model.sample(200, rng))   # content 0: traffic
    tracker.observe(1, lax_model.sample(200, rng))      # content 1: documentary
    traffic_l, documentary_l = tracker.current
    print(f"Observed timeliness: traffic data L = {traffic_l:.2f}, "
          f"documentary L = {documentary_l:.2f} (L_max = 3.0)")

    xi = MFGCPConfig.fast().caching.xi
    print(f"Urgency drift factors xi^L: traffic {xi ** traffic_l:.4f}, "
          f"documentary {xi ** documentary_l:.4f} "
          "(smaller factor = slower discarding, Eq. (4))")

    # ------------------------------------------------------------------
    # 2. Solve both equilibria.
    # ------------------------------------------------------------------
    traffic = solve_for(traffic_l, "live traffic flow")
    documentary = solve_for(documentary_l, "archived documentary")

    rows = []
    for item in (traffic, documentary):
        res = item["result"]
        rows.append(
            (
                item["label"],
                item["timeliness"],
                float(res.mean_field.mean_q[-1]),
                float(res.mean_field.mean_control.max()),
                item["accumulated"]["staleness_cost"],
                item["accumulated"]["total"],
            )
        )
    print_table(
        ["content", "L", "final mean q (MB)", "peak E[x*]",
         "staleness cost", "utility"],
        rows,
        title="\nEquilibrium contrast: urgent vs lax content",
    )

    # ------------------------------------------------------------------
    # 3. The mechanism, spelled out.
    # ------------------------------------------------------------------
    t_res = traffic["result"]
    d_res = documentary["result"]
    print(
        "\nMechanism: the documentary's large xi^L discard term keeps pushing"
        "\nits remaining space back up, so EDPs hold less of it "
        f"(final mean q {d_res.mean_field.mean_q[-1]:.1f} MB vs "
        f"{t_res.mean_field.mean_q[-1]:.1f} MB for traffic data),"
        "\nwhile urgent traffic data stays cached to dodge the delay penalty."
    )

    # Trajectories side by side.
    t_axis = t_res.grid.t
    stride = max(1, len(t_axis) // 6)
    print_table(
        ["t", "traffic mean q", "documentary mean q"],
        [
            (f"{t_axis[i]:.2f}",
             t_res.mean_field.mean_q[i],
             d_res.mean_field.mean_q[i])
            for i in range(0, len(t_axis), stride)
        ],
        title="\nMean remaining space over the epoch",
    )


if __name__ == "__main__":
    main()
