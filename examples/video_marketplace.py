"""Edge video marketplace: the paper's motivating scenario, end to end.

Two "edge video providers" (Alice and Bob) and a large population of
peers trade videos whose demand comes from a YouTube-trending-style
trace.  The script walks the full MFG-CP pipeline:

1. generate a synthetic trending trace and derive per-category demand
   (the paper's trace-driven workload, Section V-A);
2. run the Alg. 1 epoch loop over the catalog — record requests, pick
   the active content set K', refresh popularity/timeliness, and solve
   the per-content mean-field equilibrium;
3. show the competition story from the introduction: when many EDPs
   cache the popular video its price falls, shifting some supply to
   the runner-up video;
4. compare MFG-CP against all four baselines in the finite-population
   market for the most popular content.

Run:  python examples/video_marketplace.py
"""

import numpy as np

from repro import (
    ContentCatalog,
    GameSimulator,
    MFGCPConfig,
    MFGCPSolver,
    PopularityTracker,
    RequestProcess,
    SyntheticYouTubeTrace,
    TimelinessModel,
    ZipfPopularity,
    trace_to_popularity,
)
from repro.analysis.experiments import make_scheme
from repro.analysis.reporting import print_table


def main() -> None:
    rng = np.random.default_rng(11)

    # ------------------------------------------------------------------
    # 1. Trace-driven demand (K = 8 categories for a readable demo).
    # ------------------------------------------------------------------
    trace = SyntheticYouTubeTrace(n_videos=1500, rng=rng)
    records = trace.generate()
    labels, shares = trace_to_popularity(records, n_contents=8)
    print_table(
        ["rank", "category", "request share"],
        [(i + 1, labels[i], shares[i]) for i in range(len(labels))],
        title="Trace-derived demand (synthetic YouTube trending)",
    )

    # ------------------------------------------------------------------
    # 2. Algorithm 1 epoch loop over the catalog.
    # ------------------------------------------------------------------
    catalog = ContentCatalog.uniform(len(labels), size_mb=100.0, names=labels)
    config = MFGCPConfig.fast()
    solver = MFGCPSolver(config)
    requests = RequestProcess(
        n_contents=len(catalog),
        rate_per_edp=30.0,
        timeliness_model=TimelinessModel(l_max=3.0),
        rng=rng,
    )
    tracker = PopularityTracker(prior=ZipfPopularity(n_contents=len(catalog)))
    tracker.observe(shares * 1000.0)  # seed the tracker with trace demand

    epochs = solver.run_epochs(
        catalog,
        requests,
        n_epochs=1,
        popularity_tracker=tracker,
        max_active_contents=4,
    )
    epoch = epochs[0]
    rows = []
    for k in epoch.active_contents:
        res = epoch.equilibria[k]
        acc = res.accumulated_utility()
        rows.append(
            (
                catalog[k].name,
                epoch.popularity[k],
                float(res.mean_field.price.mean()),
                float(res.mean_field.mean_control.mean()),
                acc["total"],
            )
        )
    print_table(
        ["content", "popularity", "mean price", "mean caching rate", "utility"],
        rows,
        title="\nEpoch 0: per-content MFG-CP equilibria (active set K')",
    )

    # ------------------------------------------------------------------
    # 3. The Alice-and-Bob competition story: price vs supply.
    # ------------------------------------------------------------------
    print("\nCompetition effect (introduction's Alice & Bob story):")
    top = epoch.active_contents[0]
    res = epoch.equilibria[top]
    i_peak = int(np.argmax(res.mean_field.mean_control))
    print(
        f"  {catalog[top].name!r}: as the population's caching rate peaks at "
        f"E[x*]={res.mean_field.mean_control[i_peak]:.2f}, the unit price drops "
        f"from {res.config.p_hat:.2f} to {res.mean_field.price[i_peak]:.3f} "
        "(supply-demand pressure, Eq. (17))."
    )

    # ------------------------------------------------------------------
    # 4. Scheme shoot-out on the most popular content.
    # ------------------------------------------------------------------
    comparison = []
    for name in ("MFG-CP", "MFG", "UDCS", "MPC", "RR"):
        scheme = make_scheme(name)
        sim = GameSimulator(
            solver.per_content_config(
                content_size=catalog[top].size_mb,
                popularity=float(epoch.popularity[top]),
                timeliness=float(epoch.timeliness[top]),
                n_requests=config.n_requests,
            ),
            [(scheme, 60)],
            rng=np.random.default_rng(3),
        )
        report = sim.run()
        summary = report.scheme_summary(name)
        comparison.append(
            (name, summary["total"], summary["trading_income"],
             summary["staleness_cost"])
        )
    comparison.sort(key=lambda r: -r[1])
    print_table(
        ["scheme", "utility", "trading income", "staleness cost"],
        comparison,
        title=f"\nScheme comparison on {catalog[top].name!r} (M = 60 EDPs)",
    )


if __name__ == "__main__":
    main()
