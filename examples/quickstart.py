"""Quickstart: solve one MFG-CP equilibrium and inspect it.

Solves the mean-field caching/pricing equilibrium for a single content
with the paper's calibrated defaults, prints the convergence report,
the equilibrium market paths, and the accumulated utility breakdown,
then verifies the solution against a finite population of 100 EDPs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GameSimulator, MFGCPConfig, MFGCPScheme, MFGCPSolver
from repro.analysis.metrics import mean_field_gap
from repro.analysis.reporting import print_table


def main() -> None:
    # 1. Configure and solve the mean-field equilibrium (Alg. 2).
    config = MFGCPConfig.paper_default()
    print(f"Solving MFG-CP for one {config.content_size:.0f} MB content, "
          f"M = {config.n_edps} EDPs, horizon T = {config.horizon} ...")
    result = MFGCPSolver(config).solve()
    print(f"  {result.report.describe()}")

    # 2. Equilibrium market paths.
    t = result.grid.t
    stride = max(1, len(t) // 8)
    print_table(
        ["t", "price p_k(t)", "mean control E[x*]", "mean remaining q (MB)"],
        [
            (f"{t[i]:.2f}",
             result.mean_field.price[i],
             result.mean_field.mean_control[i],
             result.mean_field.mean_q[i])
            for i in range(0, len(t), stride)
        ],
        title="\nEquilibrium market paths",
    )

    # 3. Accumulated utility decomposition (Eq. (10) over the horizon).
    acc = result.accumulated_utility()
    print_table(
        ["term", "accumulated value"],
        sorted(acc.items()),
        title="\nAccumulated utility decomposition",
    )

    # 4. The optimal feedback policy is a lookup: x*(t, h, q).
    h = config.channel.mean
    print("\nPolicy samples x*(t, h_mean, q):")
    for q in (20.0, 50.0, 80.0):
        xs = [result.policy(tt, h, q) for tt in (0.0, 0.5, 0.9)]
        print(f"  q={q:5.1f} MB -> x* at t=0/0.5/0.9: "
              + ", ".join(f"{x:.3f}" for x in xs))

    # 5. Validate against the finite-population game.
    sim = GameSimulator(
        config,
        [(MFGCPScheme(equilibrium=result), 100)],
        rng=np.random.default_rng(0),
    )
    report = sim.run()
    gap = mean_field_gap(result, report)
    print(f"\nFinite population (M=100) vs mean field:")
    print(f"  mean utility per EDP : {report.total_utility('MFG-CP'):10.2f}")
    print(f"  mean-field utility   : {acc['total']:10.2f}")
    print(f"  mean-q RMSE          : {gap['mean_q_rmse']:10.3f} MB")
    print(f"  price RMSE           : {gap['price_rmse']:10.4f}")


if __name__ == "__main__":
    main()
