"""Breaking-news cycle: popularity drift across optimization epochs.

The paper assumes demand "changes slowly relative to the time scale of
the optimization epoch" — between epochs it drifts, and Alg. 1's
popularity update (Eq. (3)) is what lets EDPs follow it.  This example
drives that loop with a drifting workload:

1. generate a synthetic trending trace and split it into publish-time
   windows whose category demand shifts (a breaking story displaces
   evergreen content);
2. feed the windows into the popularity tracker epoch by epoch and
   re-solve the per-content equilibrium each time;
3. show the market following the drift: the newly trending content's
   caching rate and equilibrium price response move epoch over epoch,
   and the equilibrium cache allocation shifts with them.

Run:  python examples/breaking_news_cycle.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    MFGCPConfig,
    MFGCPSolver,
    PopularityTracker,
    SyntheticYouTubeTrace,
    ZipfPopularity,
)
from repro.analysis.reporting import print_table
from repro.content.trace import trace_windows


def main() -> None:
    rng = np.random.default_rng(21)

    # ------------------------------------------------------------------
    # 1. A drifting workload: three publish-time windows.
    # ------------------------------------------------------------------
    trace = SyntheticYouTubeTrace(n_videos=2500, zipf_exponent=0.7, rng=rng)
    records = trace.generate()
    # Overlay a breaking story: 'News & Politics' explodes late.
    boosted = [
        replace_views(r, 12) if r.category == "News & Politics" and r.publish_time > 20.0
        else r
        for r in records
    ]
    windows = trace_windows(boosted, n_windows=3, n_contents=6)
    labels = windows[0][0]

    print_table(
        ["window"] + labels,
        [
            (f"w{w}", *[share[i] for i in range(len(labels))])
            for w, (_, share) in enumerate(windows)
        ],
        precision=3,
        title="Demand share per publish-time window (drifting workload)",
    )

    # ------------------------------------------------------------------
    # 2. Epoch loop: tracker absorbs each window, solver re-equilibrates.
    # ------------------------------------------------------------------
    config = MFGCPConfig.fast()
    solver = MFGCPSolver(config)
    tracker = PopularityTracker(
        prior=ZipfPopularity(n_contents=len(labels)), forgetting=0.5
    )
    news_idx = labels.index("News & Politics") if "News & Politics" in labels else 0

    epoch_rows = []
    for w, (_, share) in enumerate(windows):
        popularity = tracker.observe(share * 400.0)  # window request counts
        cfg_news = solver.per_content_config(
            content_size=config.content_size,
            popularity=float(popularity[news_idx]),
            timeliness=2.5,  # breaking news is urgent
            n_requests=config.n_requests * float(popularity[news_idx]) / 0.3,
        )
        result = MFGCPSolver(cfg_news).solve()
        acc = result.accumulated_utility()
        epoch_rows.append(
            (
                f"epoch {w}",
                float(popularity[news_idx]),
                float(result.mean_field.mean_control.max()),
                float(result.mean_field.price.min()),
                float(result.mean_field.mean_q[-1]),
                acc["total"],
            )
        )

    print_table(
        ["epoch", "news popularity", "peak E[x*]", "min price",
         "final mean q", "utility"],
        epoch_rows,
        title="\n'News & Politics' equilibrium, epoch by epoch",
    )

    # ------------------------------------------------------------------
    # 3. The adaptation story.
    # ------------------------------------------------------------------
    first, last = epoch_rows[0], epoch_rows[-1]
    print(
        f"\nAs the story breaks, tracked popularity moves "
        f"{first[1]:.3f} -> {last[1]:.3f}; the population's peak caching rate "
        f"goes {first[2]:.2f} -> {last[2]:.2f} and the competitive price floor "
        f"{first[3]:.3f} -> {last[3]:.3f} (more supply, Eq. (17))."
    )
    if last[1] > first[1]:
        assert last[2] >= first[2] - 0.05, "caching should follow demand up"


def replace_views(record, factor):
    """A record with its views scaled by ``factor`` (drift injection)."""
    from dataclasses import replace as dc_replace

    return dc_replace(record, views=record.views * factor)


if __name__ == "__main__":
    main()
