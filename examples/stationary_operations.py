"""Operating the market forever: stationary regime + decision support.

The paper optimises one finite epoch; an operator running the edge
market continuously wants three further answers this library provides:

1. **The stationary regime** — the infinite-horizon discounted
   equilibrium (no end-of-epoch wind-down): where does the population
   settle, and what does steady-state maintenance caching look like?
2. **Which knobs matter** — elasticities of the equilibrium outputs to
   the pricing/cost parameters (sensitivity analysis).
3. **How sure are we** — confidence intervals on the finite-population
   utility across seeds (Monte-Carlo replication).

Run:  python examples/stationary_operations.py
"""

import numpy as np

from repro import MFGCPConfig, MFGCPSolver, StationarySolver
from repro.analysis.replication import replicate_scheme_utility
from repro.analysis.reporting import print_table
from repro.analysis.sensitivity import format_sensitivity, sensitivity_analysis


def main() -> None:
    config = MFGCPConfig.fast()

    # ------------------------------------------------------------------
    # 1. Finite epoch vs stationary regime.
    # ------------------------------------------------------------------
    print("Solving the finite-epoch and stationary equilibria...")
    finite = MFGCPSolver(config).solve()
    stationary = StationarySolver(config, discount=1.0).solve()

    h_mid = config.channel.mean
    drift = config.caching_drift()
    balance = float(
        drift.equilibrium_control(config.popularity, config.timeliness)
    )
    print_table(
        ["regime", "mean remaining q (MB)", "mean caching rate", "price"],
        [
            ("finite epoch (at T)",
             float(finite.mean_field.mean_q[-1]),
             float(finite.mean_field.mean_control[-1]),
             float(finite.mean_field.price[-1])),
            ("stationary",
             stationary.mean_q,
             stationary.mean_control,
             stationary.price),
        ],
        title="\nFinite horizon vs infinite horizon",
    )
    print(
        f"\nThe finite epoch winds caching down to zero as T approaches "
        f"(V(T)=0), leaving ~{finite.mean_field.mean_q[-1]:.0f} MB uncached; "
        f"the stationary population caches essentially everything "
        f"({stationary.mean_q:.1f} MB remaining) and holds it with a "
        f"maintenance rate ~{stationary.policy[stationary.grid.n_h // 2, 0]:.2f} "
        f"(the drift balance point is {balance:.2f})."
    )

    # ------------------------------------------------------------------
    # 2. Sensitivity: which knobs move the equilibrium.
    # ------------------------------------------------------------------
    print("\nComputing equilibrium elasticities (this re-solves 2x per "
          "parameter)...")
    rows = sensitivity_analysis(
        config=config, parameters=("p_hat", "eta1", "eta2", "w5"), rel_step=0.1
    )
    print(format_sensitivity(rows))
    dominant = max(
        rows, key=lambda r: abs(r.elasticities["total_utility"])
    )
    print(f"\nThe utility is most sensitive to {dominant.parameter!r} "
          f"(elasticity {dominant.elasticities['total_utility']:.2f}).")

    # ------------------------------------------------------------------
    # 3. Replication: utility with a confidence interval.
    # ------------------------------------------------------------------
    print("\nReplicating the finite-population game across seeds...")
    stat = replicate_scheme_utility(
        "MFG-CP", config, n_edps=60, seeds=range(6)
    )
    mf_total = finite.accumulated_utility()["total"]
    print(f"  {stat.describe()}")
    print(
        f"  mean-field prediction: {mf_total:.2f} "
        f"({(stat.mean - mf_total) / mf_total * 100:+.1f}% finite-M gap; the "
        "simulated population earns a small extra sharing bonus the "
        "mean-field estimator prices conservatively)."
    )


if __name__ == "__main__":
    main()
