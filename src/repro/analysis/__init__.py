"""Analysis and reporting utilities.

Metrics over simulation reports and equilibrium results
(:mod:`repro.analysis.metrics`), convergence diagnostics
(:mod:`repro.analysis.convergence`), and the table/series printers the
benchmark harness uses to emit paper-style rows
(:mod:`repro.analysis.reporting`).
"""

from repro.analysis.metrics import (
    accumulate,
    mean_field_gap,
    scheme_comparison,
    utility_ratio,
)
from repro.analysis.convergence import (
    fixed_point_rate,
    iterations_to_tolerance,
    is_monotone_tail,
)
from repro.analysis.reporting import (
    format_heatmap,
    format_series,
    format_table,
    print_table,
)
from repro.analysis.export import (
    export_equilibrium,
    write_json,
    write_rows_csv,
    write_series_csv,
)
from repro.analysis.sensitivity import (
    SensitivityRow,
    equilibrium_outputs,
    format_sensitivity,
    sensitivity_analysis,
)
from repro.analysis.replication import (
    ReplicatedStatistic,
    replicate,
    replicate_scheme_utility,
    summarise,
)

__all__ = [
    "accumulate",
    "mean_field_gap",
    "scheme_comparison",
    "utility_ratio",
    "fixed_point_rate",
    "iterations_to_tolerance",
    "is_monotone_tail",
    "format_table",
    "format_series",
    "format_heatmap",
    "print_table",
    "export_equilibrium",
    "write_json",
    "write_rows_csv",
    "write_series_csv",
    "SensitivityRow",
    "equilibrium_outputs",
    "format_sensitivity",
    "sensitivity_analysis",
    "ReplicatedStatistic",
    "replicate",
    "replicate_scheme_utility",
    "summarise",
]
