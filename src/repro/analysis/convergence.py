"""Convergence diagnostics for the fixed-point iteration (Thm. 2)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.equilibrium import ConvergenceReport


def fixed_point_rate(report: ConvergenceReport) -> float:
    """Empirical geometric contraction rate of the iteration.

    Fits ``log(change_k) ~ log(c) + k log(rate)`` over the recorded
    policy changes; a rate below 1 is the numerical counterpart of the
    contraction-mapping argument in Theorem 2.  Returns ``nan`` when
    fewer than three informative points exist.
    """
    changes = np.array(
        [r.policy_change for r in report.history if r.policy_change > 0], dtype=float
    )
    if changes.size < 3:
        return float("nan")
    k = np.arange(changes.size, dtype=float)
    slope = np.polyfit(k, np.log(changes), 1)[0]
    return float(np.exp(slope))


def iterations_to_tolerance(report: ConvergenceReport, tolerance: float) -> int:
    """First iteration whose policy change dropped below ``tolerance``.

    Returns ``-1`` when the threshold was never reached.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    for record in report.history:
        if record.policy_change < tolerance:
            return record.iteration
    return -1


def is_monotone_tail(values: Sequence[float], tail: int = 5, decreasing: bool = True) -> bool:
    """Whether the last ``tail`` values are (weakly) monotone.

    Used by tests asserting that policy changes shrink toward the
    fixed point and that simulated utilities stabilise (Fig. 9).
    """
    if tail < 2:
        raise ValueError(f"tail must be at least 2, got {tail}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size < tail:
        tail = arr.size
    if tail < 2:
        return True
    window = arr[-tail:]
    diffs = np.diff(window)
    return bool(np.all(diffs <= 1e-12)) if decreasing else bool(np.all(diffs >= -1e-12))
