"""Local sensitivity analysis of the equilibrium to model parameters.

For operators tuning an MFG-CP deployment the first question is which
knobs matter: this module perturbs scalar configuration fields by a
relative step, re-solves the equilibrium, and reports the elasticity

    (d output / output) / (d theta / theta)

of selected equilibrium outputs (accumulated utility, trading income,
final mean cache state, minimum price) with respect to each parameter.
Central differences are used so first-order elasticities are exact up
to the solver's own tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.best_response import BestResponseIterator
from repro.core.equilibrium import EquilibriumResult
from repro.core.parameters import MFGCPConfig

DEFAULT_PARAMETERS = ("p_hat", "eta1", "eta2", "w4", "w5", "sharing_price")
DEFAULT_OUTPUTS = ("total_utility", "trading_income", "final_mean_q", "min_price")


@dataclass(frozen=True)
class SensitivityRow:
    """Elasticities of the tracked outputs for one parameter."""

    parameter: str
    base_value: float
    elasticities: Dict[str, float]

    def dominant_output(self) -> str:
        """The output this parameter moves the most (by |elasticity|)."""
        return max(self.elasticities, key=lambda k: abs(self.elasticities[k]))


def equilibrium_outputs(result: EquilibriumResult) -> Dict[str, float]:
    """The scalar outputs tracked by the sensitivity analysis."""
    acc = result.accumulated_utility()
    return {
        "total_utility": float(acc["total"]),
        "trading_income": float(acc["trading_income"]),
        "final_mean_q": float(result.mean_field.mean_q[-1]),
        "min_price": float(result.mean_field.price.min()),
    }


def _solve_outputs(config: MFGCPConfig) -> Dict[str, float]:
    return equilibrium_outputs(BestResponseIterator(config).solve())


def sensitivity_analysis(
    config: Optional[MFGCPConfig] = None,
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    rel_step: float = 0.1,
    outputs: Sequence[str] = DEFAULT_OUTPUTS,
) -> List[SensitivityRow]:
    """Central-difference elasticities of the equilibrium outputs.

    Parameters
    ----------
    config:
        Base configuration (coarse ``fast()`` default).
    parameters:
        Scalar, strictly positive config fields to perturb.
    rel_step:
        Relative perturbation size ``h`` (each parameter is solved at
        ``(1 - h) theta`` and ``(1 + h) theta``).
    outputs:
        Subset of :func:`equilibrium_outputs` keys to report.

    Returns
    -------
    list of :class:`SensitivityRow`
        One row per parameter, in the requested order.
    """
    if not 0.0 < rel_step < 1.0:
        raise ValueError(f"rel_step must lie in (0, 1), got {rel_step}")
    cfg = MFGCPConfig.fast() if config is None else config
    base_outputs = _solve_outputs(cfg)
    unknown = set(outputs) - set(base_outputs)
    if unknown:
        raise KeyError(f"unknown outputs: {sorted(unknown)}")

    rows: List[SensitivityRow] = []
    for name in parameters:
        if not hasattr(cfg, name):
            raise AttributeError(f"config has no field {name!r}")
        theta = float(getattr(cfg, name))
        if theta <= 0:
            raise ValueError(
                f"sensitivity requires a positive base value for {name!r}, "
                f"got {theta}"
            )
        lo = _solve_outputs(replace(cfg, **{name: theta * (1.0 - rel_step)}))
        hi = _solve_outputs(replace(cfg, **{name: theta * (1.0 + rel_step)}))
        elasticities = {}
        for key in outputs:
            base = base_outputs[key]
            denom = abs(base) if abs(base) > 1e-9 else 1.0
            derivative = (hi[key] - lo[key]) / (2.0 * rel_step)
            elasticities[key] = float(derivative / denom)
        rows.append(
            SensitivityRow(parameter=name, base_value=theta, elasticities=elasticities)
        )
    return rows


def format_sensitivity(rows: Sequence[SensitivityRow]) -> str:
    """A compact text rendering of the elasticity table."""
    from repro.analysis.reporting import format_table

    if not rows:
        raise ValueError("no sensitivity rows to format")
    outputs = list(rows[0].elasticities)
    table_rows = [
        (row.parameter, row.base_value, *(row.elasticities[k] for k in outputs))
        for row in rows
    ]
    return format_table(
        ["parameter", "base"] + [f"d{k}" for k in outputs],
        table_rows,
        title="Equilibrium elasticities (relative output change per "
              "relative parameter change)",
    )
