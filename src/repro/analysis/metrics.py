"""Metrics over equilibrium results and simulation reports."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.equilibrium import EquilibriumResult
from repro.game.simulator import SimulationReport

# numpy 2.0 renamed trapz to trapezoid; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def accumulate(series: np.ndarray, times: np.ndarray) -> float:
    """Time-integral of a rate series (accumulated utility/income)."""
    series = np.asarray(series, dtype=float)
    times = np.asarray(times, dtype=float)
    if series.shape != times.shape:
        raise ValueError(f"series {series.shape} and times {times.shape} differ")
    return float(_trapezoid(series, times))


def scheme_comparison(
    reports: Dict[str, SimulationReport],
) -> List[Tuple[str, float, float, float]]:
    """Comparison rows across per-scheme simulation reports.

    Parameters
    ----------
    reports:
        Mapping of scheme name to the homogeneous-population report for
        that scheme.

    Returns
    -------
    list of tuples
        ``(scheme, utility, trading_income, staleness_cost)`` rows,
        sorted by descending utility (paper ordering: MFG-CP first).
    """
    rows = []
    for name, report in reports.items():
        summary = report.scheme_summary(name)
        rows.append(
            (
                name,
                summary["total"],
                summary["trading_income"],
                summary["staleness_cost"],
            )
        )
    rows.sort(key=lambda r: -r[1])
    return rows


def utility_ratio(reports: Dict[str, SimulationReport], scheme: str, baseline: str) -> float:
    """Utility of ``scheme`` divided by ``baseline`` (paper's "2.76x").

    Raises ``ValueError`` when the baseline utility is non-positive
    (the ratio is meaningless there).
    """
    num = reports[scheme].total_utility(scheme)
    den = reports[baseline].total_utility(baseline)
    if den <= 0:
        raise ValueError(
            f"baseline {baseline!r} has non-positive utility {den}; ratio undefined"
        )
    return float(num / den)


def mean_field_gap(
    result: EquilibriumResult, report: SimulationReport
) -> Dict[str, float]:
    """How well the mean field predicts the finite population.

    Compares the FPK mean cache state and mean-field price against the
    simulated population's series.  Both gaps should shrink as ``M``
    grows (the propagation-of-chaos property behind Eq. (14)).
    """
    sim_q = np.asarray(report.series["mean_remaining"], dtype=float)
    mf_q = np.asarray(result.mean_field.mean_q, dtype=float)
    sim_p = np.asarray(report.series["mean_price"], dtype=float)
    mf_p = np.asarray(result.mean_field.price, dtype=float)
    n = min(sim_q.shape[0], mf_q.shape[0])
    return {
        "mean_q_rmse": float(np.sqrt(np.mean((sim_q[:n] - mf_q[:n]) ** 2))),
        "price_rmse": float(np.sqrt(np.mean((sim_p[:n] - mf_p[:n]) ** 2))),
        "mean_q_max_gap": float(np.max(np.abs(sim_q[:n] - mf_q[:n]))),
        "price_max_gap": float(np.max(np.abs(sim_p[:n] - mf_p[:n]))),
    }
