"""Plain-text table and series formatting for the benchmark harness.

Every benchmark prints the rows/series the paper's figure or table
reports; these helpers keep the output format uniform and easy to
diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

Cell = Union[str, float, int]


def _render(cell: Cell, precision: int) -> str:
    if isinstance(cell, str):
        return cell
    if isinstance(cell, (int, np.integer)):
        return str(int(cell))
    return f"{float(cell):.{precision}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 4,
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cells; strings pass through, numbers are formatted to
        ``precision`` decimals.
    title:
        Optional title line above the table.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [_render(c, precision) for c in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells for {len(headers)} headers: {cells}"
            )
        rendered.append(cells)

    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for idx, row in enumerate(rendered):
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if idx == 0:
            lines.append(sep)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 4,
    title: str = "",
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(headers, rows, precision=precision, title=title))


_SHADES = " .:-=+*#%@"


def format_heatmap(
    field: np.ndarray,
    row_labels: Sequence[float],
    col_labels: Sequence[float],
    title: str = "",
    max_cols: int = 48,
) -> str:
    """Render a non-negative 2-D field as an ASCII heat map.

    Rows are printed top-to-bottom in the given order; columns are
    subsampled to at most ``max_cols``.  Intensity is normalised to the
    field's maximum, using a 10-level shade ramp — enough to eyeball
    the Fig. 4/6/7 density structure in a terminal.

    Parameters
    ----------
    field:
        Values of shape ``(n_rows, n_cols)``; must be non-negative.
    row_labels / col_labels:
        Axis coordinates (e.g. times and cache states).
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError(f"field must be 2-D, got ndim={field.ndim}")
    if field.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"field shape {field.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    if np.any(field < 0):
        raise ValueError("heat map field must be non-negative")
    if max_cols < 2:
        raise ValueError(f"max_cols must be at least 2, got {max_cols}")

    stride = max(1, int(np.ceil(field.shape[1] / max_cols)))
    sampled = field[:, ::stride]
    cols = np.asarray(col_labels, dtype=float)[::stride]
    peak = sampled.max()
    lines = []
    if title:
        lines.append(title)
    label_width = max(len(f"{r:g}") for r in row_labels)
    for r, row in zip(row_labels, sampled):
        if peak > 0:
            levels = np.minimum(
                (row / peak * (len(_SHADES) - 1)).astype(int), len(_SHADES) - 1
            )
        else:
            levels = np.zeros(row.shape, dtype=int)
        cells = "".join(_SHADES[level] for level in levels)
        lines.append(f"{r:>{label_width}g} |{cells}|")
    lines.append(
        f"{'':>{label_width}}  {cols[0]:g} ... {cols[-1]:g} "
        f"(peak {peak:.4g})"
    )
    return "\n".join(lines)


def format_series(
    name: str,
    times: Sequence[float],
    values: Sequence[float],
    every: int = 1,
    precision: int = 4,
) -> str:
    """Render a named time series as ``t=...: v`` lines.

    Parameters
    ----------
    every:
        Subsampling stride (benchmarks print every few points to keep
        the output readable).
    """
    if every < 1:
        raise ValueError(f"every must be positive, got {every}")
    times = np.asarray(list(times), dtype=float)
    values = np.asarray(list(values), dtype=float)
    if times.shape != values.shape:
        raise ValueError(f"times {times.shape} and values {values.shape} differ")
    lines = [name]
    for t, v in zip(times[::every], values[::every]):
        lines.append(f"  t={t:.3f}: {v:.{precision}f}")
    return "\n".join(lines)
