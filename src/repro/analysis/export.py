"""Structured export of experiment results.

Benchmarks print paper-style rows; downstream users usually also want
machine-readable artifacts to plot or diff.  This module writes

* generic row tables to CSV (:func:`write_rows_csv`),
* labelled time series to CSV with a shared time column
  (:func:`write_series_csv`),
* a solved equilibrium's full state (market paths, policy slices,
  marginal density) to a directory of CSVs
  (:func:`export_equilibrium`),
* serving-replay comparison tables from :mod:`repro.serve`
  (:func:`export_serving`), and
* arbitrary metadata to JSON (:func:`write_json`).

Everything is plain ``csv`` / ``json`` from the standard library — no
plotting dependency is required to consume the outputs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Union

import numpy as np

from repro.core.equilibrium import EquilibriumResult

Cell = Union[str, float, int]


def write_rows_csv(path: Union[str, Path], headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> Path:
    """Write a header + rows table to CSV; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells for {len(headers)} headers: {row!r}"
                )
            writer.writerow(list(row))
    return path


def write_series_csv(
    path: Union[str, Path],
    times: Sequence[float],
    series: Mapping[str, Sequence[float]],
) -> Path:
    """Write labelled time series sharing one time axis to CSV."""
    times = np.asarray(list(times), dtype=float)
    columns: Dict[str, np.ndarray] = {}
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=float)
        if arr.shape != times.shape:
            raise ValueError(
                f"series {name!r} has shape {arr.shape}, time axis {times.shape}"
            )
        columns[name] = arr
    headers = ["time"] + list(columns)
    rows = [
        [times[i]] + [columns[name][i] for name in columns]
        for i in range(times.shape[0])
    ]
    return write_rows_csv(path, headers, rows)


def write_json(path: Union[str, Path], payload: Mapping) -> Path:
    """Write a JSON document (numpy scalars/arrays are converted)."""

    def default(obj):
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.bool_):
            return bool(obj)
        raise TypeError(f"not JSON-serialisable: {type(obj)!r}")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=default), encoding="utf-8")
    return path


def export_equilibrium(result: EquilibriumResult, directory: Union[str, Path]) -> List[Path]:
    """Dump a solved equilibrium to a directory of CSV/JSON artifacts.

    Produces:

    * ``market_paths.csv`` — price, mean control, mean cache state,
      sharing benefit per reporting time;
    * ``utility_paths.csv`` — the Eq. (10) decomposition per time;
    * ``policy_t0.csv`` / ``policy_mid.csv`` — x*(q) slices at the
      start and midpoint of the epoch (Fig. 5's data);
    * ``density_marginal.csv`` — the marginal density over q per time
      (Figs. 4/6/7's data);
    * ``summary.json`` — convergence report + accumulated utilities.

    Returns the list of files written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    mf = result.mean_field
    written.append(
        write_series_csv(
            directory / "market_paths.csv",
            result.grid.t,
            {
                "price": mf.price,
                "mean_control": mf.mean_control,
                "mean_remaining_mb": mf.mean_q,
                "sharing_benefit": mf.sharing_benefit,
                "n_requests": mf.n_requests,
            },
        )
    )
    written.append(
        write_series_csv(
            directory / "utility_paths.csv",
            result.grid.t,
            result.population_utility_path(),
        )
    )

    h_mid = float(result.config.channel.mean)
    for label, t in (("t0", 0.0), ("mid", 0.5 * result.config.horizon)):
        written.append(
            write_rows_csv(
                directory / f"policy_{label}.csv",
                ["q_mb", "x_star"],
                zip(result.grid.q, result.policy.q_profile(t, h_mid)),
            )
        )

    marginal = result.marginal_q_path()
    headers = ["time"] + [f"q={q:.1f}" for q in result.grid.q]
    rows = [
        [result.grid.t[ti]] + list(marginal[ti]) for ti in range(marginal.shape[0])
    ]
    written.append(write_rows_csv(directory / "density_marginal.csv", headers, rows))

    written.append(
        write_json(
            directory / "summary.json",
            {
                "converged": result.report.converged,
                "n_iterations": result.report.n_iterations,
                "final_policy_change": result.report.final_policy_change,
                "accumulated_utility": result.accumulated_utility(),
                "content_size_mb": result.config.content_size,
                "n_edps": result.config.n_edps,
                "horizon": result.config.horizon,
            },
        )
    )
    return written


def export_serving(reports, directory: Union[str, Path]) -> List[Path]:
    """Dump serving replay reports (see :mod:`repro.serve`) to CSV/JSON.

    Thin convenience front for
    :func:`repro.serve.report.export_serving_reports`, imported lazily
    because :mod:`repro.serve` builds *on* this module's primitives.
    """
    from repro.serve.report import export_serving_reports

    return export_serving_reports(reports, directory)
