"""Experiment harness: one function per paper figure/table.

Each function reproduces the workload behind one element of the
paper's evaluation section (Figs. 3-14, Table II) and returns plain
data structures (dicts of numpy arrays / row lists).  The benchmark
suite wraps these functions with pytest-benchmark and prints the
series/rows; the examples reuse them directly.

Keeping the experiment logic here — rather than inside the benches —
makes every figure reproducible from library code alone:

>>> from repro.analysis import experiments
>>> rows = experiments.fig14_scheme_comparison()  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import CachingScheme
from repro.baselines.mfg_cp import MFGCPScheme
from repro.baselines.mfg_nosharing import MFGNoSharingScheme
from repro.baselines.most_popular import MostPopularScheme
from repro.baselines.random_replacement import RandomReplacementScheme
from repro.baselines.udcs import UDCSScheme
from repro.core.best_response import BestResponseIterator
from repro.core.equilibrium import EquilibriumResult
from repro.core.parameters import MFGCPConfig
from repro.game.simulator import GameSimulator, SimulationReport
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry
from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess

SCHEME_ORDER = ("MFG-CP", "MFG", "UDCS", "MPC", "RR")


def default_config(fast: bool = True) -> MFGCPConfig:
    """The configuration experiments run on (coarse grid by default)."""
    return MFGCPConfig.fast() if fast else MFGCPConfig.paper_default()


def make_scheme(name: str) -> CachingScheme:
    """Instantiate a scheme by its paper name."""
    factory = {
        "MFG-CP": MFGCPScheme,
        "MFG": MFGNoSharingScheme,
        "UDCS": UDCSScheme,
        "MPC": MostPopularScheme,
        "RR": RandomReplacementScheme,
    }
    if name not in factory:
        raise KeyError(f"unknown scheme {name!r}; choose from {sorted(factory)}")
    return factory[name]()


# ----------------------------------------------------------------------
# Fig. 3 — channel evolution under the OU law
# ----------------------------------------------------------------------
def fig3_channel_evolution(
    long_term_means: Sequence[float] = (2.0, 5.0, 8.0),
    volatilities: Sequence[float] = (0.1, 0.5, 1.0),
    h0: float = 1.0,
    horizon: float = 10.0,
    n_steps: int = 1000,
    seed: int = 3,
) -> Dict[str, np.ndarray]:
    """Sample OU paths for the Fig. 3 mean/volatility sweeps.

    Returns a dict mapping series labels (``mean=5.0, vol=0.5``) to
    sample paths, plus the shared ``time`` axis.  The paper's claims:
    every path reverts to its long-term mean; larger rho_h gives a
    noisier trajectory.
    """
    out: Dict[str, np.ndarray] = {}
    times = None
    for mean in long_term_means:
        for vol in volatilities:
            ou = OrnsteinUhlenbeckProcess(
                reversion=4.0,
                mean=mean,
                volatility=vol,
                rng=np.random.default_rng(seed),
            )
            path = ou.sample_path(h0=h0, t1=horizon, n_steps=n_steps)
            out[f"mean={mean}, vol={vol}"] = path.values[:, 0]
            times = path.times
    assert times is not None
    out["time"] = times
    return out


# ----------------------------------------------------------------------
# Figs. 4-5 — mean-field density and policy at equilibrium
# ----------------------------------------------------------------------
def solve_equilibrium(
    config: Optional[MFGCPConfig] = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> EquilibriumResult:
    """Solve the single-content equilibrium used by Figs. 4-11."""
    cfg = default_config() if config is None else config
    return BestResponseIterator(cfg, telemetry=telemetry).solve()


def fig4_meanfield_evolution(
    config: Optional[MFGCPConfig] = None,
    result: Optional[EquilibriumResult] = None,
) -> Dict[str, np.ndarray]:
    """The Fig. 4 surface: marginal density over q at each time."""
    res = solve_equilibrium(config) if result is None else result
    return {
        "time": res.grid.t,
        "q": res.grid.q,
        "density": res.marginal_q_path(),
        "mean_q": res.mean_remaining_space(),
    }


def fig5_policy_evolution(
    config: Optional[MFGCPConfig] = None,
    caching_states: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0),
    result: Optional[EquilibriumResult] = None,
) -> Dict[str, np.ndarray]:
    """The Fig. 5 surface: x*(t, q) plus the fixed-q time profiles."""
    res = solve_equilibrium(config) if result is None else result
    h_mid = float(res.config.channel.mean)
    profiles = {
        f"q={q0:g}": res.policy.time_profile(h_mid, q0) for q0 in caching_states
    }
    return {
        "time": res.grid.t,
        "q": res.grid.q,
        "policy_q_profile_t0": res.policy.q_profile(0.0, h_mid),
        "policy_q_profile_mid": res.policy.q_profile(
            0.5 * res.config.horizon, h_mid
        ),
        **profiles,
    }


# ----------------------------------------------------------------------
# Figs. 6-7 — heat maps over content size and initial dispersion
# ----------------------------------------------------------------------
def fig67_heatmap(
    content_sizes: Sequence[float] = (60.0, 80.0, 100.0, 120.0),
    initial_std_fraction: float = 0.1,
    config: Optional[MFGCPConfig] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Per-``Q_k`` marginal density paths (Fig. 6: std 0.1; Fig. 7: 0.05)."""
    base = default_config() if config is None else config
    base = replace(base, initial_std_fraction=initial_std_fraction)
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for q_size in content_sizes:
        cfg = base.with_content_size(q_size)
        res = BestResponseIterator(cfg).solve()
        out[float(q_size)] = {
            "time": res.grid.t,
            "q": res.grid.q,
            "density": res.marginal_q_path(),
            "mean_q": res.mean_remaining_space(),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 8 — placement-cost coefficient sweep
# ----------------------------------------------------------------------
def fig8_w5_sweep(
    w5_values: Sequence[float] = (90.0, 130.0, 170.0, 215.0),
    config: Optional[MFGCPConfig] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Mean cache state and staleness cost per ``w5`` value.

    The paper sweeps ``w5 in [0.65, 1.55] * base``; we sweep the same
    relative range around the calibrated base.  Expected shape: larger
    ``w5`` suppresses caching (remaining space falls more slowly) and
    raises the staleness cost.
    """
    base = default_config() if config is None else config
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for w5 in w5_values:
        cfg = replace(base, w5=float(w5))
        res = BestResponseIterator(cfg).solve()
        paths = res.population_utility_path()
        out[float(w5)] = {
            "time": res.grid.t,
            "mean_q": res.mean_remaining_space(),
            "staleness_cost": paths["staleness_cost"],
            "accumulated_staleness": np.array(
                [res.accumulated_utility()["staleness_cost"]]
            ),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 9 — convergence from different initial caching states
# ----------------------------------------------------------------------
def fig9_convergence(
    initial_states: Sequence[float] = (30.0, 50.0, 70.0, 90.0),
    config: Optional[MFGCPConfig] = None,
    result: Optional[EquilibriumResult] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Cache-state and utility trajectories from each ``q_k(0)``.

    Expected shape (paper): the largest initial remaining space has the
    lowest utility at first; every trajectory stabilises.
    """
    res = solve_equilibrium(config) if result is None else result
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for q0 in initial_states:
        out[float(q0)] = {
            "time": res.grid.t,
            "caching_state": res.mean_state_trajectory(q0),
            "utility": res.state_utility_rate_path(q0),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 10 — initial-distribution sweep
# ----------------------------------------------------------------------
def fig10_initial_distribution(
    mean_fractions: Sequence[float] = (0.5, 0.6, 0.7, 0.8),
    config: Optional[MFGCPConfig] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Utility and average sharing benefit per initial mean."""
    base = default_config() if config is None else config
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for mean in mean_fractions:
        cfg = replace(base, initial_mean_fraction=float(mean))
        res = BestResponseIterator(cfg).solve()
        paths = res.population_utility_path()
        out[float(mean)] = {
            "time": res.grid.t,
            "utility": paths["total"],
            "sharing_benefit": res.mean_field.sharing_benefit,
        }
    return out


# ----------------------------------------------------------------------
# Fig. 11 — eta1 sweep over time
# ----------------------------------------------------------------------
def fig11_eta1_timeseries(
    eta1_values: Sequence[float] = (1e-3, 2e-3, 3e-3, 4e-3),
    config: Optional[MFGCPConfig] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Utility and trading income over time per ``eta1``.

    Expected shape: utility rises over time while trading income
    decays; a larger ``eta1`` lowers both.
    """
    base = default_config() if config is None else config
    # Requesters leave the market once served; this demand saturation
    # is what drives the paper's within-epoch trading-income decline.
    base = replace(base, demand_decay=1.0)
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for eta1 in eta1_values:
        cfg = replace(base, eta1=float(eta1))
        res = BestResponseIterator(cfg).solve()
        paths = res.population_utility_path()
        out[float(eta1)] = {
            "time": res.grid.t,
            "utility": paths["total"],
            "trading_income": paths["trading_income"],
            "price": res.mean_field.price,
        }
    return out


# ----------------------------------------------------------------------
# Figs. 12-14 + Table II — finite-population scheme comparisons
# ----------------------------------------------------------------------
def run_scheme(
    name: str,
    config: MFGCPConfig,
    n_edps: int,
    seed: int = 7,
    telemetry: Optional[SolverTelemetry] = None,
) -> SimulationReport:
    """One homogeneous-population run of a named scheme."""
    scheme = make_scheme(name)
    sim = GameSimulator(
        config,
        [(scheme, n_edps)],
        rng=np.random.default_rng(seed),
        telemetry=telemetry,
    )
    return sim.run()


def run_scheme_summary(
    name: str,
    config: MFGCPConfig,
    n_edps: int,
    seeds: Sequence[int] = (7, 8, 9),
    telemetry: Optional[SolverTelemetry] = None,
    ) -> Dict[str, float]:
    """Seed-averaged accumulated Eq. (10) terms for one scheme.

    The scheme is prepared once (one mean-field solve for the
    model-based schemes) and simulated under each seed; the summaries
    are averaged to suppress simulation noise in the comparison
    figures.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    scheme = make_scheme(name)
    totals: Dict[str, float] = {}
    for seed in seeds:
        sim = GameSimulator(
            config,
            [(scheme, n_edps)],
            rng=np.random.default_rng(seed),
            telemetry=telemetry,
        )
        report = sim.run()
        summary = report.scheme_summary(name)
        summary["mean_control"] = float(report.series["mean_control"].mean())
        for key, value in summary.items():
            totals[key] = totals.get(key, 0.0) + value
    return {key: value / len(seeds) for key, value in totals.items()}


def fig12_total_vs_eta1(
    eta1_values: Sequence[float] = (1e-3, 2e-3, 3e-3, 4e-3),
    schemes: Sequence[str] = SCHEME_ORDER,
    n_edps: int = 60,
    config: Optional[MFGCPConfig] = None,
    seed: int = 7,
) -> List[Tuple[float, str, float, float]]:
    """Rows ``(eta1, scheme, total utility, total trading income)``.

    Expected shape: utility decreases in ``eta1`` for every scheme;
    MFG-CP has the highest utility; MFG has the higher trading income.
    """
    base = default_config() if config is None else config
    rows: List[Tuple[float, str, float, float]] = []
    for eta1 in eta1_values:
        cfg = replace(base, eta1=float(eta1))
        for name in schemes:
            summary = run_scheme_summary(
                name, cfg, n_edps, seeds=(seed, seed + 1, seed + 2)
            )
            rows.append(
                (float(eta1), name, summary["total"], summary["trading_income"])
            )
    return rows


def fig13_popularity_sweep(
    popularity_values: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
    schemes: Sequence[str] = SCHEME_ORDER,
    n_edps: int = 60,
    config: Optional[MFGCPConfig] = None,
    seed: int = 7,
) -> List[Tuple[float, str, float, float, float]]:
    """Rows ``(popularity, scheme, utility, staleness cost, mean control)``.

    Expected shape: MFG-CP has the highest utility and a low staleness
    cost everywhere; UDCS's *decisions* vary least with popularity (its
    cost-only objective ignores the market — the paper's "minimal
    variations"); higher popularity raises utility (more requests,
    more income).
    """
    base = default_config() if config is None else config
    rows: List[Tuple[float, str, float, float, float]] = []
    for pop in popularity_values:
        # Higher popularity also means more requests for the content.
        cfg = replace(
            base,
            popularity=float(pop),
            n_requests=base.n_requests * (pop / base.popularity),
        )
        for name in schemes:
            summary = run_scheme_summary(
                name, cfg, n_edps, seeds=(seed, seed + 1, seed + 2)
            )
            rows.append(
                (
                    float(pop),
                    name,
                    summary["total"],
                    summary["staleness_cost"],
                    summary["mean_control"],
                )
            )
    return rows


def fig14_scheme_comparison(
    schemes: Sequence[str] = SCHEME_ORDER,
    n_edps: int = 100,
    config: Optional[MFGCPConfig] = None,
    seed: int = 7,
) -> List[Tuple[str, float, float, float]]:
    """Rows ``(scheme, utility, trading income, staleness cost)``.

    Expected shape: MFG-CP utility exceeds every baseline (the paper
    reports 2.76x MPC and 1.57x UDCS on its testbed); MFG trades more
    but pays more staleness.
    """
    cfg = default_config() if config is None else config
    rows: List[Tuple[str, float, float, float]] = []
    for name in schemes:
        summary = run_scheme_summary(
            name, cfg, n_edps, seeds=(seed, seed + 1, seed + 2)
        )
        rows.append(
            (
                name,
                summary["total"],
                summary["trading_income"],
                summary["staleness_cost"],
            )
        )
    return rows


# ----------------------------------------------------------------------
# Ablations (design-choice studies beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_exploitability(
    population_sizes: Sequence[int] = (10, 25, 50, 100),
    deviation_levels: Sequence[float] = (0.0, 0.5, 1.0),
    config: Optional[MFGCPConfig] = None,
    seed: int = 5,
) -> List[Tuple[int, float, float]]:
    """Rows ``(M, best deviation gain, equilibrium utility)``.

    Definition 3's epsilon-Nash property in the finite game: a tagged
    EDP deviating unilaterally from the mean-field policy should gain
    at most an epsilon that stays small relative to the equilibrium
    utility as the population grows.
    """
    from repro.game.nash import exploitability

    cfg = default_config() if config is None else config
    result = BestResponseIterator(cfg).solve()
    rows: List[Tuple[int, float, float]] = []
    for m in population_sizes:
        probes = exploitability(
            cfg, result, deviation_levels=deviation_levels, n_edps=m, seed=seed
        )
        best_gain = max(p.gain for p in probes)
        rows.append((int(m), float(best_gain), float(probes[0].equilibrium_utility)))
    return rows


def ablation_meanfield_gap(
    population_sizes: Sequence[int] = (25, 50, 100, 200),
    config: Optional[MFGCPConfig] = None,
    n_seeds: int = 3,
    seed: int = 11,
) -> List[Tuple[int, float, float]]:
    """Rows ``(M, mean-q RMSE, price RMSE)`` of the mean-field gap.

    Propagation of chaos (the justification for Eq. (14)): the finite
    population under the equilibrium policy should track the FPK
    density better as ``M`` grows.  One equilibrium solve is shared;
    each ``M`` is simulated under ``n_seeds`` seeds and gaps averaged.
    """
    from repro.analysis.metrics import mean_field_gap
    from repro.baselines.mfg_cp import MFGCPScheme

    cfg = default_config() if config is None else config
    result = BestResponseIterator(cfg).solve()
    rows: List[Tuple[int, float, float]] = []
    for m in population_sizes:
        q_gaps, p_gaps = [], []
        for s in range(n_seeds):
            sim = GameSimulator(
                cfg,
                [(MFGCPScheme(equilibrium=result), m)],
                rng=np.random.default_rng(seed + s),
            )
            gap = mean_field_gap(result, sim.run())
            q_gaps.append(gap["mean_q_rmse"])
            p_gaps.append(gap["price_rmse"])
        rows.append((int(m), float(np.mean(q_gaps)), float(np.mean(p_gaps))))
    return rows


def ablation_damping(
    damping_values: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    config: Optional[MFGCPConfig] = None,
) -> List[Tuple[float, bool, int, float]]:
    """Rows ``(damping, converged, iterations, final change)``.

    The relaxed update ``x <- (1 - beta) x + beta x_new`` implements the
    Theorem 2 contraction robustly; this ablation records how the
    relaxation factor trades off convergence speed against stability.
    """
    base = default_config() if config is None else config
    rows: List[Tuple[float, bool, int, float]] = []
    for beta in damping_values:
        # Heavier damping converges geometrically but slowly; give every
        # level enough headroom to reach the common fixed point.
        cfg = replace(base, damping=float(beta), max_iterations=80)
        result = BestResponseIterator(cfg).solve()
        rows.append(
            (
                float(beta),
                result.report.converged,
                result.report.n_iterations,
                result.report.final_policy_change,
            )
        )
    return rows


def ablation_grid_resolution(
    resolutions: Sequence[Tuple[int, int, int]] = (
        (30, 7, 19),
        (40, 9, 25),
        (60, 12, 35),
        (100, 15, 45),
    ),
    config: Optional[MFGCPConfig] = None,
) -> List[Tuple[str, float, float, float]]:
    """Rows ``(n_t x n_h x n_q, final mean q, total utility, solve iterations)``.

    The reproduction's headline statistics should be stable under grid
    refinement — a discretisation-convergence check on the coupled
    finite-difference solvers.
    """
    base = default_config() if config is None else config
    rows: List[Tuple[str, float, float, float]] = []
    for n_t, n_h, n_q in resolutions:
        cfg = replace(base, n_time_steps=int(n_t), n_h=int(n_h), n_q=int(n_q))
        result = BestResponseIterator(cfg).solve()
        acc = result.accumulated_utility()
        rows.append(
            (
                f"{n_t}x{n_h}x{n_q}",
                float(result.mean_field.mean_q[-1]),
                acc["total"],
                float(result.report.n_iterations),
            )
        )
    return rows


def ablation_sharing_price(
    sharing_prices: Sequence[float] = (0.0, 0.15, 0.3, 0.6),
    n_edps: int = 60,
    config: Optional[MFGCPConfig] = None,
    seed: int = 7,
) -> List[Tuple[float, float, float, float]]:
    """Rows ``(p_bar, MFG-CP utility, MFG utility, sharing benefit)``.

    The usage-based sharing price ``p_bar_k`` sets how much money moves
    through the peer market; the ablation shows the MFG-CP-over-MFG
    advantage and the population's sharing-benefit volume across
    ``p_bar``.
    """
    base = default_config() if config is None else config
    rows: List[Tuple[float, float, float, float]] = []
    for p_bar in sharing_prices:
        cfg = replace(base, sharing_price=float(p_bar))
        mfgcp = run_scheme_summary(
            "MFG-CP", cfg, n_edps, seeds=(seed, seed + 1, seed + 2)
        )
        mfg = run_scheme_summary(
            "MFG", cfg, n_edps, seeds=(seed, seed + 1, seed + 2)
        )
        rows.append(
            (
                float(p_bar),
                mfgcp["total"],
                mfg["total"],
                mfgcp["sharing_benefit"],
            )
        )
    return rows


def table2_computation_time(
    population_sizes: Sequence[int] = (50, 100, 200, 300),
    schemes: Sequence[str] = ("MFG-CP", "RR", "MPC"),
    config: Optional[MFGCPConfig] = None,
    catalog_size: int = 20,
    repeats: int = 3,
    seed: int = 7,
    telemetry: Optional[SolverTelemetry] = None,
) -> List[Tuple[str, int, float]]:
    """Rows ``(scheme, M, seconds)`` for the per-epoch decision cost.

    Measures what Table II measures: the time a scheme needs to produce
    its decisions for one optimization epoch over the K-content
    catalog.  MFG-CP solves the generic-player mean-field problem once
    — a cost independent of ``M`` (the paper's O(K psi) vs
    O(M K psi) remark) — then answers per-content decisions with
    vectorised policy lookups.  RR and MPC decide per EDP and per
    content, so their cost grows linearly with the population.

    Timing runs through the :mod:`repro.obs` span layer: each repeat
    is one ``table2_epoch`` span and the reported number is the best
    span duration over ``repeats`` (best-of-N suppresses scheduler
    noise, exactly as the previous hand-rolled ``perf_counter`` loop
    did).  Pass ``telemetry`` to also stream the spans to a sink; by
    default a throwaway in-memory recorder measures the wall time.
    """
    cfg = default_config() if config is None else config
    if catalog_size < 1:
        raise ValueError(f"catalog_size must be positive, got {catalog_size}")
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    # The spans must tick even when the caller passed no sink, because
    # the measured durations ARE the experiment's output.
    tele = telemetry if telemetry is not None else SolverTelemetry.in_memory()
    rows: List[Tuple[str, int, float]] = []
    for name in schemes:
        for m in population_sizes:
            fading = np.full(m, cfg.channel.mean)
            remaining = np.linspace(0.0, cfg.content_size, m)
            best = np.inf
            # Best-of-N timing suppresses scheduler noise.
            for rep in range(repeats):
                rng = np.random.default_rng(seed + rep)
                scheme = make_scheme(name)
                if telemetry is not None:
                    scheme.bind_telemetry(telemetry)
                with tele.span("table2_epoch") as span:
                    scheme.prepare(cfg, rng)
                    for t in cfg.time_axis():
                        for _k in range(catalog_size):
                            scheme.decide(float(t), fading, remaining)
                best = min(best, span.duration)
            tele.event(
                "table2_timing", scheme=name, n_edps=int(m), seconds=float(best)
            )
            rows.append((name, int(m), best))
    return rows
