"""Experiment harness: one function per paper figure/table.

Each function reproduces the workload behind one element of the
paper's evaluation section (Figs. 3-14, Table II) and returns plain
data structures (dicts of numpy arrays / row lists).  The benchmark
suite wraps these functions with pytest-benchmark and prints the
series/rows; the examples reuse them directly.

Keeping the experiment logic here — rather than inside the benches —
makes every figure reproducible from library code alone:

>>> from repro.analysis import experiments
>>> rows = experiments.fig14_scheme_comparison()  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import CachingScheme
from repro.baselines.mfg_cp import MFGCPScheme
from repro.baselines.mfg_nosharing import MFGNoSharingScheme
from repro.baselines.most_popular import MostPopularScheme
from repro.baselines.random_replacement import RandomReplacementScheme
from repro.baselines.udcs import UDCSScheme
from repro.core.best_response import BestResponseIterator
from repro.core.equilibrium import EquilibriumResult
from repro.core.parameters import MFGCPConfig
from repro.game.simulator import GameSimulator, SimulationReport
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry
from repro.runtime import ExecutionPlan, ExecutorLike, as_executor
from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess

SCHEME_ORDER = ("MFG-CP", "MFG", "UDCS", "MPC", "RR")


def default_config(fast: bool = True) -> MFGCPConfig:
    """The configuration experiments run on (coarse grid by default)."""
    return MFGCPConfig.fast() if fast else MFGCPConfig.paper_default()


def make_scheme(
    name: str, equilibrium: Optional[EquilibriumResult] = None
) -> CachingScheme:
    """Instantiate a scheme by its paper name.

    Parameters
    ----------
    equilibrium:
        Optional pre-solved equilibrium injected into the model-based
        schemes (``MFG-CP``, ``MFG``, ``UDCS``), so a fan-out over
        seeds pays the mean-field solve once in the parent instead of
        once per worker.  Rejected for the model-free baselines.
    """
    factory = {
        "MFG-CP": MFGCPScheme,
        "MFG": MFGNoSharingScheme,
        "UDCS": UDCSScheme,
        "MPC": MostPopularScheme,
        "RR": RandomReplacementScheme,
    }
    if name not in factory:
        raise KeyError(f"unknown scheme {name!r}; choose from {sorted(factory)}")
    if equilibrium is not None:
        if not issubclass(factory[name], MFGCPScheme):
            raise TypeError(
                f"scheme {name!r} does not take a pre-solved equilibrium"
            )
        return factory[name](equilibrium=equilibrium)
    return factory[name]()


def prepare_scheme_equilibrium(
    name: str,
    config: MFGCPConfig,
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> Optional[EquilibriumResult]:
    """Solve a model-based scheme's equilibrium once, in the parent.

    Returns ``None`` for the model-free baselines (their ``prepare``
    is cheap and — for RR — seeds from the simulation RNG, so it must
    run inside each work item).  The solve is deterministic, so
    injecting the shared result into every seed's worker is
    bit-identical to letting each worker solve it locally.
    """
    scheme = make_scheme(name)
    if not isinstance(scheme, MFGCPScheme):
        return None
    if telemetry.enabled:
        scheme.bind_telemetry(telemetry)
    scheme.prepare(config, np.random.default_rng(0))
    return scheme.equilibrium


def simulate_scheme_seed(
    name: str,
    config: MFGCPConfig,
    n_edps: int,
    seed: int,
    equilibrium: Optional[EquilibriumResult] = None,
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> Dict[str, float]:
    """One self-contained seed replicate of a named scheme.

    This is the work-item body behind :func:`run_scheme_summary` (and
    the replication module): it owns everything it needs — scheme
    instance, RNG, optional pre-solved equilibrium — so it produces
    the same numbers whether it runs in-process or in a pool worker.
    """
    scheme = make_scheme(name, equilibrium=equilibrium)
    sim = GameSimulator(
        config,
        [(scheme, n_edps)],
        rng=np.random.default_rng(seed),
        telemetry=telemetry,
    )
    report = sim.run()
    summary = report.scheme_summary(name)
    summary["mean_control"] = float(report.series["mean_control"].mean())
    return summary


def _solve_config_item(
    config: MFGCPConfig, telemetry: SolverTelemetry = NULL_TELEMETRY
) -> EquilibriumResult:
    """Work-item body for one sweep variant's equilibrium solve."""
    return BestResponseIterator(config, telemetry=telemetry).solve()


def sweep_equilibria(
    configs: Sequence[MFGCPConfig],
    executor: ExecutorLike = None,
    telemetry: Optional[SolverTelemetry] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[EquilibriumResult]:
    """Solve independent configuration variants through an executor.

    The shared engine behind the Figs. 6-11 parameter sweeps: each
    variant is one work item, so a sweep parallelises with
    ``executor="process:4"`` while staying bit-identical to the
    serial default.
    """
    plan = ExecutionPlan.map(
        _solve_config_item,
        [(cfg,) for cfg in configs],
        labels=list(labels) if labels is not None else None,
        accepts_telemetry=True,
    )
    return as_executor(executor).run(plan, telemetry=telemetry)


# ----------------------------------------------------------------------
# Fig. 3 — channel evolution under the OU law
# ----------------------------------------------------------------------
def fig3_channel_evolution(
    long_term_means: Sequence[float] = (2.0, 5.0, 8.0),
    volatilities: Sequence[float] = (0.1, 0.5, 1.0),
    h0: float = 1.0,
    horizon: float = 10.0,
    n_steps: int = 1000,
    seed: int = 3,
) -> Dict[str, np.ndarray]:
    """Sample OU paths for the Fig. 3 mean/volatility sweeps.

    Returns a dict mapping series labels (``mean=5.0, vol=0.5``) to
    sample paths, plus the shared ``time`` axis.  The paper's claims:
    every path reverts to its long-term mean; larger rho_h gives a
    noisier trajectory.
    """
    out: Dict[str, np.ndarray] = {}
    times = None
    for mean in long_term_means:
        for vol in volatilities:
            ou = OrnsteinUhlenbeckProcess(
                reversion=4.0,
                mean=mean,
                volatility=vol,
                rng=np.random.default_rng(seed),
            )
            path = ou.sample_path(h0=h0, t1=horizon, n_steps=n_steps)
            out[f"mean={mean}, vol={vol}"] = path.values[:, 0]
            times = path.times
    assert times is not None
    out["time"] = times
    return out


# ----------------------------------------------------------------------
# Figs. 4-5 — mean-field density and policy at equilibrium
# ----------------------------------------------------------------------
def solve_equilibrium(
    config: Optional[MFGCPConfig] = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> EquilibriumResult:
    """Solve the single-content equilibrium used by Figs. 4-11."""
    cfg = default_config() if config is None else config
    return BestResponseIterator(cfg, telemetry=telemetry).solve()


def fig4_meanfield_evolution(
    config: Optional[MFGCPConfig] = None,
    result: Optional[EquilibriumResult] = None,
) -> Dict[str, np.ndarray]:
    """The Fig. 4 surface: marginal density over q at each time."""
    res = solve_equilibrium(config) if result is None else result
    return {
        "time": res.grid.t,
        "q": res.grid.q,
        "density": res.marginal_q_path(),
        "mean_q": res.mean_remaining_space(),
    }


def fig5_policy_evolution(
    config: Optional[MFGCPConfig] = None,
    caching_states: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0),
    result: Optional[EquilibriumResult] = None,
) -> Dict[str, np.ndarray]:
    """The Fig. 5 surface: x*(t, q) plus the fixed-q time profiles."""
    res = solve_equilibrium(config) if result is None else result
    h_mid = float(res.config.channel.mean)
    profiles = {
        f"q={q0:g}": res.policy.time_profile(h_mid, q0) for q0 in caching_states
    }
    return {
        "time": res.grid.t,
        "q": res.grid.q,
        "policy_q_profile_t0": res.policy.q_profile(0.0, h_mid),
        "policy_q_profile_mid": res.policy.q_profile(
            0.5 * res.config.horizon, h_mid
        ),
        **profiles,
    }


# ----------------------------------------------------------------------
# Figs. 6-7 — heat maps over content size and initial dispersion
# ----------------------------------------------------------------------
def fig67_heatmap(
    content_sizes: Sequence[float] = (60.0, 80.0, 100.0, 120.0),
    initial_std_fraction: float = 0.1,
    config: Optional[MFGCPConfig] = None,
    executor: ExecutorLike = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Per-``Q_k`` marginal density paths (Fig. 6: std 0.1; Fig. 7: 0.05)."""
    base = default_config() if config is None else config
    base = replace(base, initial_std_fraction=initial_std_fraction)
    configs = [base.with_content_size(q_size) for q_size in content_sizes]
    results = sweep_equilibria(
        configs,
        executor=executor,
        telemetry=telemetry,
        labels=[f"Q={q_size:g}" for q_size in content_sizes],
    )
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for q_size, res in zip(content_sizes, results):
        if res is None:  # variant lost to a skip/degrade fault policy
            continue
        out[float(q_size)] = {
            "time": res.grid.t,
            "q": res.grid.q,
            "density": res.marginal_q_path(),
            "mean_q": res.mean_remaining_space(),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 8 — placement-cost coefficient sweep
# ----------------------------------------------------------------------
def fig8_w5_sweep(
    w5_values: Sequence[float] = (90.0, 130.0, 170.0, 215.0),
    config: Optional[MFGCPConfig] = None,
    executor: ExecutorLike = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Mean cache state and staleness cost per ``w5`` value.

    The paper sweeps ``w5 in [0.65, 1.55] * base``; we sweep the same
    relative range around the calibrated base.  Expected shape: larger
    ``w5`` suppresses caching (remaining space falls more slowly) and
    raises the staleness cost.
    """
    base = default_config() if config is None else config
    configs = [replace(base, w5=float(w5)) for w5 in w5_values]
    results = sweep_equilibria(
        configs,
        executor=executor,
        telemetry=telemetry,
        labels=[f"w5={w5:g}" for w5 in w5_values],
    )
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for w5, res in zip(w5_values, results):
        if res is None:  # variant lost to a skip/degrade fault policy
            continue
        paths = res.population_utility_path()
        out[float(w5)] = {
            "time": res.grid.t,
            "mean_q": res.mean_remaining_space(),
            "staleness_cost": paths["staleness_cost"],
            "accumulated_staleness": np.array(
                [res.accumulated_utility()["staleness_cost"]]
            ),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 9 — convergence from different initial caching states
# ----------------------------------------------------------------------
def fig9_convergence(
    initial_states: Sequence[float] = (30.0, 50.0, 70.0, 90.0),
    config: Optional[MFGCPConfig] = None,
    result: Optional[EquilibriumResult] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Cache-state and utility trajectories from each ``q_k(0)``.

    Expected shape (paper): the largest initial remaining space has the
    lowest utility at first; every trajectory stabilises.
    """
    res = solve_equilibrium(config) if result is None else result
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for q0 in initial_states:
        out[float(q0)] = {
            "time": res.grid.t,
            "caching_state": res.mean_state_trajectory(q0),
            "utility": res.state_utility_rate_path(q0),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 10 — initial-distribution sweep
# ----------------------------------------------------------------------
def fig10_initial_distribution(
    mean_fractions: Sequence[float] = (0.5, 0.6, 0.7, 0.8),
    config: Optional[MFGCPConfig] = None,
    executor: ExecutorLike = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Utility and average sharing benefit per initial mean."""
    base = default_config() if config is None else config
    configs = [
        replace(base, initial_mean_fraction=float(mean)) for mean in mean_fractions
    ]
    results = sweep_equilibria(
        configs,
        executor=executor,
        telemetry=telemetry,
        labels=[f"mean={mean:g}" for mean in mean_fractions],
    )
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for mean, res in zip(mean_fractions, results):
        paths = res.population_utility_path()
        out[float(mean)] = {
            "time": res.grid.t,
            "utility": paths["total"],
            "sharing_benefit": res.mean_field.sharing_benefit,
        }
    return out


# ----------------------------------------------------------------------
# Fig. 11 — eta1 sweep over time
# ----------------------------------------------------------------------
def fig11_eta1_timeseries(
    eta1_values: Sequence[float] = (1e-3, 2e-3, 3e-3, 4e-3),
    config: Optional[MFGCPConfig] = None,
    executor: ExecutorLike = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> Dict[float, Dict[str, np.ndarray]]:
    """Utility and trading income over time per ``eta1``.

    Expected shape: utility rises over time while trading income
    decays; a larger ``eta1`` lowers both.
    """
    base = default_config() if config is None else config
    # Requesters leave the market once served; this demand saturation
    # is what drives the paper's within-epoch trading-income decline.
    base = replace(base, demand_decay=1.0)
    configs = [replace(base, eta1=float(eta1)) for eta1 in eta1_values]
    results = sweep_equilibria(
        configs,
        executor=executor,
        telemetry=telemetry,
        labels=[f"eta1={eta1:g}" for eta1 in eta1_values],
    )
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for eta1, res in zip(eta1_values, results):
        paths = res.population_utility_path()
        out[float(eta1)] = {
            "time": res.grid.t,
            "utility": paths["total"],
            "trading_income": paths["trading_income"],
            "price": res.mean_field.price,
        }
    return out


# ----------------------------------------------------------------------
# Figs. 12-14 + Table II — finite-population scheme comparisons
# ----------------------------------------------------------------------
def run_scheme(
    name: str,
    config: MFGCPConfig,
    n_edps: int,
    seed: int = 7,
    telemetry: Optional[SolverTelemetry] = None,
) -> SimulationReport:
    """One homogeneous-population run of a named scheme."""
    scheme = make_scheme(name)
    sim = GameSimulator(
        config,
        [(scheme, n_edps)],
        rng=np.random.default_rng(seed),
        telemetry=telemetry,
    )
    return sim.run()


def run_scheme_summary(
    name: str,
    config: MFGCPConfig,
    n_edps: int,
    seeds: Sequence[int] = (7, 8, 9),
    telemetry: Optional[SolverTelemetry] = None,
    executor: ExecutorLike = None,
) -> Dict[str, float]:
    """Seed-averaged accumulated Eq. (10) terms for one scheme.

    The model-based schemes' mean-field equilibrium is solved once in
    the parent and injected into every replicate; each seed then runs
    as an independent work item (fresh scheme instance, own RNG) so
    the per-seed simulations fan out through ``executor`` with
    bit-identical results on every backend.  The summaries are
    averaged to suppress simulation noise in the comparison figures.
    """
    seeds = tuple(int(seed) for seed in seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    equilibrium = prepare_scheme_equilibrium(
        name, config, telemetry=telemetry if telemetry is not None else NULL_TELEMETRY
    )
    plan = ExecutionPlan.map(
        simulate_scheme_seed,
        [(name, config, n_edps, seed, equilibrium) for seed in seeds],
        labels=[f"{name}:seed{seed}" for seed in seeds],
        accepts_telemetry=True,
    )
    summaries = as_executor(executor).run(plan, telemetry=telemetry)
    # A fault policy running in skip/degrade mode hands back None for
    # exhausted replicates; average over the survivors rather than
    # crashing a whole sweep on one lost seed.
    survivors = [summary for summary in summaries if summary is not None]
    if not survivors:
        raise RuntimeError(
            f"every seed replicate of scheme {name!r} failed or was skipped"
        )
    totals: Dict[str, float] = {}
    for summary in survivors:
        for key, value in summary.items():
            totals[key] = totals.get(key, 0.0) + value
    return {key: value / len(survivors) for key, value in totals.items()}


def fig12_total_vs_eta1(
    eta1_values: Sequence[float] = (1e-3, 2e-3, 3e-3, 4e-3),
    schemes: Sequence[str] = SCHEME_ORDER,
    n_edps: int = 60,
    config: Optional[MFGCPConfig] = None,
    seed: int = 7,
    n_seeds: int = 3,
    executor: ExecutorLike = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> List[Tuple[float, str, float, float]]:
    """Rows ``(eta1, scheme, total utility, total trading income)``.

    Each ``(eta1, scheme)`` cell averages ``n_seeds`` replicate
    simulations over seeds ``seed, seed+1, ...``.

    Expected shape: utility decreases in ``eta1`` for every scheme;
    MFG-CP has the highest utility; MFG has the higher trading income.
    """
    base = default_config() if config is None else config
    seeds = tuple(seed + i for i in range(n_seeds))
    rows: List[Tuple[float, str, float, float]] = []
    for eta1 in eta1_values:
        cfg = replace(base, eta1=float(eta1))
        for name in schemes:
            summary = run_scheme_summary(
                name, cfg, n_edps, seeds=seeds, telemetry=telemetry,
                executor=executor,
            )
            rows.append(
                (float(eta1), name, summary["total"], summary["trading_income"])
            )
    return rows


def fig13_popularity_sweep(
    popularity_values: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
    schemes: Sequence[str] = SCHEME_ORDER,
    n_edps: int = 60,
    config: Optional[MFGCPConfig] = None,
    seed: int = 7,
    n_seeds: int = 3,
    executor: ExecutorLike = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> List[Tuple[float, str, float, float, float]]:
    """Rows ``(popularity, scheme, utility, staleness cost, mean control)``.

    Each ``(popularity, scheme)`` cell averages ``n_seeds`` replicate
    simulations over seeds ``seed, seed+1, ...``.

    Expected shape: MFG-CP has the highest utility and a low staleness
    cost everywhere; UDCS's *decisions* vary least with popularity (its
    cost-only objective ignores the market — the paper's "minimal
    variations"); higher popularity raises utility (more requests,
    more income).
    """
    base = default_config() if config is None else config
    seeds = tuple(seed + i for i in range(n_seeds))
    rows: List[Tuple[float, str, float, float, float]] = []
    for pop in popularity_values:
        # Higher popularity also means more requests for the content.
        cfg = replace(
            base,
            popularity=float(pop),
            n_requests=base.n_requests * (pop / base.popularity),
        )
        for name in schemes:
            summary = run_scheme_summary(
                name, cfg, n_edps, seeds=seeds, telemetry=telemetry,
                executor=executor,
            )
            rows.append(
                (
                    float(pop),
                    name,
                    summary["total"],
                    summary["staleness_cost"],
                    summary["mean_control"],
                )
            )
    return rows


def fig14_scheme_comparison(
    schemes: Sequence[str] = SCHEME_ORDER,
    n_edps: int = 100,
    config: Optional[MFGCPConfig] = None,
    seed: int = 7,
    n_seeds: int = 3,
    executor: ExecutorLike = None,
    telemetry: Optional[SolverTelemetry] = None,
) -> List[Tuple[str, float, float, float]]:
    """Rows ``(scheme, utility, trading income, staleness cost)``.

    Each scheme averages ``n_seeds`` replicate simulations over seeds
    ``seed, seed+1, ...``.

    Expected shape: MFG-CP utility exceeds every baseline (the paper
    reports 2.76x MPC and 1.57x UDCS on its testbed); MFG trades more
    but pays more staleness.
    """
    cfg = default_config() if config is None else config
    seeds = tuple(seed + i for i in range(n_seeds))
    rows: List[Tuple[str, float, float, float]] = []
    for name in schemes:
        summary = run_scheme_summary(
            name, cfg, n_edps, seeds=seeds, telemetry=telemetry,
            executor=executor,
        )
        rows.append(
            (
                name,
                summary["total"],
                summary["trading_income"],
                summary["staleness_cost"],
            )
        )
    return rows


# ----------------------------------------------------------------------
# Ablations (design-choice studies beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_exploitability(
    population_sizes: Sequence[int] = (10, 25, 50, 100),
    deviation_levels: Sequence[float] = (0.0, 0.5, 1.0),
    config: Optional[MFGCPConfig] = None,
    seed: int = 5,
) -> List[Tuple[int, float, float]]:
    """Rows ``(M, best deviation gain, equilibrium utility)``.

    Definition 3's epsilon-Nash property in the finite game: a tagged
    EDP deviating unilaterally from the mean-field policy should gain
    at most an epsilon that stays small relative to the equilibrium
    utility as the population grows.
    """
    from repro.game.nash import exploitability

    cfg = default_config() if config is None else config
    result = BestResponseIterator(cfg).solve()
    rows: List[Tuple[int, float, float]] = []
    for m in population_sizes:
        probes = exploitability(
            cfg, result, deviation_levels=deviation_levels, n_edps=m, seed=seed
        )
        best_gain = max(p.gain for p in probes)
        rows.append((int(m), float(best_gain), float(probes[0].equilibrium_utility)))
    return rows


def _meanfield_gap_sample(
    config: MFGCPConfig,
    result: EquilibriumResult,
    n_edps: int,
    seed: int,
) -> Tuple[float, float]:
    """Work-item body: one finite-population gap measurement."""
    from repro.analysis.metrics import mean_field_gap

    sim = GameSimulator(
        config,
        [(MFGCPScheme(equilibrium=result), n_edps)],
        rng=np.random.default_rng(seed),
    )
    gap = mean_field_gap(result, sim.run())
    return float(gap["mean_q_rmse"]), float(gap["price_rmse"])


def ablation_meanfield_gap(
    population_sizes: Sequence[int] = (25, 50, 100, 200),
    config: Optional[MFGCPConfig] = None,
    n_seeds: int = 3,
    seed: int = 11,
    executor: ExecutorLike = None,
) -> List[Tuple[int, float, float]]:
    """Rows ``(M, mean-q RMSE, price RMSE)`` of the mean-field gap.

    Propagation of chaos (the justification for Eq. (14)): the finite
    population under the equilibrium policy should track the FPK
    density better as ``M`` grows.  One equilibrium solve is shared;
    every ``(M, seed)`` pair is an independent work item and the gaps
    are averaged per ``M``.
    """
    cfg = default_config() if config is None else config
    result = BestResponseIterator(cfg).solve()
    pairs = [(m, seed + s) for m in population_sizes for s in range(n_seeds)]
    plan = ExecutionPlan.map(
        _meanfield_gap_sample,
        [(cfg, result, int(m), int(s)) for m, s in pairs],
        labels=[f"M{m}:seed{s}" for m, s in pairs],
    )
    gaps = as_executor(executor).run(plan)
    rows: List[Tuple[int, float, float]] = []
    for i, m in enumerate(population_sizes):
        chunk = gaps[i * n_seeds : (i + 1) * n_seeds]
        q_gaps = [g[0] for g in chunk]
        p_gaps = [g[1] for g in chunk]
        rows.append((int(m), float(np.mean(q_gaps)), float(np.mean(p_gaps))))
    return rows


def ablation_damping(
    damping_values: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    config: Optional[MFGCPConfig] = None,
) -> List[Tuple[float, bool, int, float]]:
    """Rows ``(damping, converged, iterations, final change)``.

    The relaxed update ``x <- (1 - beta) x + beta x_new`` implements the
    Theorem 2 contraction robustly; this ablation records how the
    relaxation factor trades off convergence speed against stability.
    """
    base = default_config() if config is None else config
    rows: List[Tuple[float, bool, int, float]] = []
    for beta in damping_values:
        # Heavier damping converges geometrically but slowly; give every
        # level enough headroom to reach the common fixed point.
        cfg = replace(base, damping=float(beta), max_iterations=80)
        result = BestResponseIterator(cfg).solve()
        rows.append(
            (
                float(beta),
                result.report.converged,
                result.report.n_iterations,
                result.report.final_policy_change,
            )
        )
    return rows


def ablation_grid_resolution(
    resolutions: Sequence[Tuple[int, int, int]] = (
        (30, 7, 19),
        (40, 9, 25),
        (60, 12, 35),
        (100, 15, 45),
    ),
    config: Optional[MFGCPConfig] = None,
) -> List[Tuple[str, float, float, float]]:
    """Rows ``(n_t x n_h x n_q, final mean q, total utility, solve iterations)``.

    The reproduction's headline statistics should be stable under grid
    refinement — a discretisation-convergence check on the coupled
    finite-difference solvers.
    """
    base = default_config() if config is None else config
    rows: List[Tuple[str, float, float, float]] = []
    for n_t, n_h, n_q in resolutions:
        cfg = replace(base, n_time_steps=int(n_t), n_h=int(n_h), n_q=int(n_q))
        result = BestResponseIterator(cfg).solve()
        acc = result.accumulated_utility()
        rows.append(
            (
                f"{n_t}x{n_h}x{n_q}",
                float(result.mean_field.mean_q[-1]),
                acc["total"],
                float(result.report.n_iterations),
            )
        )
    return rows


def ablation_sharing_price(
    sharing_prices: Sequence[float] = (0.0, 0.15, 0.3, 0.6),
    n_edps: int = 60,
    config: Optional[MFGCPConfig] = None,
    seed: int = 7,
    executor: ExecutorLike = None,
) -> List[Tuple[float, float, float, float]]:
    """Rows ``(p_bar, MFG-CP utility, MFG utility, sharing benefit)``.

    The usage-based sharing price ``p_bar_k`` sets how much money moves
    through the peer market; the ablation shows the MFG-CP-over-MFG
    advantage and the population's sharing-benefit volume across
    ``p_bar``.
    """
    base = default_config() if config is None else config
    rows: List[Tuple[float, float, float, float]] = []
    for p_bar in sharing_prices:
        cfg = replace(base, sharing_price=float(p_bar))
        mfgcp = run_scheme_summary(
            "MFG-CP",
            cfg,
            n_edps,
            seeds=(seed, seed + 1, seed + 2),
            executor=executor,
        )
        mfg = run_scheme_summary(
            "MFG",
            cfg,
            n_edps,
            seeds=(seed, seed + 1, seed + 2),
            executor=executor,
        )
        rows.append(
            (
                float(p_bar),
                mfgcp["total"],
                mfg["total"],
                mfgcp["sharing_benefit"],
            )
        )
    return rows


def _table2_timed_epoch(
    name: str,
    config: MFGCPConfig,
    catalog_size: int,
    n_edps: int,
    rep_seed: int,
    bind_scheme: bool,
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> float:
    """Work-item body: one timed decision epoch for one scheme.

    The span must tick even when the run captures no telemetry — the
    measured duration IS the experiment's output — so a disabled
    injected telemetry is replaced by a throwaway in-memory recorder.
    """
    tele = telemetry if telemetry.enabled else SolverTelemetry.in_memory()
    rng = np.random.default_rng(rep_seed)
    scheme = make_scheme(name)
    if bind_scheme:
        scheme.bind_telemetry(tele)
    fading = np.full(n_edps, config.channel.mean)
    remaining = np.linspace(0.0, config.content_size, n_edps)
    with tele.span("table2_epoch") as span:
        scheme.prepare(config, rng)
        for t in config.time_axis():
            for _k in range(catalog_size):
                scheme.decide(float(t), fading, remaining)
    return float(span.duration)


def table2_computation_time(
    population_sizes: Sequence[int] = (50, 100, 200, 300),
    schemes: Sequence[str] = ("MFG-CP", "RR", "MPC"),
    config: Optional[MFGCPConfig] = None,
    catalog_size: int = 20,
    repeats: int = 3,
    seed: int = 7,
    telemetry: Optional[SolverTelemetry] = None,
    executor: ExecutorLike = None,
) -> List[Tuple[str, int, float]]:
    """Rows ``(scheme, M, seconds)`` for the per-epoch decision cost.

    Measures what Table II measures: the time a scheme needs to produce
    its decisions for one optimization epoch over the K-content
    catalog.  MFG-CP solves the generic-player mean-field problem once
    — a cost independent of ``M`` (the paper's O(K psi) vs
    O(M K psi) remark) — then answers per-content decisions with
    vectorised policy lookups.  RR and MPC decide per EDP and per
    content, so their cost grows linearly with the population.

    Timing runs through the :mod:`repro.obs` span layer: every
    ``(scheme, M, repeat)`` is one work item wrapping one
    ``table2_epoch`` span, and the reported number is the best span
    duration over ``repeats`` (best-of-N suppresses scheduler noise).
    Pass ``telemetry`` to also stream the spans to a sink.  Note that
    a parallel ``executor`` overlaps the repeats, so contending
    workers can inflate the measured wall times — time on the serial
    default, parallelise only for smoke runs.
    """
    cfg = default_config() if config is None else config
    if catalog_size < 1:
        raise ValueError(f"catalog_size must be positive, got {catalog_size}")
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    cells = [(name, m) for name in schemes for m in population_sizes]
    plan = ExecutionPlan.map(
        _table2_timed_epoch,
        [
            (name, cfg, int(catalog_size), int(m), seed + rep, telemetry is not None)
            for name, m in cells
            for rep in range(repeats)
        ],
        labels=[
            f"{name}:M{m}:rep{rep}"
            for name, m in cells
            for rep in range(repeats)
        ],
        accepts_telemetry=True,
    )
    durations = as_executor(executor).run(plan, telemetry=telemetry)
    rows: List[Tuple[str, int, float]] = []
    for i, (name, m) in enumerate(cells):
        best = min(durations[i * repeats : (i + 1) * repeats])
        tele.event(
            "table2_timing", scheme=name, n_edps=int(m), seconds=float(best)
        )
        rows.append((name, int(m), float(best)))
    return rows
