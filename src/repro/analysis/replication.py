"""Monte-Carlo replication with confidence intervals.

Scheme comparisons in the finite game are stochastic (initial states,
SDE noise, peer matching).  This module runs an experiment across
seeds and reports Student-t confidence intervals, so comparisons like
Fig. 14's can be stated with uncertainty rather than single draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.core.parameters import MFGCPConfig
from repro.runtime import ExecutionPlan, ExecutorLike, as_executor


@dataclass(frozen=True)
class ReplicatedStatistic:
    """Mean and confidence interval of one replicated scalar."""

    name: str
    mean: float
    std: float
    n: int
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the confidence-interval width."""
        return 0.5 * (self.ci_high - self.ci_low)

    def overlaps(self, other: "ReplicatedStatistic") -> bool:
        """Whether the two intervals overlap (no significant gap)."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high

    def describe(self) -> str:
        return (
            f"{self.name}: {self.mean:.3f} +/- {self.half_width:.3f} "
            f"({int(self.confidence * 100)}% CI, n={self.n})"
        )


def summarise(
    name: str, samples: Sequence[float], confidence: float = 0.95
) -> ReplicatedStatistic:
    """Student-t confidence interval for a sample of replications."""
    values = np.asarray(list(samples), dtype=float)
    if values.size < 2:
        raise ValueError(
            f"need at least 2 replications for a CI, got {values.size}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    mean = float(values.mean())
    std = float(values.std(ddof=1))
    sem = std / np.sqrt(values.size)
    t_crit = float(stats.t.ppf(0.5 + confidence / 2.0, df=values.size - 1))
    half = t_crit * sem
    return ReplicatedStatistic(
        name=name,
        mean=mean,
        std=std,
        n=int(values.size),
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )


def replicate(
    experiment: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
    confidence: float = 0.95,
    executor: ExecutorLike = None,
) -> Dict[str, ReplicatedStatistic]:
    """Run an experiment across seeds and summarise every output.

    Parameters
    ----------
    experiment:
        Callable taking a seed and returning named scalar outputs; the
        output keys must be identical across seeds.  Must be picklable
        (a module-level function, not a lambda) to run on a process
        backend.
    seeds:
        Replication seeds (at least 2).
    executor:
        Backend for the per-seed fan-out; the replicates are
        independent, so results are identical on every backend.
    """
    if len(seeds) < 2:
        raise ValueError(f"need at least 2 seeds, got {len(seeds)}")
    plan = ExecutionPlan.map(
        experiment,
        [(int(seed),) for seed in seeds],
        labels=[f"seed{seed}" for seed in seeds],
    )
    collected: Dict[str, List[float]] = {}
    keys: Optional[Tuple[str, ...]] = None
    for seed, outputs in zip(seeds, as_executor(executor).run(plan)):
        outputs = dict(outputs)
        if keys is None:
            keys = tuple(sorted(outputs))
            for key in keys:
                collected[key] = []
        elif tuple(sorted(outputs)) != keys:
            raise ValueError(
                f"seed {seed} returned keys {sorted(outputs)}, expected {list(keys)}"
            )
        for key, value in outputs.items():
            collected[key].append(float(value))
    return {
        key: summarise(key, values, confidence) for key, values in collected.items()
    }


def replicate_scheme_utility(
    scheme_name: str,
    config: MFGCPConfig,
    n_edps: int,
    seeds: Sequence[int],
    confidence: float = 0.95,
    executor: ExecutorLike = None,
) -> ReplicatedStatistic:
    """CI for a scheme's mean accumulated utility (one solve, N sims).

    The model-based schemes' equilibrium is solved once in the parent
    and injected into each per-seed work item, so the fan-out over
    ``executor`` repeats only the cheap finite-population simulation.
    """
    from repro.analysis.experiments import (
        prepare_scheme_equilibrium,
        simulate_scheme_seed,
    )

    if len(seeds) < 2:
        raise ValueError(f"need at least 2 seeds, got {len(seeds)}")
    equilibrium = prepare_scheme_equilibrium(scheme_name, config)
    plan = ExecutionPlan.map(
        simulate_scheme_seed,
        [
            (scheme_name, config, n_edps, int(seed), equilibrium)
            for seed in seeds
        ],
        labels=[f"{scheme_name}:seed{seed}" for seed in seeds],
    )
    summaries = as_executor(executor).run(plan)
    totals = [summary["total"] for summary in summaries]
    return summarise(f"{scheme_name} utility", totals, confidence)
