"""Placement and staleness costs, Eqs. (8)-(9).

* Content placement cost (Eq. (8)) is the quadratic control cost

      C^1 = w4 x + w5 x^2

  capturing processing capacity / computation time consumed by caching.

* Staleness cost (Eq. (9)) is a linear penalty on the total request
  service delay:

      C^2 = eta2 { Q x / H_c
                   + sum_j [ P1 (Q - q)/H_j
                             + P2 (Q - q_-)/H_j
                             + P3 ( q/H_c + Q/H_j ) ] }.

  The first term is the EDP's own download from the centre at backhaul
  rate ``H_c``; the per-requester terms are the delivery delays in each
  response case at the wireless rate ``H_j`` of Eq. (2).
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def placement_cost(x: ArrayLike, w4: float, w5: float) -> np.ndarray:
    """Eq. (8): quadratic placement cost ``w4 x + w5 x^2``."""
    if w4 < 0 or w5 < 0:
        raise ValueError(f"w4 and w5 must be non-negative, got w4={w4}, w5={w5}")
    x = np.asarray(x, dtype=float)
    return w4 * x + w5 * x**2


def staleness_cost(
    x: ArrayLike,
    q: ArrayLike,
    q_other: ArrayLike,
    p1: ArrayLike,
    p2: ArrayLike,
    p3: ArrayLike,
    n_requests: ArrayLike,
    wireless_rate: ArrayLike,
    backhaul_rate: float,
    content_size: float,
    eta2: float,
) -> np.ndarray:
    """Eq. (9) with the per-requester sum collapsed to the serving rate.

    The mean-field reduction replaces the per-requester rates
    ``H_{i,j}`` by the representative wireless rate of the generic
    EDP's channel state (the finite-population simulator instead calls
    this per requester with ``n_requests = 1`` and each link's rate).

    Parameters
    ----------
    x:
        Caching rate ``x_k(t)``.
    q, q_other:
        Own and representative-peer remaining space (MB).
    p1, p2, p3:
        Case probabilities.
    n_requests:
        ``|I_k(t)|``.
    wireless_rate:
        ``H(h)`` in MB per unit time; must be positive.
    backhaul_rate:
        Centre-to-EDP rate ``H_c`` in MB per unit time.
    content_size:
        ``Q_k`` (MB).
    eta2:
        Delay-to-money conversion.
    """
    if backhaul_rate <= 0:
        raise ValueError(f"backhaul_rate must be positive, got {backhaul_rate}")
    if content_size <= 0:
        raise ValueError(f"content_size must be positive, got {content_size}")
    if eta2 < 0:
        raise ValueError(f"eta2 must be non-negative, got {eta2}")
    wireless_rate = np.asarray(wireless_rate, dtype=float)
    if np.any(wireless_rate <= 0):
        raise ValueError("wireless_rate must be strictly positive")

    x = np.asarray(x, dtype=float)
    q = np.asarray(q, dtype=float)
    q_other = np.asarray(q_other, dtype=float)
    own_download = content_size * x / backhaul_rate
    per_request = (
        np.asarray(p1) * (content_size - q) / wireless_rate
        + np.asarray(p2) * (content_size - q_other) / wireless_rate
        + np.asarray(p3) * (q / backhaul_rate + content_size / wireless_rate)
    )
    return eta2 * (own_download + np.asarray(n_requests, dtype=float) * per_request)


def staleness_cost_control_gradient(
    backhaul_rate: float, content_size: float, eta2: float
) -> float:
    """``d C^2 / d x = eta2 Q / H_c`` — the control-coupled part of Eq. (9).

    This constant is the ``eta Q_k / H_c`` term inside the optimal
    control formula of Theorem 1 / Eq. (21).
    """
    if backhaul_rate <= 0:
        raise ValueError(f"backhaul_rate must be positive, got {backhaul_rate}")
    if content_size <= 0:
        raise ValueError(f"content_size must be positive, got {content_size}")
    if eta2 < 0:
        raise ValueError(f"eta2 must be non-negative, got {eta2}")
    return eta2 * content_size / backhaul_rate
