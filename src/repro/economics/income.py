"""Trading income, Eq. (6).

Revenue from selling content ``k`` to the ``|I_k(t)|`` current
requesters at unit price ``p_k(t)``, weighted by the amount of data
actually delivered in each response case:

    Phi^1 = I p [ P1 (Q - q) + P2 (Q - q_-) + P3 Q ].

In case 1 the EDP sells its own cached portion ``Q - q``; in case 2 it
resells the portion obtained from the peer, ``Q - q_-``; in case 3 it
downloads and sells the whole content ``Q``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def trading_income(
    n_requests: ArrayLike,
    price: ArrayLike,
    p1: ArrayLike,
    p2: ArrayLike,
    p3: ArrayLike,
    q: ArrayLike,
    q_other: ArrayLike,
    content_size: float,
) -> np.ndarray:
    """Eq. (6) evaluated elementwise (grid- or scalar-valued inputs).

    Parameters
    ----------
    n_requests:
        ``|I_k(t)|``, the number of requesters currently asking for the
        content.
    price:
        Unit trading price ``p_k(t)``.
    p1, p2, p3:
        The case probabilities (see
        :class:`repro.economics.cases.CaseProbabilities`).
    q:
        This EDP's remaining space.
    q_other:
        The representative peer's remaining space (``q_{-,k}`` /
        mean-field average ``q_bar_-``).
    content_size:
        ``Q_k`` in MB.
    """
    if content_size <= 0:
        raise ValueError(f"content_size must be positive, got {content_size}")
    n_requests = np.asarray(n_requests, dtype=float)
    price = np.asarray(price, dtype=float)
    sold = (
        np.asarray(p1) * (content_size - np.asarray(q, dtype=float))
        + np.asarray(p2) * (content_size - np.asarray(q_other, dtype=float))
        + np.asarray(p3) * content_size
    )
    return n_requests * price * sold
