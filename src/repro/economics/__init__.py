"""Economic model for MFG-CP (Section III-A of the paper).

Implements the three response cases and their smoothed probabilities
(:mod:`repro.economics.cases`), the supply-demand trading price
(:mod:`repro.economics.pricing`), the income / benefit / cost terms
(:mod:`repro.economics.income`, :mod:`repro.economics.sharing`,
:mod:`repro.economics.costs`), and the per-EDP utility function of
Eq. (10) (:mod:`repro.economics.utility`).
"""

from repro.economics.cases import CaseProbabilities, smooth_step, smooth_step_derivative
from repro.economics.pricing import PricingModel, finite_population_price, mean_field_price
from repro.economics.income import trading_income
from repro.economics.sharing import (
    sharing_benefit,
    sharing_cost,
    mean_field_sharing_benefit,
)
from repro.economics.costs import placement_cost, staleness_cost
from repro.economics.utility import (
    EconomicParameters,
    MarketContext,
    UtilityBreakdown,
    UtilityModel,
)

__all__ = [
    "CaseProbabilities",
    "smooth_step",
    "smooth_step_derivative",
    "PricingModel",
    "finite_population_price",
    "mean_field_price",
    "trading_income",
    "sharing_benefit",
    "sharing_cost",
    "mean_field_sharing_benefit",
    "placement_cost",
    "staleness_cost",
    "EconomicParameters",
    "MarketContext",
    "UtilityBreakdown",
    "UtilityModel",
]
