"""Dynamic supply-demand trading price, Eqs. (5), (16)-(17).

The unit price EDP ``i`` charges for content ``k`` decreases with the
average supply offered by the competitors:

    p_{i,k}(t) = p_hat - eta1 * sum_{i' != i} Q_k x_{i',k}(t) / (M - 1)

(Eq. (5), ``M >= 2``; a monopolist charges ``p_hat``).  Under the
mean-field limit the competitor average becomes an integral against the
population density (Eq. (17)):

    p_k(t) ~= p_hat - eta1 * Q_k * E_lambda[ x*(S_k(t)) ].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def finite_population_price(
    p_hat: float,
    eta1: float,
    content_size: float,
    strategies: np.ndarray,
    edp: int,
    floor: float = 0.0,
) -> float:
    """Eq. (5): the price EDP ``edp`` can charge given all strategies.

    Parameters
    ----------
    strategies:
        Current caching rates ``x_{i',k}(t)`` of every EDP, shape
        ``(M,)``.
    edp:
        Index ``i`` of the pricing EDP (excluded from the supply sum).
    floor:
        Prices are clamped below at this value; the paper's formula can
        go negative for extreme supply, which would let "sellers pay
        buyers" — we keep the economically meaningful floor at 0.
    """
    strategies = np.asarray(strategies, dtype=float)
    if strategies.ndim != 1:
        raise ValueError(f"strategies must be a vector, got ndim={strategies.ndim}")
    m = strategies.shape[0]
    if not 0 <= edp < m:
        raise IndexError(f"EDP index {edp} out of range [0, {m})")
    if m == 1:
        return max(p_hat, floor)
    competitor_supply = strategies.sum() - strategies[edp]
    price = p_hat - eta1 * content_size * competitor_supply / (m - 1)
    return max(float(price), floor)


def mean_field_price(
    p_hat: float,
    eta1: float,
    content_size: float,
    mean_control: ArrayLike,
    floor: float = 0.0,
) -> np.ndarray:
    """Eq. (17): mean-field price from the population-average control.

    Parameters
    ----------
    mean_control:
        ``E_lambda[x*] = \\int\\int lambda(S) x*(S) dh dq`` — scalar or a
        time series of such averages.
    """
    price = p_hat - eta1 * content_size * np.asarray(mean_control, dtype=float)
    return np.maximum(price, floor)


@dataclass(frozen=True)
class PricingModel:
    """Pricing law bound to market parameters.

    Attributes
    ----------
    p_hat:
        Maximum unit price ``p_hat`` an EDP can charge.
    eta1:
        Supply-to-money conversion ``eta1``.
    sharing_price:
        The uniform usage-based unit price ``p_bar_k`` EDPs pay each
        other for peer sharing (Section II-B).
    floor:
        Lower clamp for the trading price.
    """

    p_hat: float
    eta1: float
    sharing_price: float = 0.0
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.p_hat <= 0:
            raise ValueError(f"p_hat must be positive, got {self.p_hat}")
        if self.eta1 < 0:
            raise ValueError(f"eta1 must be non-negative, got {self.eta1}")
        if self.sharing_price < 0:
            raise ValueError(f"sharing_price must be non-negative, got {self.sharing_price}")

    def finite(self, content_size: float, strategies: np.ndarray, edp: int) -> float:
        """Eq. (5) bound to this model's parameters."""
        return finite_population_price(
            self.p_hat, self.eta1, content_size, strategies, edp, self.floor
        )

    def mean_field(self, content_size: float, mean_control: ArrayLike) -> np.ndarray:
        """Eq. (17) bound to this model's parameters."""
        return mean_field_price(
            self.p_hat, self.eta1, content_size, mean_control, self.floor
        )

    def monopoly(self) -> float:
        """Price with no competitors (``M = 1`` branch of Eq. (5))."""
        return max(self.p_hat, self.floor)

    def price_sensitivity(self, content_size: float) -> float:
        """``|dp/dE[x]| = eta1 * Q_k`` — slope of price in mean supply."""
        return self.eta1 * content_size
