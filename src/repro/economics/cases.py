"""Response-case probabilities (Section III-A).

An EDP answering a request for content ``k`` faces three cases:

* Case 1 — it has cached enough itself (remaining space
  ``q <= alpha * Q_k``);
* Case 2 — it lacks the content but an adjacent EDP has it;
* Case 3 — neither has it, so the missing part comes from the cloud.

The paper smooths the hard threshold with the logistic approximation
``f(x) = 1 / (1 + e^{-2 l x})`` of the Heaviside step and defines

    P1(q)        = f(alpha Q - q)
    P2(q, q_-)   = f(q - alpha Q) * f(alpha Q - q_-)
    P3(q, q_-)   = f(q - alpha Q) * f(q_- - alpha Q)

so that P1 + P2 + P3 = P1 + (1 - P1-ish) * 1; exactly
``P1 + f(q - alpha Q) = 1`` and the second factor splits case 2/3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np
from scipy.special import expit

ArrayLike = Union[float, np.ndarray]


def smooth_step(x: ArrayLike, smoothing: float) -> np.ndarray:
    """Logistic approximation ``f(x) = 1 / (1 + e^{-2 l x})`` of Heaviside.

    Overflow-safe via :func:`scipy.special.expit`.

    Parameters
    ----------
    x:
        Argument (any shape).
    smoothing:
        Steepness ``l > 0``; larger values approach the hard step.
    """
    if smoothing <= 0:
        raise ValueError(f"smoothing l must be positive, got {smoothing}")
    return expit(2.0 * smoothing * np.asarray(x, dtype=float))


def smooth_step_derivative(x: ArrayLike, smoothing: float) -> np.ndarray:
    """Derivative ``f'(x) = 2 l e^{-2lx} (1 + e^{-2lx})^{-2}``.

    Used in the Lipschitz-bound diagnostics of Lemma 1 (Eq. (24)).
    """
    f = smooth_step(x, smoothing)
    return 2.0 * smoothing * f * (1.0 - f)


@dataclass(frozen=True)
class CaseProbabilities:
    """The three case probabilities bound to ``alpha`` and ``l``.

    Attributes
    ----------
    alpha:
        The "enough" threshold: a content counts as sufficiently cached
        when the remaining space is below ``alpha * Q_k`` (paper default
        ``alpha = 20%``).
    smoothing:
        Logistic steepness ``l``.
    """

    alpha: float = 0.2
    smoothing: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {self.alpha}")
        if self.smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {self.smoothing}")

    def threshold(self, content_size: float) -> float:
        """The remaining-space threshold ``alpha * Q_k`` in MB."""
        if content_size <= 0:
            raise ValueError(f"content_size must be positive, got {content_size}")
        return self.alpha * content_size

    def p1(self, q: ArrayLike, content_size: float) -> np.ndarray:
        """P1: this EDP already cached enough (q below threshold)."""
        return smooth_step(self.threshold(content_size) - np.asarray(q), self.smoothing)

    def p2(self, q: ArrayLike, q_other: ArrayLike, content_size: float) -> np.ndarray:
        """P2: this EDP lacks the content but a peer has it."""
        thr = self.threshold(content_size)
        return smooth_step(np.asarray(q) - thr, self.smoothing) * smooth_step(
            thr - np.asarray(q_other), self.smoothing
        )

    def p3(self, q: ArrayLike, q_other: ArrayLike, content_size: float) -> np.ndarray:
        """P3: neither this EDP nor the peer has enough cached."""
        thr = self.threshold(content_size)
        return smooth_step(np.asarray(q) - thr, self.smoothing) * smooth_step(
            np.asarray(q_other) - thr, self.smoothing
        )

    def all(self, q: ArrayLike, q_other: ArrayLike, content_size: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All three probabilities at once (single pass over inputs)."""
        thr = self.threshold(content_size)
        have = smooth_step(thr - np.asarray(q), self.smoothing)
        lack = 1.0 - have
        peer_has = smooth_step(thr - np.asarray(q_other), self.smoothing)
        return have, lack * peer_has, lack * (1.0 - peer_has)

    def dq_p1(self, q: ArrayLike, content_size: float) -> np.ndarray:
        """Partial derivative of P1 w.r.t. ``q`` (used in Eq. (24))."""
        return -smooth_step_derivative(
            self.threshold(content_size) - np.asarray(q), self.smoothing
        )

    def dq_p2(self, q: ArrayLike, q_other: ArrayLike, content_size: float) -> np.ndarray:
        """Partial derivative of P2 w.r.t. ``q``."""
        thr = self.threshold(content_size)
        return smooth_step_derivative(np.asarray(q) - thr, self.smoothing) * smooth_step(
            thr - np.asarray(q_other), self.smoothing
        )

    def dq_p3(self, q: ArrayLike, q_other: ArrayLike, content_size: float) -> np.ndarray:
        """Partial derivative of P3 w.r.t. ``q``."""
        thr = self.threshold(content_size)
        return smooth_step_derivative(np.asarray(q) - thr, self.smoothing) * smooth_step(
            np.asarray(q_other) - thr, self.smoothing
        )
