"""Peer content sharing: benefit (Eq. (7)), cost, and mean-field form.

An EDP that has cached enough of content ``k`` can sell the data to
peers that lack it, at the uniform usage-based unit price ``p_bar_k``:

    Phi^2_i = sum_{i' in M_i,k(t)} p_bar_k ( q_{i',k} - q_{i,k} )

(the requesting peer's deficit relative to the sharer is the amount
transferred).  Symmetrically, an EDP in case 2 pays the sharing cost

    C^3_i = P2 * p_bar_k * ( q_{i,k} - q_{-,k} ).

Section IV-B approximates the population-level benefit per qualified
sharer as

    Phi^2_bar = p_bar * Delta_q_bar * ( (M - M'_k) / M_k  -  1 )

where ``M_k`` counts EDPs able to share and ``M'_k`` those stuck in
case 3.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def sharing_benefit(
    sharing_price: float,
    requester_spaces: np.ndarray,
    own_space: ArrayLike,
) -> np.ndarray:
    """Eq. (7): money earned by sharing with the peers in ``M_i,k(t)``.

    Parameters
    ----------
    sharing_price:
        Uniform unit price ``p_bar_k``.
    requester_spaces:
        Remaining spaces ``q_{i',k}`` of the peers buying from this EDP
        (shape ``(n_peers,)``; empty means no sharing requests).
    own_space:
        This EDP's remaining space ``q_{i,k}``.

    Notes
    -----
    Transfers are non-negative: a peer with *less* remaining space than
    the sharer needs nothing, so each term is clamped at zero rather
    than letting the sharer pay for the privilege.
    """
    if sharing_price < 0:
        raise ValueError(f"sharing_price must be non-negative, got {sharing_price}")
    requester_spaces = np.asarray(requester_spaces, dtype=float)
    if requester_spaces.size == 0:
        return np.zeros(np.shape(own_space))
    deficits = np.maximum(requester_spaces - np.asarray(own_space, dtype=float), 0.0)
    return sharing_price * deficits.sum(axis=0)


def sharing_cost(
    p2: ArrayLike,
    sharing_price: float,
    own_space: ArrayLike,
    peer_space: ArrayLike,
) -> np.ndarray:
    """Case-2 remuneration paid to the sharing peer (Section III-A.5).

    ``C^3 = P2 * p_bar * (q - q_-)``, clamped at zero transfer for the
    same reason as :func:`sharing_benefit`.
    """
    if sharing_price < 0:
        raise ValueError(f"sharing_price must be non-negative, got {sharing_price}")
    transfer = np.maximum(
        np.asarray(own_space, dtype=float) - np.asarray(peer_space, dtype=float), 0.0
    )
    return np.asarray(p2, dtype=float) * sharing_price * transfer


def mean_field_sharing_benefit(
    sharing_price: float,
    mean_transfer: ArrayLike,
    n_edps: int,
    n_case3: ArrayLike,
    n_qualified: ArrayLike,
) -> np.ndarray:
    """Section IV-B average sharing benefit per qualified sharer.

    ``Phi^2_bar = p_bar * Delta_q_bar * ((M - M') / M_k - 1)``.

    Parameters
    ----------
    mean_transfer:
        Average transfer size ``Delta_q_bar(t)`` between EDPs.
    n_edps:
        Population size ``M``.
    n_case3:
        ``M'_k(t)``, EDPs that must go to the cloud.
    n_qualified:
        ``M_k(t)``, EDPs holding enough of the content to share.  Zero
        qualified sharers means no sharing market: benefit is zero.
    """
    if sharing_price < 0:
        raise ValueError(f"sharing_price must be non-negative, got {sharing_price}")
    if n_edps < 1:
        raise ValueError(f"n_edps must be positive, got {n_edps}")
    n_case3 = np.asarray(n_case3, dtype=float)
    n_qualified = np.asarray(n_qualified, dtype=float)
    mean_transfer = np.asarray(mean_transfer, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        demand_ratio = np.where(
            n_qualified > 0, (n_edps - n_case3) / np.maximum(n_qualified, 1e-300) - 1.0, 0.0
        )
    benefit = sharing_price * mean_transfer * demand_ratio
    # A qualified sharer never pays to share: negative values arise only
    # when sharers outnumber the whole non-case-3 population, where the
    # correct economic reading is "no trades happen".
    return np.maximum(benefit, 0.0)
