"""Per-EDP utility function, Eq. (10).

The net profit of an EDP for content ``k`` at time ``t`` is

    U_k(t) = Phi^1 + Phi^2 - C^1 - C^2 - C^3

(trading income plus sharing benefit minus placement, staleness, and
sharing costs).  :class:`UtilityModel` composes the term modules into a
single evaluation that works elementwise over state grids — the same
code path serves the HJB source term, the mean-field estimator, and the
finite-population simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

import numpy as np

from repro.economics.cases import CaseProbabilities
from repro.economics.costs import placement_cost, staleness_cost
from repro.economics.income import trading_income
from repro.economics.pricing import PricingModel
from repro.economics.sharing import sharing_cost

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class EconomicParameters:
    """All monetary parameters of Section III-A in one place.

    Attributes
    ----------
    w4, w5:
        Placement-cost coefficients of Eq. (8).
    eta2:
        Delay-to-money conversion of Eq. (9).
    backhaul_rate:
        Centre-to-EDP rate ``H_c`` (MB per unit time).
    cases:
        Case-probability smoothing (``alpha``, ``l``).
    pricing:
        Trading and sharing price law.
    include_sharing:
        When False the sharing benefit and sharing cost are dropped —
        this is exactly the paper's "MFG" baseline (a downgraded MFG-CP
        without content sharing).
    include_trading:
        When False the trading income is dropped from the objective —
        the pure cost-minimisation view used by the UDCS baseline,
        which "ignores the pricing issue".
    """

    w4: float
    w5: float
    eta2: float
    backhaul_rate: float
    cases: CaseProbabilities = field(default_factory=CaseProbabilities)
    pricing: PricingModel = field(default_factory=lambda: PricingModel(p_hat=0.05, eta1=0.02))
    include_sharing: bool = True
    include_trading: bool = True

    def __post_init__(self) -> None:
        if self.w4 < 0 or self.w5 <= 0:
            raise ValueError(
                f"need w4 >= 0 and w5 > 0 (quadratic cost), got w4={self.w4}, w5={self.w5}"
            )
        if self.eta2 < 0:
            raise ValueError(f"eta2 must be non-negative, got {self.eta2}")
        if self.backhaul_rate <= 0:
            raise ValueError(f"backhaul_rate must be positive, got {self.backhaul_rate}")

    def without_sharing(self) -> "EconomicParameters":
        """A copy with peer sharing disabled (the MFG baseline)."""
        return replace(self, include_sharing=False)


@dataclass(frozen=True)
class MarketContext:
    """Market quantities an EDP cannot observe directly.

    In MFG-CP these come from the mean-field estimator (Section IV-B);
    in the finite-population game they are computed from the actual
    states of the other EDPs.

    Attributes
    ----------
    n_requests:
        ``|I_k(t)|`` — requests currently addressed to this EDP.
    price:
        Unit trading price ``p_k(t)``.
    q_other:
        Representative peer remaining space ``q_{-,k}(t)`` /
        mean-field average ``q_bar_-(t)``.
    sharing_benefit:
        The (average) sharing benefit ``Phi^2`` this EDP earns; for the
        generic player the estimator supplies ``Phi^2_bar`` weighted by
        the probability of being a qualified sharer.
    """

    n_requests: float
    price: float
    q_other: float
    sharing_benefit: float = 0.0

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ValueError(f"n_requests must be non-negative, got {self.n_requests}")


@dataclass(frozen=True)
class UtilityBreakdown:
    """Eq. (10) term by term (all arrays share one broadcast shape)."""

    trading_income: np.ndarray
    sharing_benefit: np.ndarray
    placement_cost: np.ndarray
    staleness_cost: np.ndarray
    sharing_cost: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """Net profit ``U_k(t)`` of Eq. (10)."""
        return (
            self.trading_income
            + self.sharing_benefit
            - self.placement_cost
            - self.staleness_cost
            - self.sharing_cost
        )

    def scaled(self, factor: float) -> "UtilityBreakdown":
        """Every term multiplied by ``factor`` (e.g. a time-step ``dt``)."""
        return UtilityBreakdown(
            trading_income=self.trading_income * factor,
            sharing_benefit=self.sharing_benefit * factor,
            placement_cost=self.placement_cost * factor,
            staleness_cost=self.staleness_cost * factor,
            sharing_cost=self.sharing_cost * factor,
        )


@dataclass(frozen=True)
class UtilityModel:
    """Eq. (10) bound to one content of size ``Q_k``.

    Parameters
    ----------
    params:
        The economic parameter bundle.
    content_size:
        ``Q_k`` in MB.
    """

    params: EconomicParameters
    content_size: float

    def __post_init__(self) -> None:
        if self.content_size <= 0:
            raise ValueError(f"content_size must be positive, got {self.content_size}")

    def evaluate(
        self,
        x: ArrayLike,
        q: ArrayLike,
        wireless_rate: ArrayLike,
        ctx: MarketContext,
    ) -> UtilityBreakdown:
        """Instantaneous utility for state ``(q, h)`` and control ``x``.

        All of ``x``, ``q`` and ``wireless_rate`` may be arrays with a
        common broadcast shape (the PDE solvers pass full state grids).
        """
        p = self.params
        p1, p2, p3 = p.cases.all(q, ctx.q_other, self.content_size)
        if p.include_trading:
            income = trading_income(
                ctx.n_requests, ctx.price, p1, p2, p3, q, ctx.q_other, self.content_size
            )
        else:
            income = np.zeros(np.broadcast(np.asarray(q), np.asarray(x)).shape)
        place = placement_cost(x, p.w4, p.w5)
        stale = staleness_cost(
            x,
            q,
            ctx.q_other,
            p1,
            p2,
            p3,
            ctx.n_requests,
            wireless_rate,
            p.backhaul_rate,
            self.content_size,
            p.eta2,
        )
        if p.include_sharing:
            # A generic EDP earns the population-average benefit only in
            # the states where it is a qualified sharer (case-1 states).
            benefit = p1 * ctx.sharing_benefit
            share_cost = sharing_cost(
                p2, p.pricing.sharing_price, q, ctx.q_other
            )
        else:
            zeros = np.zeros(np.broadcast(np.asarray(q), np.asarray(x)).shape)
            benefit = zeros
            share_cost = zeros.copy()
        shape = np.broadcast(
            np.asarray(x), np.asarray(q), np.asarray(wireless_rate)
        ).shape
        return UtilityBreakdown(
            trading_income=np.broadcast_to(np.asarray(income, dtype=float), shape).copy(),
            sharing_benefit=np.broadcast_to(np.asarray(benefit, dtype=float), shape).copy(),
            placement_cost=np.broadcast_to(np.asarray(place, dtype=float), shape).copy(),
            staleness_cost=np.broadcast_to(np.asarray(stale, dtype=float), shape).copy(),
            sharing_cost=np.broadcast_to(np.asarray(share_cost, dtype=float), shape).copy(),
        )

    def total(
        self, x: ArrayLike, q: ArrayLike, wireless_rate: ArrayLike, ctx: MarketContext
    ) -> np.ndarray:
        """Shortcut for ``evaluate(...).total``."""
        return self.evaluate(x, q, wireless_rate, ctx).total

    def control_free_part(
        self, q: ArrayLike, wireless_rate: ArrayLike, ctx: MarketContext
    ) -> np.ndarray:
        """Utility at ``x = 0`` — the part the control cannot influence.

        Useful in the HJB solver: Eq. (10) is quadratic in ``x`` with
        known coefficients, so the full Hamiltonian can be assembled
        from this baseline plus the analytic control terms.
        """
        return self.total(0.0, q, wireless_rate, ctx)

    def control_gradient_constants(self) -> "tuple[float, float]":
        """Coefficients of the control-dependent utility terms.

        ``U(x) = U(0) - (w4 + eta2 Q / H_c) x - w5 x^2``: returns the
        linear coefficient ``w4 + eta2 Q / H_c`` and the quadratic
        coefficient ``w5`` — the exact pieces of Theorem 1 / Eq. (21).
        """
        linear = self.params.w4 + self.params.eta2 * self.content_size / self.params.backhaul_rate
        return linear, self.params.w5
