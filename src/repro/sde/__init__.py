"""Stochastic process substrate for MFG-CP.

This subpackage implements the two stochastic differential equations
that drive the paper's system model:

* the mean-reverting Ornstein-Uhlenbeck channel fading process,
  Eq. (1) of the paper (:mod:`repro.sde.ornstein_uhlenbeck`), and
* the remaining-cache-space dynamics, Eq. (4)
  (:mod:`repro.sde.caching_state`),

together with the generic building blocks they share: standard
Brownian-motion sampling (:mod:`repro.sde.brownian`) and a vectorised
Euler-Maruyama integrator (:mod:`repro.sde.euler_maruyama`).
"""

from repro.sde.brownian import BrownianMotion, brownian_increments
from repro.sde.euler_maruyama import EulerMaruyamaIntegrator, SDEPath
from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess
from repro.sde.caching_state import CachingStateProcess, CachingDrift

__all__ = [
    "BrownianMotion",
    "brownian_increments",
    "EulerMaruyamaIntegrator",
    "SDEPath",
    "OrnsteinUhlenbeckProcess",
    "CachingStateProcess",
    "CachingDrift",
]
