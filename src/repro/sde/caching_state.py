"""Remaining-cache-space dynamics, Eq. (4) of the paper.

For a content ``k`` of size ``Q_k`` the remaining space evolves as

    dq(t) = Q_k * [ -w1 x(t) - w2 Pi(t) + w3 xi^{L(t)} ] dt + rho_q dW(t),

where ``x(t)`` is the EDP's caching rate, ``Pi(t)`` the content
popularity (Def. 1), ``L(t)`` the content timeliness (Def. 2), and
``xi in (0, 1)`` tunes the urgency response.  The first term models
space consumed by active caching; the remaining terms model discarding
driven by low popularity and low urgency.

The drift is factored into :class:`CachingDrift` so that the HJB/FPK
solvers, the finite-population simulator, and the tests all share a
single implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.sde.euler_maruyama import EulerMaruyamaIntegrator, SDEPath

ControlFn = Callable[[float, np.ndarray], np.ndarray]
ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class CachingDrift:
    """The deterministic drift of Eq. (4), per unit content size.

    Attributes
    ----------
    w1, w2, w3:
        The positive proportion coefficients of Eq. (4).
    xi:
        Urgency steepness ``xi in (0, 1)``.
    """

    w1: float
    w2: float
    w3: float
    xi: float

    def __post_init__(self) -> None:
        for name in ("w1", "w2", "w3"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 < self.xi < 1.0:
            raise ValueError(f"xi must lie in (0, 1), got {self.xi}")

    def rate(self, x: ArrayLike, popularity: ArrayLike, timeliness: ArrayLike) -> np.ndarray:
        """Dimensionless drift ``-w1 x - w2 Pi + w3 xi^L``.

        Multiply by ``Q_k`` to obtain the drift of ``q`` in MB per unit
        time.
        """
        x = np.asarray(x, dtype=float)
        return (
            -self.w1 * x
            - self.w2 * np.asarray(popularity, dtype=float)
            + self.w3 * np.power(self.xi, np.asarray(timeliness, dtype=float))
        )

    def discard_rate(self, popularity: ArrayLike, timeliness: ArrayLike) -> np.ndarray:
        """Control-independent part of the drift (the discarding terms)."""
        return self.rate(0.0, popularity, timeliness)

    def equilibrium_control(self, popularity: ArrayLike, timeliness: ArrayLike) -> np.ndarray:
        """The caching rate that exactly balances discarding.

        Solving ``rate(x, Pi, L) = 0`` for ``x`` gives the control at
        which the remaining space (ignoring noise) stays constant; the
        value is clipped to the feasible set ``[0, 1]``.
        """
        if self.w1 == 0:
            raise ZeroDivisionError("equilibrium control undefined when w1 == 0")
        balance = self.discard_rate(popularity, timeliness) / self.w1
        return np.clip(balance, 0.0, 1.0)


@dataclass
class CachingStateProcess:
    """The caching-state SDE of Eq. (4) for one content of size ``Q_k``.

    Parameters
    ----------
    content_size:
        ``Q_k`` in MB; also the upper bound of the remaining space.
    drift:
        Shared :class:`CachingDrift` coefficients.
    noise:
        Diffusion coefficient ``rho_q``.
    popularity / timeliness:
        Either constants or callables of time, letting the simulator
        inject the live trace-driven values of Defs. 1-2.
    rng:
        Random generator for path sampling.
    """

    content_size: float
    drift: CachingDrift
    noise: float
    popularity: Union[float, Callable[[float], float]] = 0.5
    timeliness: Union[float, Callable[[float], float]] = 1.0
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if self.content_size <= 0:
            raise ValueError(f"content_size must be positive, got {self.content_size}")
        if self.noise < 0:
            raise ValueError(f"noise must be non-negative, got {self.noise}")

    def _popularity_at(self, t: float) -> float:
        return self.popularity(t) if callable(self.popularity) else float(self.popularity)

    def _timeliness_at(self, t: float) -> float:
        return self.timeliness(t) if callable(self.timeliness) else float(self.timeliness)

    def drift_at(self, t: float, q: np.ndarray, x: ArrayLike) -> np.ndarray:
        """Drift of ``q`` in MB per unit time under control ``x``."""
        del q  # Eq. (4)'s drift does not depend on q itself
        return self.content_size * self.drift.rate(
            x, self._popularity_at(t), self._timeliness_at(t)
        )

    def clip(self, q: np.ndarray) -> np.ndarray:
        """Project the state into the physical range ``[0, Q_k]``."""
        return np.clip(q, 0.0, self.content_size)

    def integrator(self, control: ControlFn) -> EulerMaruyamaIntegrator:
        """Build an integrator for a given feedback control ``x(t, q)``."""

        def drift_fn(t: float, q: np.ndarray) -> np.ndarray:
            return self.drift_at(t, q, control(t, q))

        def diffusion_fn(t: float, q: np.ndarray) -> np.ndarray:
            del t
            return np.full_like(np.asarray(q, dtype=float), self.noise)

        return EulerMaruyamaIntegrator(
            drift=drift_fn, diffusion=diffusion_fn, clip=self.clip, rng=self.rng
        )

    def sample_path(
        self,
        q0: ArrayLike,
        control: ControlFn,
        t1: float,
        n_steps: int,
        t0: float = 0.0,
        increments: Optional[np.ndarray] = None,
    ) -> SDEPath:
        """Simulate Eq. (4) under a feedback control ``x(t, q)``.

        ``q0`` may be a scalar or a batch; the path is reflected into
        ``[0, Q_k]`` after every step (remaining space is physical).
        """
        q0 = np.atleast_1d(np.asarray(q0, dtype=float))
        if np.any(q0 < 0) or np.any(q0 > self.content_size):
            raise ValueError(
                f"initial state must lie in [0, {self.content_size}], got {q0}"
            )
        return self.integrator(control).integrate(
            q0, t0=t0, t1=t1, n_steps=n_steps, increments=increments
        )

    def constant_control_path(
        self, q0: ArrayLike, x: float, t1: float, n_steps: int, t0: float = 0.0
    ) -> SDEPath:
        """Convenience wrapper for a constant caching rate."""
        if not 0.0 <= x <= 1.0:
            raise ValueError(f"caching rate must lie in [0, 1], got {x}")
        return self.sample_path(q0, lambda t, q: np.full_like(q, x), t1, n_steps, t0)
