"""Vectorised Euler-Maruyama integration of Ito SDEs.

All of the paper's dynamics (channel fading Eq. (1), caching state
Eq. (4)) are one-dimensional Ito diffusions

    dX(t) = b(t, X) dt + s(t, X) dW(t).

:class:`EulerMaruyamaIntegrator` integrates a batch of such diffusions
simultaneously; drift and diffusion callables receive the whole state
vector so that population simulations with thousands of EDPs run as a
single numpy expression per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

DriftFn = Callable[[float, np.ndarray], np.ndarray]
DiffusionFn = Callable[[float, np.ndarray], np.ndarray]
ClipFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SDEPath:
    """A simulated batch of SDE trajectories.

    Attributes
    ----------
    times:
        Shape ``(n_steps + 1,)`` array of time points.
    values:
        Shape ``(n_steps + 1, n_paths)`` array of states.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.times.shape[0] != self.values.shape[0]:
            raise ValueError(
                "times and values disagree on the number of time points: "
                f"{self.times.shape[0]} vs {self.values.shape[0]}"
            )

    @property
    def n_steps(self) -> int:
        """Number of integration steps taken."""
        return self.times.shape[0] - 1

    @property
    def n_paths(self) -> int:
        """Number of simultaneously integrated trajectories."""
        return 1 if self.values.ndim == 1 else self.values.shape[1]

    @property
    def terminal(self) -> np.ndarray:
        """The state at the final time point."""
        return self.values[-1]

    def mean_path(self) -> np.ndarray:
        """Cross-path mean at every time point."""
        return self.values.mean(axis=tuple(range(1, self.values.ndim)))

    def std_path(self) -> np.ndarray:
        """Cross-path standard deviation at every time point."""
        return self.values.std(axis=tuple(range(1, self.values.ndim)))

    def at(self, t: float) -> np.ndarray:
        """State at the grid time nearest to ``t``."""
        idx = int(np.argmin(np.abs(self.times - t)))
        return self.values[idx]


@dataclass
class EulerMaruyamaIntegrator:
    """Euler-Maruyama scheme for batches of scalar Ito diffusions.

    Parameters
    ----------
    drift:
        ``b(t, x)`` evaluated elementwise on the state batch.
    diffusion:
        ``s(t, x)`` evaluated elementwise on the state batch.
    clip:
        Optional projection applied after every step (e.g. reflecting
        the caching state into ``[0, Q_k]``).
    rng:
        Random generator; a fresh default generator is created when
        omitted.
    """

    drift: DriftFn
    diffusion: DiffusionFn
    clip: Optional[ClipFn] = None
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def integrate(
        self,
        x0: np.ndarray,
        t0: float,
        t1: float,
        n_steps: int,
        increments: Optional[np.ndarray] = None,
    ) -> SDEPath:
        """Integrate from ``t0`` to ``t1`` in ``n_steps`` equal steps.

        Parameters
        ----------
        x0:
            Initial state batch, shape ``(n_paths,)`` (scalars are
            broadcast to a single path).
        increments:
            Optional pre-drawn Brownian increments of shape
            ``(n_steps, n_paths)``; drawn internally when omitted.
            Supplying increments makes runs reproducible across schemes
            that must share noise (common random numbers).
        """
        if n_steps <= 0:
            raise ValueError(f"n_steps must be positive, got {n_steps}")
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got t0={t0}, t1={t1}")
        x = np.atleast_1d(np.asarray(x0, dtype=float)).copy()
        dt = (t1 - t0) / n_steps
        if increments is None:
            increments = self.rng.normal(0.0, np.sqrt(dt), size=(n_steps, *x.shape))
        elif increments.shape[0] != n_steps:
            raise ValueError(
                f"increments has {increments.shape[0]} steps, expected {n_steps}"
            )

        times = t0 + dt * np.arange(n_steps + 1)
        values = np.empty((n_steps + 1, *x.shape))
        values[0] = x
        for step in range(n_steps):
            t = times[step]
            x = x + self.drift(t, x) * dt + self.diffusion(t, x) * increments[step]
            if self.clip is not None:
                x = self.clip(x)
            values[step + 1] = x
        return SDEPath(times=times, values=values)

    def step(self, t: float, x: np.ndarray, dt: float, dw: np.ndarray) -> np.ndarray:
        """Advance the batch by a single step with given noise ``dw``."""
        x_next = x + self.drift(t, x) * dt + self.diffusion(t, x) * dw
        if self.clip is not None:
            x_next = self.clip(x_next)
        return x_next
