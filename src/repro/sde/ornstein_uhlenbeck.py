"""Mean-reverting Ornstein-Uhlenbeck channel fading process, Eq. (1).

The paper models the channel fading coefficient between an EDP and a
requester as

    dh(t) = (1/2) * varsigma_h * (upsilon_h - h(t)) dt + rho_h dW(t),

a mean-reverting OU process with reversion rate ``varsigma_h / 2``,
long-term mean ``upsilon_h`` and volatility ``rho_h``.  Besides the
Euler-Maruyama simulation used by the game simulator, this module
exposes the exact transition law (the OU SDE is linear, so the
conditional distribution is Gaussian in closed form), which the test
suite uses to validate the numerical integrator and which the
mean-field grid uses to choose sensible ``h`` bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.sde.euler_maruyama import EulerMaruyamaIntegrator, SDEPath


@dataclass
class OrnsteinUhlenbeckProcess:
    """The channel fading process of Eq. (1).

    Parameters
    ----------
    reversion:
        The changing rate ``varsigma_h`` (the effective mean-reversion
        speed is ``varsigma_h / 2`` because of the 1/2 factor in
        Eq. (1)).
    mean:
        Long-term mean ``upsilon_h``.
    volatility:
        Standard deviation coefficient ``rho_h`` of the Brownian term.
    rng:
        Random generator used for path sampling.

    Examples
    --------
    >>> ou = OrnsteinUhlenbeckProcess(reversion=2.0, mean=5.0,
    ...                               volatility=0.1,
    ...                               rng=np.random.default_rng(7))
    >>> path = ou.sample_path(h0=1.0, t1=10.0, n_steps=1000)
    >>> abs(path.terminal.item() - 5.0) < 1.0
    True
    """

    reversion: float
    mean: float
    volatility: float
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if self.reversion <= 0:
            raise ValueError(f"reversion must be positive, got {self.reversion}")
        if self.volatility < 0:
            raise ValueError(f"volatility must be non-negative, got {self.volatility}")

    @property
    def rate(self) -> float:
        """Effective mean-reversion speed ``theta = varsigma_h / 2``."""
        return 0.5 * self.reversion

    def drift(self, t: float, h: np.ndarray) -> np.ndarray:
        """Drift term ``(1/2) varsigma_h (upsilon_h - h)`` of Eq. (1)."""
        del t  # time-homogeneous
        return self.rate * (self.mean - h)

    def diffusion(self, t: float, h: np.ndarray) -> np.ndarray:
        """Constant diffusion coefficient ``rho_h``."""
        del t
        return np.full_like(np.asarray(h, dtype=float), self.volatility)

    # ------------------------------------------------------------------
    # Exact (closed-form) law
    # ------------------------------------------------------------------
    def transition_moments(self, h0: np.ndarray, dt: float) -> Tuple[np.ndarray, float]:
        """Mean and standard deviation of ``h(t + dt)`` given ``h(t) = h0``.

        The OU transition density is Gaussian:

            mean = mu + (h0 - mu) e^{-theta dt}
            var  = rho^2 (1 - e^{-2 theta dt}) / (2 theta)
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        decay = np.exp(-self.rate * dt)
        mean = self.mean + (np.asarray(h0, dtype=float) - self.mean) * decay
        var = self.volatility**2 * (1.0 - decay**2) / (2.0 * self.rate)
        return mean, float(np.sqrt(var))

    def stationary_moments(self) -> Tuple[float, float]:
        """Mean and standard deviation of the stationary distribution."""
        std = self.volatility / np.sqrt(2.0 * self.rate)
        return self.mean, float(std)

    def stationary_interval(self, n_std: float = 4.0) -> Tuple[float, float]:
        """An interval containing nearly all stationary mass.

        Used by :class:`repro.core.grid.StateGrid` to bound the ``h``
        axis of the PDE grid.
        """
        mean, std = self.stationary_moments()
        return mean - n_std * std, mean + n_std * std

    def exact_sample(self, h0: np.ndarray, dt: float, size: Optional[int] = None) -> np.ndarray:
        """Draw from the exact transition law (no discretisation error)."""
        mean, std = self.transition_moments(h0, dt)
        shape = np.broadcast(mean).shape if size is None else (size,)
        return self.rng.normal(mean, std, size=shape)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def integrator(self) -> EulerMaruyamaIntegrator:
        """An Euler-Maruyama integrator bound to this process."""
        return EulerMaruyamaIntegrator(
            drift=self.drift, diffusion=self.diffusion, rng=self.rng
        )

    def sample_path(
        self,
        h0: float,
        t1: float,
        n_steps: int,
        n_paths: int = 1,
        t0: float = 0.0,
        increments: Optional[np.ndarray] = None,
    ) -> SDEPath:
        """Simulate ``n_paths`` trajectories of Eq. (1) on ``[t0, t1]``."""
        x0 = np.full(n_paths, float(h0))
        return self.integrator().integrate(
            x0, t0=t0, t1=t1, n_steps=n_steps, increments=increments
        )

    def autocorrelation_time(self) -> float:
        """Characteristic decorrelation time ``1 / theta`` of the process."""
        return 1.0 / self.rate
