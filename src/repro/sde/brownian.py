"""Standard Brownian motion sampling.

The random diffusion terms ``W_{i,j}(t)`` and ``W_i(t)`` in Eqs. (1)
and (4) of the paper are standard Brownian motions.  This module
provides vectorised increment and path sampling used by every SDE
simulator in the repository.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

Shape = Union[int, Tuple[int, ...]]


def brownian_increments(
    n_steps: int,
    dt: float,
    n_paths: Shape = 1,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample increments ``dW ~ N(0, dt)`` of a standard Brownian motion.

    Parameters
    ----------
    n_steps:
        Number of time steps.
    dt:
        Step length; must be positive.
    n_paths:
        Number of independent paths (int or shape tuple).
    rng:
        Optional numpy generator for reproducibility.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_steps, *n_paths)`` of independent Gaussian
        increments with variance ``dt``.
    """
    if n_steps < 0:
        raise ValueError(f"n_steps must be non-negative, got {n_steps}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    rng = rng if rng is not None else np.random.default_rng()
    path_shape = (n_paths,) if isinstance(n_paths, int) else tuple(n_paths)
    return rng.normal(0.0, np.sqrt(dt), size=(n_steps, *path_shape))


class BrownianMotion:
    """A standard Brownian motion ``W(t)`` with ``W(0) = 0``.

    The class memoises nothing; each call to :meth:`sample_path` draws a
    fresh path from the supplied generator, so the same instance can be
    shared by many simulators.

    Examples
    --------
    >>> bm = BrownianMotion(rng=np.random.default_rng(0))
    >>> path = bm.sample_path(n_steps=100, dt=0.01)
    >>> path.shape
    (101, 1)
    """

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def rng(self) -> np.random.Generator:
        """The underlying random generator."""
        return self._rng

    def increments(self, n_steps: int, dt: float, n_paths: Shape = 1) -> np.ndarray:
        """Sample ``n_steps`` increments for ``n_paths`` paths."""
        return brownian_increments(n_steps, dt, n_paths, rng=self._rng)

    def sample_path(self, n_steps: int, dt: float, n_paths: Shape = 1) -> np.ndarray:
        """Sample full paths including the ``W(0) = 0`` starting point.

        Returns an array of shape ``(n_steps + 1, *n_paths)``.
        """
        dw = self.increments(n_steps, dt, n_paths)
        path = np.empty((n_steps + 1, *dw.shape[1:]))
        path[0] = 0.0
        np.cumsum(dw, axis=0, out=path[1:])
        return path

    def bridge_pin(self, path: np.ndarray, terminal: float) -> np.ndarray:
        """Pin an existing path to ``terminal`` at its final time.

        Produces a Brownian-bridge-like path, useful in tests that need
        a path with a known endpoint.  The input path is not modified.
        """
        if path.ndim < 1 or path.shape[0] < 2:
            raise ValueError("path must contain at least two time points")
        n = path.shape[0] - 1
        ramp = np.arange(n + 1, dtype=float) / n
        ramp = ramp.reshape((-1,) + (1,) * (path.ndim - 1))
        return path + (terminal - path[-1]) * ramp
