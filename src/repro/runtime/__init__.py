"""Unified execution-plan runtime for embarrassingly-parallel fan-out.

Every fan-out in the reproduction — per-content equilibrium solves in
the Algorithm 1 epoch loop, per-seed replication in the comparison
experiments, per-variant parameter sweeps, per-repeat benchmark
timings — has the same shape: independent work items whose results
are consumed in a fixed order.  This package names that shape
(:class:`ExecutionPlan` / :class:`WorkItem`) and provides pluggable
backends to run it (:class:`SerialExecutor`,
:class:`ParallelExecutor`), selected by spec string via
:func:`make_executor` (``"serial"``, ``"process:4"``).

Determinism contract: a plan's results and merged telemetry are
bit-identical across backends.  Per-item RNG streams are spawned from
one root with ``np.random.SeedSequence.spawn``, and per-worker
telemetry buffers are absorbed in item order — see
``docs/runtime.md``.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    item_key,
)
from repro.runtime.executors import (
    Executor,
    ExecutorLike,
    ParallelExecutor,
    ProgressCallback,
    SerialExecutor,
    as_executor,
    live_progress,
    make_executor,
)
from repro.runtime.plan import (
    ExecutionPlan,
    ItemOutcome,
    WorkItem,
    execute_item,
    partition_batches,
    partition_indices,
)
from repro.runtime.resumable import (
    FaultPolicy,
    ItemFailedError,
    ResumableExecutor,
)
from repro.runtime.runinfo import RunInfoCollector

__all__ = [
    "ExecutionPlan",
    "WorkItem",
    "ItemOutcome",
    "execute_item",
    "partition_batches",
    "partition_indices",
    "Executor",
    "ExecutorLike",
    "SerialExecutor",
    "ParallelExecutor",
    "ProgressCallback",
    "as_executor",
    "live_progress",
    "make_executor",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointStore",
    "CheckpointError",
    "CheckpointCorruptError",
    "item_key",
    "FaultPolicy",
    "ItemFailedError",
    "ResumableExecutor",
    "RunInfoCollector",
]
