"""Run-scoped lineage collection for the run-manifest registry.

Every fan-out in the reproduction funnels through
:meth:`repro.runtime.Executor.run`, which makes that method the one
place a run's *seed lineage* — how many plans executed, how many work
items each carried, and which ``SeedSequence`` root spawned their
per-item RNG streams — can be observed without touching any call
site.  This module holds a process-global collector that
``Executor.run`` notifies (:func:`note_plan`); the CLI activates it
around a run and folds :meth:`RunInfoCollector.summary` into the
RunManifest (see :mod:`repro.obs.registry`).

The collector is a pure observer on the parent process: it never
mutates a plan, never emits telemetry events, and is a no-op unless
:func:`activate` was called — library users pay one attribute load
per ``run()``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Plans beyond this many keep counting toward the totals but stop
#: contributing per-plan detail rows (manifests stay small).
MAX_PLAN_DETAILS = 16

#: Item labels sampled per plan for the manifest.
MAX_LABEL_SAMPLE = 4

_active: Optional["RunInfoCollector"] = None


class RunInfoCollector:
    """Accumulates per-plan lineage facts for one CLI run."""

    def __init__(self) -> None:
        self.n_plans = 0
        self.total_items = 0
        self.total_seeded = 0
        self.plans: List[Dict[str, Any]] = []

    def note_plan(self, plan) -> None:
        items = list(plan)
        seeded = [item for item in items if item.seed is not None]
        self.n_plans += 1
        self.total_items += len(items)
        self.total_seeded += len(seeded)
        if len(self.plans) >= MAX_PLAN_DETAILS:
            return
        detail: Dict[str, Any] = {
            "n_items": len(items),
            "n_seeded": len(seeded),
            "labels": [item.label for item in items[:MAX_LABEL_SAMPLE]],
        }
        if seeded:
            # Children of one SeedSequence root share its entropy and
            # differ only in spawn_key — entropy plus the spawn-key
            # range is the full lineage of every per-item stream.
            entropies = {repr(item.seed.entropy) for item in seeded}
            detail["entropy"] = (
                entropies.pop() if len(entropies) == 1 else sorted(entropies)
            )
            keys = sorted(tuple(item.seed.spawn_key) for item in seeded)
            detail["spawn_key_first"] = list(keys[0])
            detail["spawn_key_last"] = list(keys[-1])
        self.plans.append(detail)

    def summary(self) -> Dict[str, Any]:
        """A JSON-serialisable digest for the RunManifest."""
        return {
            "n_plans": self.n_plans,
            "total_items": self.total_items,
            "total_seeded": self.total_seeded,
            "plans": list(self.plans),
            "truncated": self.n_plans > len(self.plans),
        }


def activate() -> RunInfoCollector:
    """Install (and return) a fresh collector for the current process."""
    global _active
    _active = RunInfoCollector()
    return _active


def deactivate() -> None:
    """Stop collecting; subsequent :func:`note_plan` calls are no-ops."""
    global _active
    _active = None


def current() -> Optional[RunInfoCollector]:
    """The installed collector, or ``None`` outside an activated run."""
    return _active


def note_plan(plan) -> None:
    """Record a plan into the active collector (no-op when inactive)."""
    if _active is not None:
        _active.note_plan(plan)
