"""Pluggable execution backends for :class:`~repro.runtime.plan.ExecutionPlan`.

Two backends ship:

* :class:`SerialExecutor` — runs items in-process, in order.  The
  default everywhere; zero overhead, trivially deterministic.
* :class:`ParallelExecutor` — fans items out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with a configurable
  worker count and map chunk size.  Results and telemetry are merged
  in *item* order, so output is bit-identical to the serial backend.

Pick one with :func:`make_executor`, which parses the CLI-style specs
``"serial"``, ``"process"``, and ``"process:4"``.

No fan-out site outside this module touches ``concurrent.futures`` or
``multiprocessing`` directly — the solver, the experiment harness,
the replication module, and the benchmarks all submit plans through
this API.
"""

from __future__ import annotations

import abc
import os
from functools import partial
from typing import Any, Callable, List, Optional, Union

from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry
from repro.runtime.plan import ExecutionPlan, ItemOutcome, execute_item
from repro.runtime.runinfo import note_plan

ProgressCallback = Callable[[ItemOutcome], None]
"""Invoked once per completed work item, as completions happen.

Purely a live-observability hook (heartbeats, status files): callbacks
may fire in completion order on parallel backends and must never
influence results — outcomes still merge in item order regardless.
"""


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def live_progress(
    plan: ExecutionPlan,
    telemetry: SolverTelemetry,
    progress: Optional[ProgressCallback] = None,
) -> Optional[ProgressCallback]:
    """Compose a caller callback with the telemetry's live-status hook.

    Registers the plan's labels as heartbeat lanes and returns a
    callback that notes each completion on the attached
    :class:`~repro.obs.live.LiveStatusWriter` (None when there is
    neither a live writer nor a caller callback).
    """
    live = getattr(telemetry, "live", None)
    if live is None:
        return progress
    live.register_lanes([item.label for item in plan])

    def _callback(outcome: ItemOutcome) -> None:
        if progress is not None:
            progress(outcome)
        live.note_item(plan[outcome.index].label, index=outcome.index)

    return _callback


class Executor(abc.ABC):
    """A strategy for running every item of an execution plan."""

    @property
    @abc.abstractmethod
    def spec(self) -> str:
        """The ``make_executor`` spec string that reproduces this backend."""

    @abc.abstractmethod
    def execute(
        self,
        plan: ExecutionPlan,
        capture: bool = False,
        profile: bool = False,
        strict_numerics: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> List[ItemOutcome]:
        """Run every item; outcomes returned in item order.

        ``capture`` turns on per-item buffered telemetry (the caller
        absorbs the snapshots); ``profile`` and ``strict_numerics``
        configure that buffered observer to match the parent's.
        ``progress`` is called once per completed item as completions
        happen (completion order on parallel backends) — a live-status
        hook that must never affect results.
        """

    def run(
        self,
        plan: ExecutionPlan,
        telemetry: Optional[SolverTelemetry] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        """Run a plan and return the results in item order.

        When an enabled ``telemetry`` is given, each item records into
        a buffered per-worker observer and the snapshots are absorbed
        here, in item order — the merged stream does not depend on the
        backend or on worker completion order.  Absorbed events are
        tagged with the item's label as their ``lane`` (the Chrome
        trace exporter's thread rows).

        When the telemetry carries a live-status writer, item
        completions additionally heartbeat the status file (composed
        with any caller-supplied ``progress``).
        """
        # Lineage side channel for the run-manifest registry: a pure
        # parent-process observer, no-op outside an activated CLI run.
        note_plan(plan)
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        outcomes = self.execute(
            plan,
            capture=tele.enabled,
            profile=tele.profile,
            strict_numerics=tele.strict_numerics,
            progress=live_progress(plan, tele, progress),
        )
        results = []
        for outcome in outcomes:
            tele.absorb(outcome.telemetry, lane=plan[outcome.index].label)
            results.append(outcome.result)
        return results

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"


class SerialExecutor(Executor):
    """Run items one after another in the calling process."""

    @property
    def spec(self) -> str:
        return "serial"

    def execute(
        self,
        plan: ExecutionPlan,
        capture: bool = False,
        profile: bool = False,
        strict_numerics: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> List[ItemOutcome]:
        outcomes = []
        for item in plan:
            outcome = execute_item(
                item, capture, profile=profile, strict_numerics=strict_numerics
            )
            if progress is not None:
                progress(outcome)
            outcomes.append(outcome)
        return outcomes


class ParallelExecutor(Executor):
    """Fan items out over a process pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunksize:
        Items handed to a worker per dispatch (the
        ``ProcessPoolExecutor.map`` chunk size).  Larger chunks
        amortise pickling overhead when items are many and cheap.

    Work items must be picklable: module-level functions closing over
    configs and seeds, never bound methods holding live trackers or
    open telemetry sinks.  Determinism is preserved because every item
    owns its RNG stream (spawned per item) and outcomes are re-ordered
    by item index before results or telemetry reach the caller.
    """

    def __init__(self, workers: Optional[int] = None, chunksize: int = 1) -> None:
        self.workers = _default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.chunksize = int(chunksize)
        if self.chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {chunksize}")

    @property
    def spec(self) -> str:
        return f"process:{self.workers}"

    def execute(
        self,
        plan: ExecutionPlan,
        capture: bool = False,
        profile: bool = False,
        strict_numerics: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> List[ItemOutcome]:
        if len(plan) <= 1 or self.workers == 1:
            # Nothing to overlap; skip the pool spin-up entirely.
            outcomes = []
            for item in plan:
                outcome = execute_item(
                    item, capture, profile=profile, strict_numerics=strict_numerics
                )
                if progress is not None:
                    progress(outcome)
                outcomes.append(outcome)
            return outcomes
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(self.workers, len(plan))) as pool:
            outcomes = []
            # ``map`` yields in input order but *incrementally*, so the
            # progress hook fires while later chunks are still running.
            for outcome in pool.map(
                partial(
                    execute_item,
                    capture=capture,
                    profile=profile,
                    strict_numerics=strict_numerics,
                ),
                plan.items,
                chunksize=self.chunksize,
            ):
                if progress is not None:
                    progress(outcome)
                outcomes.append(outcome)
        # `map` preserves input order already; sort defensively so the
        # deterministic-merge contract never rests on pool internals.
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes


ExecutorLike = Union[Executor, str, None]


def make_executor(spec: str = "serial", workers: Optional[int] = None) -> Executor:
    """Build an executor from a CLI-style spec string.

    Accepted specs: ``"serial"``, ``"process"`` (one worker per CPU),
    ``"process:N"`` (N workers).  An explicit ``workers`` argument
    overrides a count embedded in the spec — this is how the CLI's
    ``--workers`` flag composes with ``--backend``.
    """
    text = str(spec).strip().lower()
    if text in ("", "serial"):
        return SerialExecutor()
    if text == "process" or text.startswith("process:"):
        embedded: Optional[int] = None
        if ":" in text:
            _, _, count = text.partition(":")
            try:
                embedded = int(count)
            except ValueError:
                raise ValueError(
                    f"invalid worker count in executor spec {spec!r}"
                ) from None
        n = workers if workers is not None else embedded
        return ParallelExecutor(workers=n)
    raise ValueError(
        f"unknown executor spec {spec!r}; expected 'serial', 'process', "
        f"or 'process:N'"
    )


def as_executor(executor: ExecutorLike) -> Executor:
    """Normalise ``None`` / spec string / executor to an executor.

    The convenience every fan-out site uses so an ``executor``
    parameter accepts ``None`` (serial), ``"process:4"``, or a
    ready-made instance.
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, Executor):
        return executor
    return make_executor(executor)
