"""Fault-tolerant execution: resume, retry, and graceful degradation.

:class:`ResumableExecutor` wraps any plan backend with three layers of
fault tolerance, none of which changes the numbers a healthy run
produces:

* **Checkpoint/resume** — with a
  :class:`~repro.runtime.checkpoint.CheckpointStore`, every completed
  item's outcome (result *and* telemetry snapshot) is persisted as it
  finishes; a rerun of the same plan loads completed items from disk
  and executes only the remainder.  Because the stored snapshot is
  replayed through the ordinary item-order merge, the resumed run's
  results and merged telemetry are identical to an uninterrupted run
  (modulo the ``item.*`` bookkeeping events and timing fields — see
  :func:`repro.testing.normalized_events`).
* **Per-item retry** — a :class:`FaultPolicy` retries failing items on
  a deterministic exponential-backoff schedule (jitter-free on
  purpose: reruns wait exactly the same amount).  Failed attempts are
  discarded wholesale — the successful attempt's telemetry is the only
  one merged, so a retried run stays bit-identical to a clean one.
* **Exhaustion handling** — ``on_exhaust`` picks what happens when
  retries run out: ``fail`` re-raises (wrapped as
  :class:`ItemFailedError`), ``skip`` records a ``None`` result and
  carries on, ``degrade`` substitutes the policy's ``fallback`` value.

Bookkeeping is surfaced as ``item.cached`` / ``item.retry`` /
``item.failed`` telemetry events plus ``runtime.items_*`` counters,
rendered by ``repro report`` (see ``docs/observability.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    SolverTelemetry,
    StrictNumericsError,
)
from repro.runtime.checkpoint import (
    CheckpointCorruptError,
    CheckpointStore,
    item_key,
)
from repro.runtime.executors import (
    Executor,
    ExecutorLike,
    ParallelExecutor,
    ProgressCallback,
    as_executor,
)
from repro.runtime.plan import ExecutionPlan, ItemOutcome, WorkItem, execute_item

ON_EXHAUST_MODES = ("fail", "skip", "degrade")


class ItemFailedError(RuntimeError):
    """A work item that kept failing after its retry budget ran out."""

    def __init__(self, label: str, index: int, attempts: int, cause: str = ""):
        self.label = label
        self.index = index
        self.attempts = attempts
        self.cause = cause
        detail = f" ({cause})" if cause else ""
        super().__init__(
            f"work item {label or index!r} failed after {attempts} attempt(s)"
            f"{detail}"
        )

    def __reduce__(self):
        return (type(self), (self.label, self.index, self.attempts, self.cause))


@dataclass(frozen=True)
class FaultPolicy:
    """How the resumable executor treats a failing work item.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first failure (0 = fail fast).
    retry_on:
        Exception classes worth retrying.  :class:`StrictNumericsError`
        is *never* retried regardless — fail-fast is its purpose, and a
        deterministic numerical blow-up cannot succeed on attempt two.
    backoff_base, backoff_factor, backoff_max:
        Deterministic (jitter-free) exponential schedule: the wait
        before retry ``a`` is ``min(base * factor**a, max)`` seconds.
        The default base of 0 makes retries immediate, which is what
        in-process transient faults (and tests) want; set a positive
        base when items contend for an external resource.
    on_exhaust:
        ``fail`` (raise :class:`ItemFailedError`), ``skip`` (record a
        ``None`` result), or ``degrade`` (record :attr:`fallback`).
        Skipped/degraded items are never checkpointed, so a later
        rerun tries them again.
    fallback:
        The stand-in result for ``on_exhaust="degrade"``.
    """

    max_retries: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0
    on_exhaust: str = "fail"
    fallback: Any = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.on_exhaust not in ON_EXHAUST_MODES:
            raise ValueError(
                f"on_exhaust must be one of {ON_EXHAUST_MODES}, "
                f"got {self.on_exhaust!r}"
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        if self.backoff_base <= 0.0:
            return 0.0
        return float(
            min(self.backoff_base * self.backoff_factor**attempt, self.backoff_max)
        )

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) gets a retry."""
        if isinstance(exc, StrictNumericsError):
            return False
        return attempt < self.max_retries and isinstance(exc, self.retry_on)


@dataclass
class _ItemNotes:
    """Per-item bookkeeping gathered during execution.

    Events are buffered here and flushed in item order, so the
    bookkeeping stream never depends on worker completion order.
    """

    events: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    diags: List[Tuple[str, str, Dict[str, Any]]] = field(default_factory=list)


class ResumableExecutor(Executor):
    """Wrap a backend with checkpoint/resume and per-item retry.

    Parameters
    ----------
    inner:
        The wrapped backend — an :class:`~repro.runtime.Executor`, a
        spec string (``"process:4"``), or ``None`` for serial.  A
        :class:`ParallelExecutor` inner keeps fanning out over a
        process pool (with incremental checkpointing and parent-side
        retry resubmission); anything else runs items in order
        in-process.
    store:
        Optional :class:`CheckpointStore`; without one, only the
        retry layer is active.
    policy:
        The :class:`FaultPolicy`; defaults to fail-fast, no retries.
    telemetry:
        Observer for the ``item.*`` bookkeeping events.  Pass the same
        object the plan's results are merged into (the CLI does) so
        retries and cache hits appear in the run's JSONL stream.
    sleep:
        Injection point for the backoff wait (tests pass a recorder).
    """

    def __init__(
        self,
        inner: ExecutorLike = None,
        store: Optional[CheckpointStore] = None,
        policy: Optional[FaultPolicy] = None,
        telemetry: Optional[SolverTelemetry] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = as_executor(inner)
        if isinstance(self.inner, ResumableExecutor):
            raise ValueError("refusing to nest ResumableExecutor wrappers")
        self.store = store
        self.policy = policy if policy is not None else FaultPolicy()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._sleep = sleep

    @property
    def spec(self) -> str:
        return f"resumable[{self.inner.spec}]"

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    _COUNTERS = {
        "item.cached": "runtime.items_cached",
        "item.retry": "runtime.item_retries",
        "item.failed": "runtime.items_failed",
    }

    def _flush_notes(self, notes: Dict[int, _ItemNotes]) -> None:
        """Emit buffered bookkeeping in item order, then forget it."""
        tele = self.telemetry
        for index in sorted(notes):
            note = notes[index]
            for check, severity, fields in note.diags:
                tele.diag(check, severity, **fields)
            for kind, fields in note.events:
                tele.event(kind, **fields)
                tele.inc(self._COUNTERS.get(kind, f"runtime.{kind}"))
        notes.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: ExecutionPlan,
        capture: bool = False,
        profile: bool = False,
        strict_numerics: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> List[ItemOutcome]:
        outcomes: Dict[int, ItemOutcome] = {}
        notes: Dict[int, _ItemNotes] = {}
        keys: Dict[int, Optional[str]] = {}
        pending: List[WorkItem] = []
        live = getattr(self.telemetry, "live", None)

        for item in plan:
            key = item_key(item) if self.store is not None else None
            keys[item.index] = key
            cached = self._load_cached(item, key, capture, notes)
            if cached is not None:
                outcomes[item.index] = cached
                if live is not None:
                    live.note_cached(item.label)
                if progress is not None:
                    progress(cached)
            else:
                pending.append(item)

        try:
            if pending:
                run_parallel = (
                    isinstance(self.inner, ParallelExecutor)
                    and self.inner.workers > 1
                    and len(pending) > 1
                )
                runner = self._run_parallel if run_parallel else self._run_serial
                runner(
                    pending, keys, outcomes, notes, capture, profile,
                    strict_numerics, progress,
                )
        finally:
            # Flush even when an exhausted item aborts the run: the
            # dying run's stream then records what was cached/retried.
            self._flush_notes(notes)
        return [outcomes[item.index] for item in plan]

    # -- cache ---------------------------------------------------------
    def _load_cached(
        self,
        item: WorkItem,
        key: Optional[str],
        capture: bool,
        notes: Dict[int, _ItemNotes],
    ) -> Optional[ItemOutcome]:
        if self.store is None or key is None or not self.store.contains(key):
            return None
        note = notes.setdefault(item.index, _ItemNotes())
        try:
            cached = self.store.load(key)
        except CheckpointCorruptError as err:
            self.store.discard(key)
            note.diags.append(
                (
                    "checkpoint.corrupt",
                    "warning",
                    dict(
                        message=str(err),
                        label=item.label,
                        index=item.index,
                        action="recompute",
                    ),
                )
            )
            return None
        if capture and cached.telemetry is None:
            # The checkpoint predates telemetry capture; reusing it
            # would leave a hole in the merged stream.  Recompute.
            note.events.append(
                (
                    "item.retry",
                    dict(
                        label=item.label,
                        index=item.index,
                        attempt=0,
                        reason="checkpoint lacks telemetry snapshot",
                    ),
                )
            )
            self.store.discard(key)
            return None
        note.events.append(
            ("item.cached", dict(label=item.label, index=item.index))
        )
        return cached

    # -- completion ----------------------------------------------------
    def _commit(
        self, item: WorkItem, key: Optional[str], outcome: ItemOutcome
    ) -> None:
        if self.store is None or key is None:
            return
        self.store.save(key, outcome, label=item.label)
        self._maybe_corrupt(item, key)

    def _maybe_corrupt(self, item: WorkItem, key: str) -> None:
        """Apply a ``corrupt`` fault rule to the just-saved object."""
        try:
            from repro.testing.faults import active_fault_plan
        except ImportError:  # pragma: no cover - testing pkg always ships
            return
        fault_plan = active_fault_plan()
        if fault_plan is not None and fault_plan.corrupts(item.index, item.label):
            self.store.corrupt(key)

    def _exhausted(
        self,
        item: WorkItem,
        attempts: int,
        exc: BaseException,
        notes: Dict[int, _ItemNotes],
    ) -> ItemOutcome:
        """Retries ran out: fail, skip, or degrade per the policy."""
        live = getattr(self.telemetry, "live", None)
        if live is not None:
            live.note_failed(item.label)
        note = notes.setdefault(item.index, _ItemNotes())
        note.events.append(
            (
                "item.failed",
                dict(
                    label=item.label,
                    index=item.index,
                    attempts=attempts,
                    error=type(exc).__name__,
                    message=str(exc),
                    action=self.policy.on_exhaust,
                ),
            )
        )
        if self.policy.on_exhaust == "skip":
            return ItemOutcome(index=item.index, result=None, telemetry=None)
        if self.policy.on_exhaust == "degrade":
            return ItemOutcome(
                index=item.index, result=self.policy.fallback, telemetry=None
            )
        if isinstance(exc, StrictNumericsError):
            raise exc  # preserve the CLI's exit-3 contract
        raise ItemFailedError(
            item.label, item.index, attempts, cause=f"{type(exc).__name__}: {exc}"
        ) from exc

    def _note_retry(
        self,
        item: WorkItem,
        attempt: int,
        exc: BaseException,
        notes: Dict[int, _ItemNotes],
    ) -> None:
        notes.setdefault(item.index, _ItemNotes()).events.append(
            (
                "item.retry",
                dict(
                    label=item.label,
                    index=item.index,
                    attempt=attempt,
                    delay_s=self.policy.delay(attempt),
                    error=type(exc).__name__,
                    message=str(exc),
                ),
            )
        )
        live = getattr(self.telemetry, "live", None)
        if live is not None:
            live.note_retry(item.label)

    # -- serial path ---------------------------------------------------
    def _run_serial(
        self,
        pending: List[WorkItem],
        keys: Dict[int, Optional[str]],
        outcomes: Dict[int, ItemOutcome],
        notes: Dict[int, _ItemNotes],
        capture: bool,
        profile: bool,
        strict_numerics: bool,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        for item in pending:
            attempt = 0
            while True:
                try:
                    outcome = execute_item(
                        item,
                        capture,
                        profile=profile,
                        strict_numerics=strict_numerics,
                        attempt=attempt,
                    )
                except Exception as exc:
                    if self.policy.should_retry(exc, attempt):
                        self._note_retry(item, attempt, exc, notes)
                        delay = self.policy.delay(attempt)
                        if delay > 0:
                            self._sleep(delay)
                        attempt += 1
                        continue
                    outcomes[item.index] = self._exhausted(
                        item, attempt + 1, exc, notes
                    )
                    break
                self._commit(item, keys[item.index], outcome)
                outcomes[item.index] = outcome
                if progress is not None:
                    progress(outcome)
                break

    # -- parallel path -------------------------------------------------
    def _run_parallel(
        self,
        pending: List[WorkItem],
        keys: Dict[int, Optional[str]],
        outcomes: Dict[int, ItemOutcome],
        notes: Dict[int, _ItemNotes],
        capture: bool,
        profile: bool,
        strict_numerics: bool,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        """Fan pending items over a pool, checkpointing as they land.

        Unlike the plain :class:`ParallelExecutor` (which drains a
        ``pool.map``), items are submitted individually so each
        success is persisted the moment it completes and each failure
        can be resubmitted (retried) without losing siblings' work.
        Results are still keyed by item index, so ordering — and hence
        the merged telemetry — is identical to the serial path.
        """
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

        workers = min(self.inner.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:

            def submit(item: WorkItem, attempt: int):
                return pool.submit(
                    execute_item,
                    item,
                    capture,
                    profile=profile,
                    strict_numerics=strict_numerics,
                    attempt=attempt,
                )

            in_flight = {submit(item, 0): (item, 0) for item in pending}
            try:
                while in_flight:
                    done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                    for future in done:
                        item, attempt = in_flight.pop(future)
                        exc = future.exception()
                        if exc is None:
                            outcome = future.result()
                            self._commit(item, keys[item.index], outcome)
                            outcomes[item.index] = outcome
                            if progress is not None:
                                progress(outcome)
                        elif self.policy.should_retry(exc, attempt):
                            self._note_retry(item, attempt, exc, notes)
                            delay = self.policy.delay(attempt)
                            if delay > 0:
                                self._sleep(delay)
                            in_flight[submit(item, attempt + 1)] = (
                                item,
                                attempt + 1,
                            )
                        else:
                            outcomes[item.index] = self._exhausted(
                                item, attempt + 1, exc, notes
                            )
            except Exception:
                # A fatal item aborts the run, but siblings already on
                # a worker may be seconds from finishing — let them
                # land in the checkpoint store so --resume keeps them.
                self._drain_in_flight(in_flight, keys, outcomes)
                raise
            except BaseException:
                # KeyboardInterrupt and friends: get out fast.
                for future in in_flight:
                    future.cancel()
                raise

    def _drain_in_flight(
        self,
        in_flight: Dict[Any, Tuple[WorkItem, int]],
        keys: Dict[int, Optional[str]],
        outcomes: Dict[int, ItemOutcome],
    ) -> None:
        """Commit whatever still completes while the run is aborting.

        Queued futures are cancelled; already-running ones are allowed
        to finish so their outcomes reach the store.  Their failures
        are ignored — the run is aborting with the original error.
        """
        if self.store is None:
            for future in in_flight:
                future.cancel()
            return
        from concurrent.futures import wait

        running = [future for future in in_flight if not future.cancel()]
        wait(running)
        for future in running:
            item, _ = in_flight[future]
            if future.exception() is None:
                outcome = future.result()
                self._commit(item, keys[item.index], outcome)
                outcomes[item.index] = outcome
