"""Execution plans: ordered lists of independent work items.

The paper's Algorithm 1 solves an *independent* HJB-FPK equilibrium
per content, the figure sweeps solve independent parameter variants,
and the comparison experiments replicate independent seeds — the same
embarrassingly-parallel shape everywhere.  An :class:`ExecutionPlan`
captures that shape once: an ordered sequence of :class:`WorkItem`
records, each a picklable call ``fn(*args, **kwargs)`` that owns
everything it needs (configs, seeds, pre-solved equilibria) and shares
no mutable state with its siblings.

Ordering is part of the contract.  Item ``index`` fixes the order in
which results are returned and telemetry snapshots are merged, so a
plan produces bit-identical output under the serial backend and any
process-pool backend regardless of worker completion order.

Randomness is derived per item: give :meth:`ExecutionPlan.map` a root
seed and each item receives an independent child stream spawned with
:class:`numpy.random.SeedSequence` — the same streams in the same
order on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry, TelemetrySnapshot

SeedLike = Union[int, np.random.SeedSequence]


@dataclass(frozen=True)
class WorkItem:
    """One independent unit of work inside a plan.

    Attributes
    ----------
    index:
        Position in the plan; fixes result and telemetry merge order.
    fn:
        A picklable callable (module-level function).  Bound methods
        holding live solver state do not survive the process boundary —
        pass configs and let the worker rebuild its objects.
    args, kwargs:
        Call arguments; must be picklable for process backends.
    label:
        Human-readable tag (``"content:3"``, ``"RR:seed8"``) used in
        telemetry events and error messages.
    seed:
        Optional per-item :class:`~numpy.random.SeedSequence`; when
        set, the executor injects ``rng=np.random.default_rng(seed)``.
        Spawn these from one root (``ExecutionPlan.map(seed=...)``) so
        the streams are reproducible and backend-independent.
    accepts_telemetry:
        When True the executor injects a ``telemetry=`` keyword — a
        buffered per-worker observer if the run captures telemetry,
        :data:`~repro.obs.telemetry.NULL_TELEMETRY` otherwise.
    """

    index: int
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    seed: Optional[np.random.SeedSequence] = None
    accepts_telemetry: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"item index must be non-negative, got {self.index}")
        if not callable(self.fn):
            raise TypeError(f"item fn must be callable, got {self.fn!r}")


@dataclass(frozen=True)
class ItemOutcome:
    """What executing one work item produced.

    ``telemetry`` is the worker's buffered snapshot (``None`` when the
    run did not capture telemetry); the parent absorbs snapshots in
    item order.
    """

    index: int
    result: Any
    telemetry: Optional[TelemetrySnapshot] = None


class ExecutionPlan:
    """An ordered collection of independent work items.

    Construct directly from :class:`WorkItem` records or via
    :meth:`map`, which builds one item per argument tuple.
    """

    def __init__(self, items: Sequence[WorkItem]) -> None:
        items = list(items)
        for position, item in enumerate(items):
            if item.index != position:
                raise ValueError(
                    f"plan items must be indexed 0..{len(items) - 1} in order; "
                    f"position {position} has index {item.index}"
                )
        self._items: List[WorkItem] = items

    @classmethod
    def map(
        cls,
        fn: Callable[..., Any],
        argtuples: Sequence[Tuple[Any, ...]],
        labels: Optional[Sequence[str]] = None,
        seed: Optional[SeedLike] = None,
        accepts_telemetry: bool = False,
    ) -> "ExecutionPlan":
        """One item per argument tuple, all calling ``fn``.

        Parameters
        ----------
        fn:
            Module-level callable applied to every tuple.
        argtuples:
            Positional arguments per item.
        labels:
            Optional per-item labels (defaults to ``fn.__name__[i]``).
        seed:
            Optional root seed; when given, ``len(argtuples)``
            independent child streams are spawned with
            ``np.random.SeedSequence.spawn`` and each item's executor
            injects ``rng=np.random.default_rng(child)``.  Serial and
            parallel backends see exactly the same streams.
        accepts_telemetry:
            Whether ``fn`` takes a ``telemetry=`` keyword.
        """
        argtuples = list(argtuples)
        if labels is not None and len(labels) != len(argtuples):
            raise ValueError(
                f"got {len(labels)} labels for {len(argtuples)} items"
            )
        seeds: List[Optional[np.random.SeedSequence]]
        if seed is None:
            seeds = [None] * len(argtuples)
        else:
            root = (
                seed
                if isinstance(seed, np.random.SeedSequence)
                else np.random.SeedSequence(int(seed))
            )
            seeds = list(root.spawn(len(argtuples)))
        name = getattr(fn, "__name__", "item")
        return cls(
            [
                WorkItem(
                    index=i,
                    fn=fn,
                    args=tuple(args),
                    label=(labels[i] if labels is not None else f"{name}[{i}]"),
                    seed=seeds[i],
                    accepts_telemetry=accepts_telemetry,
                )
                for i, args in enumerate(argtuples)
            ]
        )

    @property
    def items(self) -> List[WorkItem]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[WorkItem]:
        return iter(self._items)

    def __getitem__(self, index: int) -> WorkItem:
        return self._items[index]


def partition_indices(n: int, n_groups: int) -> List[Tuple[int, ...]]:
    """Contiguous, near-even index groups for sharded fan-out.

    The standard way to turn ``n`` independent units (EDPs, seeds,
    contents) into at most ``n_groups`` work items: groups are
    contiguous, sizes differ by at most one, and empty groups are
    dropped (``n_groups > n`` collapses to one unit per group).
    Grouping is a pure parallel grain — callers must keep per-unit
    state self-contained so results never depend on it.

    For the batched solver path the units are *contents*, never grid
    cells: a batched plan shards the catalog's active content set, and
    each shard becomes one work item whose solver advances all of the
    shard's contents through shared ``(B, n_h, n_q)`` sweeps.  Use
    :func:`partition_batches` when the grain is a maximum batch size
    rather than a group count.
    """
    if n < 0:
        raise ValueError(f"cannot partition a negative unit count, got {n}")
    if n_groups < 1:
        raise ValueError(f"need at least one group, got {n_groups}")
    if n == 0:
        # Zero units partition into zero groups — callers fanning out
        # over an empty plan get an empty shard list, not an error.
        return []
    n_groups = min(n_groups, n)
    bounds = np.linspace(0, n, n_groups + 1).astype(int)
    return [
        tuple(range(bounds[g], bounds[g + 1]))
        for g in range(n_groups)
        if bounds[g + 1] > bounds[g]
    ]


def partition_batches(n: int, batch_size: int) -> List[Tuple[int, ...]]:
    """Contiguous index shards of at most ``batch_size`` units each.

    The batched-solver companion to :func:`partition_indices`: instead
    of a target group *count* the caller fixes the per-shard *width*
    (the solver's lane count ``B``, bounding the ``B * n_h * n_q``
    working set), and the shard count follows as ``ceil(n /
    batch_size)``.  Like :func:`partition_indices` the units are
    contents, shards are contiguous, and ``n == 0`` yields an empty
    shard list.
    """
    if n < 0:
        raise ValueError(f"cannot partition a negative unit count, got {n}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    return [
        tuple(range(start, min(start + batch_size, n)))
        for start in range(0, n, batch_size)
    ]


def _apply_fault_injection(item: WorkItem, attempt: int) -> None:
    """Consult the deterministic fault harness, if one is active.

    :mod:`repro.testing.faults` installs plans in-process (tests) or
    via an environment variable (the CLI's ``--inject-faults``, which
    pool workers inherit).  The common case — no plan installed — is a
    cached ``None`` lookup, so production runs pay one function call
    per work item.
    """
    from repro.testing.faults import active_fault_plan

    plan = active_fault_plan()
    if plan is not None:
        plan.before_item(item.index, item.label, attempt)


def execute_item(
    item: WorkItem,
    capture: bool = False,
    profile: bool = False,
    strict_numerics: bool = False,
    attempt: int = 0,
) -> ItemOutcome:
    """Run one work item, optionally under a buffered telemetry.

    This is the single entry point every backend funnels through — in
    the parent process for :class:`~repro.runtime.executors.SerialExecutor`,
    inside pool workers for the process backend — so both observe
    identical semantics: per-item RNG injection, per-item buffered
    telemetry, one :class:`ItemOutcome` back.  ``profile`` and
    ``strict_numerics`` mirror the parent telemetry's settings onto the
    per-item buffered observer, so worker spans carry resource fields
    and error-severity diagnostics fail fast inside workers too.

    ``attempt`` is the 0-based retry attempt number, threaded in by
    :class:`~repro.runtime.resumable.ResumableExecutor` so the fault
    harness can distinguish transient (first-attempt-only) from
    permanent failures; plain executors always run attempt 0.
    """
    _apply_fault_injection(item, attempt)
    telemetry = (
        SolverTelemetry.buffered(profile=profile, strict_numerics=strict_numerics)
        if capture
        else None
    )
    kwargs = dict(item.kwargs)
    if item.seed is not None:
        kwargs["rng"] = np.random.default_rng(item.seed)
    if item.accepts_telemetry:
        kwargs["telemetry"] = telemetry if telemetry is not None else NULL_TELEMETRY
    result = item.fn(*item.args, **kwargs)
    snapshot = telemetry.snapshot() if telemetry is not None else None
    return ItemOutcome(index=item.index, result=result, telemetry=snapshot)
