"""Content-addressed checkpointing of completed work items.

A :class:`CheckpointStore` persists one file per completed
:class:`~repro.runtime.plan.WorkItem` outcome, keyed by a
content-addressed fingerprint of the item itself (:func:`item_key`) —
the callable's identity, its arguments, its position, its RNG seed.
Rerunning the *same* plan therefore finds the same keys, and the
:class:`~repro.runtime.resumable.ResumableExecutor` can skip every
item whose outcome is already on disk; an item whose inputs changed
hashes differently and is recomputed, no staleness tracking needed.

Layout (all writes are write-to-temp-then-:func:`os.replace`, so a
kill mid-write never leaves a half-visible file)::

    <root>/
      manifest.json        # schema version + key -> {label, sha256}
      objects/<key>.ckpt   # pickled wrapper, integrity-hashed payload

Each object file is a pickled wrapper dict carrying the checkpoint
schema version, its own key, the SHA-256 of the pickled
:class:`~repro.runtime.plan.ItemOutcome` payload, and the payload
bytes.  :meth:`CheckpointStore.load` re-verifies all three, so flipped
bytes, truncation, and schema drift all surface as
:class:`CheckpointCorruptError` — the resumable executor reports the
finding and recomputes just that item.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from typing import Any, Dict, List, Optional

from repro.runtime.plan import ItemOutcome, WorkItem

CHECKPOINT_SCHEMA_VERSION = 1
"""Version of the on-disk checkpoint format.

* **1** — initial format: pickled wrapper dict with ``schema``,
  ``key``, ``sha256`` and ``payload`` fields; JSON manifest with
  ``schema`` and ``items``.

A store written by a different schema version is never silently
reused: every mismatching object is treated as corrupt and recomputed.
"""

MANIFEST_NAME = "manifest.json"
OBJECT_SUFFIX = ".ckpt"

STREAM_STATE_DIRNAME = "stream"
"""Subdirectory of a checkpoint root holding *chunk-granular* replay
state (see :mod:`repro.serve.engine`).  Item-level outcomes live in
``objects/``; stream state is finer-grained scratch that the serving
engine reads and writes itself.  :meth:`CheckpointStore.reset` wipes
both, so a fresh (non ``--resume``) run never sees stale chunks."""

_PICKLE_PROTOCOL = 4  # fixed, so keys are stable across interpreter minors


class CheckpointError(RuntimeError):
    """A checkpoint store that cannot be used (bad manifest, bad dir)."""


class CheckpointCorruptError(CheckpointError):
    """A stored object that fails integrity or schema verification."""


def item_key(item: WorkItem) -> str:
    """Content-addressed fingerprint of one work item.

    Hashes the callable's module-qualified name, the full argument
    payload, the item's position and label, its RNG seed lineage
    (``SeedSequence`` entropy + spawn key), and the telemetry marker.
    Identical plans produce identical keys on every run; any input
    change produces a different key, so a stale checkpoint can never
    shadow fresh work.

    Batched solver items rely on the argument payload for resume
    safety: their first positional argument is the shard's *sorted*
    content-index tuple (see
    :func:`repro.core.solver._solve_content_batch_item`), so a batched
    run's keys can never collide with a per-content run's (whose first
    argument is a config object) nor with a run sharded at a different
    ``batch_size`` — ``--resume`` across a grain change recomputes
    rather than replaying the wrong cached result.
    """
    seed = None
    if item.seed is not None:
        seed = (item.seed.entropy, tuple(item.seed.spawn_key))
    payload = (
        getattr(item.fn, "__module__", ""),
        getattr(item.fn, "__qualname__", repr(item.fn)),
        item.args,
        dict(item.kwargs),
        item.index,
        item.label,
        seed,
        item.accepts_telemetry,
    )
    try:
        blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
    except Exception as err:
        raise CheckpointError(
            f"work item {item.label or item.index} is not picklable and "
            f"cannot be checkpointed: {err}"
        ) from err
    return hashlib.sha256(blob).hexdigest()


def stream_state_dir(root: "str | os.PathLike[str]") -> str:
    """The chunk-granular stream-state directory under a checkpoint root."""
    return os.path.join(os.fspath(root), STREAM_STATE_DIRNAME)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write bytes so the file appears complete or not at all."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-ckpt-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# Backward-compatible internal alias (the public name is newer).
_atomic_write = atomic_write_bytes


class CheckpointStore:
    """Persist and recall completed work-item outcomes.

    Parameters
    ----------
    root:
        Store directory (created, along with ``objects/``, unless
        ``create=False``).
    create:
        Pass ``False`` to open an existing store read-only-ish; a
        missing directory then raises :class:`CheckpointError`.
    """

    def __init__(self, root: "str | os.PathLike[str]", create: bool = True) -> None:
        self.root = os.fspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        if create:
            os.makedirs(self.objects_dir, exist_ok=True)
        elif not os.path.isdir(self.objects_dir):
            raise CheckpointError(
                f"no checkpoint store at {self.root!r} (missing objects/)"
            )
        self._manifest = self._read_manifest()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _read_manifest(self) -> Dict[str, Any]:
        if not os.path.exists(self.manifest_path):
            return {"schema": CHECKPOINT_SCHEMA_VERSION, "items": {}}
        return self._parse_manifest()

    def _parse_manifest(self) -> Dict[str, Any]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as err:
            raise CheckpointError(
                f"checkpoint manifest {self.manifest_path!r} is unreadable: {err}"
            ) from err
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("items"), dict
        ):
            raise CheckpointError(
                f"checkpoint manifest {self.manifest_path!r} is malformed "
                "(expected an object with an 'items' mapping)"
            )
        if manifest.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint manifest {self.manifest_path!r} has schema "
                f"{manifest.get('schema')!r}; this build writes "
                f"{CHECKPOINT_SCHEMA_VERSION}"
            )
        return manifest

    def validate_manifest(self) -> Dict[str, Any]:
        """Strict manifest check for ``--resume``.

        Raises :class:`CheckpointError` when the manifest is missing,
        unparseable, structurally wrong, or schema-incompatible —
        resuming from a store we cannot trust is refused up front.
        """
        if not os.path.exists(self.manifest_path):
            raise CheckpointError(
                f"no checkpoint manifest at {self.manifest_path!r}; "
                "nothing to resume from"
            )
        self._manifest = self._parse_manifest()
        return self._manifest

    def _write_manifest(self) -> None:
        data = json.dumps(self._manifest, indent=1, sort_keys=True)
        _atomic_write(self.manifest_path, data.encode("utf-8"))

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------
    def object_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, f"{key}{OBJECT_SUFFIX}")

    def contains(self, key: str) -> bool:
        """Whether a completed outcome is recorded *and* present."""
        return key in self._manifest["items"] and os.path.exists(
            self.object_path(key)
        )

    def completed_keys(self) -> List[str]:
        return sorted(self._manifest["items"])

    def __len__(self) -> int:
        return len(self._manifest["items"])

    def save(self, key: str, outcome: ItemOutcome, label: str = "") -> str:
        """Persist one outcome atomically; returns the object path."""
        try:
            payload = pickle.dumps(outcome, protocol=_PICKLE_PROTOCOL)
        except Exception as err:
            raise CheckpointError(
                f"outcome of {label or key} is not picklable: {err}"
            ) from err
        digest = hashlib.sha256(payload).hexdigest()
        wrapper = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "sha256": digest,
            "payload": payload,
        }
        path = self.object_path(key)
        _atomic_write(path, pickle.dumps(wrapper, protocol=_PICKLE_PROTOCOL))
        self._manifest["items"][key] = {"label": label, "sha256": digest}
        self._write_manifest()
        return path

    def load(self, key: str) -> ItemOutcome:
        """Load and verify one outcome.

        Raises :class:`CheckpointCorruptError` on any integrity
        failure: unreadable or truncated pickle, schema-version
        mismatch, key mismatch (a file renamed into place), or a
        payload whose SHA-256 no longer matches the recorded digest.
        """
        path = self.object_path(key)
        try:
            with open(path, "rb") as handle:
                wrapper = pickle.load(handle)
        except FileNotFoundError:
            raise CheckpointCorruptError(f"checkpoint object {key} is missing")
        except Exception as err:
            raise CheckpointCorruptError(
                f"checkpoint object {key} is unreadable: {err}"
            ) from err
        if not isinstance(wrapper, dict):
            raise CheckpointCorruptError(
                f"checkpoint object {key} has no wrapper record"
            )
        if wrapper.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointCorruptError(
                f"checkpoint object {key} has schema {wrapper.get('schema')!r}; "
                f"this build reads {CHECKPOINT_SCHEMA_VERSION}"
            )
        if wrapper.get("key") != key:
            raise CheckpointCorruptError(
                f"checkpoint object {key} records key {wrapper.get('key')!r}"
            )
        payload = wrapper.get("payload")
        if not isinstance(payload, bytes):
            raise CheckpointCorruptError(f"checkpoint object {key} has no payload")
        if hashlib.sha256(payload).hexdigest() != wrapper.get("sha256"):
            raise CheckpointCorruptError(
                f"checkpoint object {key} fails its integrity hash"
            )
        try:
            outcome = pickle.loads(payload)
        except Exception as err:
            raise CheckpointCorruptError(
                f"checkpoint object {key} payload does not unpickle: {err}"
            ) from err
        if not isinstance(outcome, ItemOutcome):
            raise CheckpointCorruptError(
                f"checkpoint object {key} holds {type(outcome).__name__}, "
                "not an ItemOutcome"
            )
        return outcome

    def discard(self, key: str) -> None:
        """Forget one outcome (used after detecting corruption)."""
        try:
            os.unlink(self.object_path(key))
        except FileNotFoundError:
            pass
        if key in self._manifest["items"]:
            del self._manifest["items"][key]
            self._write_manifest()

    def reset(self) -> None:
        """Drop every stored outcome and start a fresh manifest.

        Also wipes the chunk-granular stream-state directory: a fresh
        run must never fast-forward over another run's chunks.
        """
        shutil.rmtree(self.objects_dir, ignore_errors=True)
        shutil.rmtree(stream_state_dir(self.root), ignore_errors=True)
        try:
            os.unlink(self.manifest_path)
        except FileNotFoundError:
            pass
        os.makedirs(self.objects_dir, exist_ok=True)
        self._manifest = {"schema": CHECKPOINT_SCHEMA_VERSION, "items": {}}

    # ------------------------------------------------------------------
    # Test/fault-injection support
    # ------------------------------------------------------------------
    def corrupt(self, key: str, position: int = -1) -> None:
        """Flip one byte of a stored object (fault-injection helper)."""
        path = self.object_path(key)
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        if not data:
            raise CheckpointError(f"checkpoint object {key} is empty")
        data[position] ^= 0xFF
        _atomic_write(path, bytes(data))

    def truncate(self, key: str, keep: Optional[int] = None) -> None:
        """Cut a stored object short (simulates a kill mid-write that
        raced the rename, or disk-level truncation)."""
        path = self.object_path(key)
        with open(path, "rb") as handle:
            data = handle.read()
        keep = len(data) // 2 if keep is None else keep
        _atomic_write(path, data[:keep])
