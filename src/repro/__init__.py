"""MFG-CP: joint mobile edge caching and pricing via mean-field games.

A from-scratch Python reproduction of "Joint Mobile Edge Caching and
Pricing: A Mean-Field Game Approach" (ICDE 2024).  The package
implements the full system: the stochastic channel and caching-state
substrates, the wireless network and economic models, the coupled
HJB-FPK mean-field solver with iterative best-response learning, the
finite-population stochastic differential game simulator, the four
comparison baselines, and a request-level serving engine
(:mod:`repro.serve`) that replays traces against EDP edge caches.

Quickstart
----------
>>> from repro import MFGCPConfig, MFGCPSolver
>>> result = MFGCPSolver(MFGCPConfig.fast()).solve()
>>> result.report.converged
True
"""

from repro.core.parameters import (
    CachingParameters,
    ChannelParameters,
    MFGCPConfig,
    PaperParameters,
)
from repro.core.grid import BatchGrid, StateGrid
from repro.core.solver import EpochResult, MFGCPSolver
from repro.core.best_response import (
    BatchedBestResponseIterator,
    BestResponseIterator,
    build_grid,
)
from repro.core.equilibrium import ConvergenceReport, EquilibriumResult, IterationRecord
from repro.core.policy import CachingPolicy, optimal_control
from repro.core.hjb import HJBSolution, HJBSolver
from repro.core.fpk import FPKSolver, initial_density
from repro.core.mean_field import MeanFieldEstimator, MeanFieldPath
from repro.core.knapsack import (
    KnapsackItem,
    capacity_constrained_placement,
    solve_01_knapsack,
    solve_fractional_knapsack,
)

from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess
from repro.sde.caching_state import CachingDrift, CachingStateProcess
from repro.sde.brownian import BrownianMotion
from repro.sde.euler_maruyama import EulerMaruyamaIntegrator, SDEPath

from repro.network.topology import NetworkTopology, PlacementConfig
from repro.network.channel import ChannelModel
from repro.network.rate import RateModel
from repro.network.interference import calibrate_channel, mean_interference
from repro.core.theory import (
    Lemma1Report,
    Lemma2Report,
    Theorem2Report,
    verify_lemma1,
    verify_lemma2,
    verify_theorem2,
)
from repro.core.semilagrangian import (
    SLBestResponseIterator,
    SLFPKSolver,
    SLHJBSolver,
)
from repro.core.multi_population import (
    MultiPopulationIterator,
    MultiPopulationResult,
)
from repro.core.stationary import StationaryResult, StationarySolver

from repro.content.catalog import Content, ContentCatalog
from repro.content.popularity import PopularityTracker, ZipfPopularity
from repro.content.timeliness import TimelinessModel, TimelinessTracker
from repro.content.requests import RequestBatch, RequestProcess
from repro.content.trace import (
    SyntheticYouTubeTrace,
    TraceLoadResult,
    TraceRecord,
    load_trace_csv,
    trace_to_popularity,
)

from repro.economics.utility import (
    EconomicParameters,
    MarketContext,
    UtilityBreakdown,
    UtilityModel,
)
from repro.economics.pricing import PricingModel
from repro.economics.cases import CaseProbabilities

from repro.game.simulator import GameSimulator, SimulationReport
from repro.game.multi_content import MultiContentGameSimulator, MultiContentReport
from repro.game.state import PopulationState
from repro.game.nash import ConstantScheme, DeviationProbe, exploitability

from repro.obs import (
    BufferSink,
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    NullSink,
    SolverTelemetry,
    SpanRecorder,
    TelemetrySnapshot,
    load_run,
    read_events,
    render_report,
)

from repro.runtime import (
    ExecutionPlan,
    Executor,
    ItemOutcome,
    ParallelExecutor,
    SerialExecutor,
    WorkItem,
    as_executor,
    make_executor,
    partition_batches,
    partition_indices,
)

from repro.serve import (
    EdgeCache,
    MFGPolicyAdapter,
    ServingEngine,
    ServingPolicy,
    ServingReport,
)

from repro.baselines.base import CachingScheme, SchemeDecision
from repro.baselines.mfg_cp import MFGCPScheme
from repro.baselines.mfg_nosharing import MFGNoSharingScheme
from repro.baselines.most_popular import MostPopularScheme
from repro.baselines.random_replacement import RandomReplacementScheme
from repro.baselines.udcs import UDCSScheme

__version__ = "1.0.0"

__all__ = [
    # core
    "MFGCPConfig",
    "PaperParameters",
    "ChannelParameters",
    "CachingParameters",
    "StateGrid",
    "MFGCPSolver",
    "EpochResult",
    "BatchGrid",
    "BatchedBestResponseIterator",
    "BestResponseIterator",
    "build_grid",
    "EquilibriumResult",
    "ConvergenceReport",
    "IterationRecord",
    "CachingPolicy",
    "optimal_control",
    "HJBSolver",
    "HJBSolution",
    "FPKSolver",
    "initial_density",
    "MeanFieldEstimator",
    "MeanFieldPath",
    "KnapsackItem",
    "solve_fractional_knapsack",
    "solve_01_knapsack",
    "capacity_constrained_placement",
    # sde
    "OrnsteinUhlenbeckProcess",
    "CachingStateProcess",
    "CachingDrift",
    "BrownianMotion",
    "EulerMaruyamaIntegrator",
    "SDEPath",
    # network
    "NetworkTopology",
    "PlacementConfig",
    "ChannelModel",
    "RateModel",
    "calibrate_channel",
    "mean_interference",
    # theory
    "Lemma1Report",
    "Lemma2Report",
    "Theorem2Report",
    "verify_lemma1",
    "verify_lemma2",
    "verify_theorem2",
    "SLBestResponseIterator",
    "SLFPKSolver",
    "SLHJBSolver",
    "MultiPopulationIterator",
    "MultiPopulationResult",
    "StationaryResult",
    "StationarySolver",
    # content
    "Content",
    "ContentCatalog",
    "ZipfPopularity",
    "PopularityTracker",
    "TimelinessModel",
    "TimelinessTracker",
    "RequestProcess",
    "RequestBatch",
    "SyntheticYouTubeTrace",
    "TraceRecord",
    "TraceLoadResult",
    "load_trace_csv",
    "trace_to_popularity",
    # economics
    "EconomicParameters",
    "MarketContext",
    "UtilityModel",
    "UtilityBreakdown",
    "PricingModel",
    "CaseProbabilities",
    # game
    "GameSimulator",
    "SimulationReport",
    "MultiContentGameSimulator",
    "MultiContentReport",
    "PopulationState",
    "ConstantScheme",
    "DeviationProbe",
    "exploitability",
    # observability
    "SolverTelemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanRecorder",
    "JsonlSink",
    "NullSink",
    "BufferSink",
    "TelemetrySnapshot",
    "read_events",
    "load_run",
    "render_report",
    # runtime
    "ExecutionPlan",
    "WorkItem",
    "ItemOutcome",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "partition_batches",
    "partition_indices",
    "as_executor",
    "make_executor",
    # serving
    "ServingEngine",
    "ServingPolicy",
    "ServingReport",
    "MFGPolicyAdapter",
    "EdgeCache",
    # baselines
    "CachingScheme",
    "SchemeDecision",
    "MFGCPScheme",
    "MFGNoSharingScheme",
    "MostPopularScheme",
    "RandomReplacementScheme",
    "UDCSScheme",
    "__version__",
]
