"""Channel gain model: fading plus distance path loss.

Section II-A defines the channel gain between EDP ``i`` and requester
``j`` as ``|g_{i,j}(t)|^2 = |h_{i,j}(t)|^2 d_{i,j}^{-tau}``, combining
the OU fading coefficient of Eq. (1) with deterministic path loss of
exponent ``tau``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess


def channel_gain(fading: np.ndarray, distance: np.ndarray, path_loss_exponent: float) -> np.ndarray:
    """Squared channel gain ``|g|^2 = |h|^2 * d^{-tau}``.

    Parameters
    ----------
    fading:
        Channel fading coefficient(s) ``h``; may be any broadcastable
        shape against ``distance``.
    distance:
        Link distance(s) in metres; must be strictly positive.
    path_loss_exponent:
        The exponent ``tau`` (the paper uses ``tau = 3``).
    """
    distance = np.asarray(distance, dtype=float)
    if np.any(distance <= 0):
        raise ValueError("distances must be strictly positive")
    h = np.asarray(fading, dtype=float)
    return np.abs(h) ** 2 * distance ** (-path_loss_exponent)


@dataclass
class ChannelModel:
    """Per-link channel state combining OU fading with path loss.

    The model maintains one fading coefficient per link and advances
    them jointly with the exact OU transition law (no discretisation
    error accumulates over long simulations).

    Parameters
    ----------
    fading_process:
        The shared OU law (Eq. (1) parameters).
    distances:
        Matrix of link distances, shape ``(n_edps, n_requesters)``.
    path_loss_exponent:
        ``tau`` in the ``d^{-tau}`` law.
    initial_fading:
        Optional initial fading matrix; defaults to a draw from the OU
        stationary law so simulations start in steady state.
    """

    fading_process: OrnsteinUhlenbeckProcess
    distances: np.ndarray
    path_loss_exponent: float = 3.0
    initial_fading: Optional[np.ndarray] = None
    fading: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.distances = np.asarray(self.distances, dtype=float)
        if np.any(self.distances <= 0):
            raise ValueError("distances must be strictly positive")
        if self.initial_fading is not None:
            fading = np.asarray(self.initial_fading, dtype=float)
            if fading.shape != self.distances.shape:
                raise ValueError(
                    f"initial_fading shape {fading.shape} does not match "
                    f"distances shape {self.distances.shape}"
                )
            self.fading = fading.copy()
        else:
            mean, std = self.fading_process.stationary_moments()
            self.fading = self.fading_process.rng.normal(
                mean, std, size=self.distances.shape
            )

    def advance(self, dt: float) -> np.ndarray:
        """Advance all link fading coefficients by ``dt`` (exact law)."""
        mean, std = self.fading_process.transition_moments(self.fading, dt)
        self.fading = self.fading_process.rng.normal(mean, std)
        return self.fading

    def gains(self) -> np.ndarray:
        """Current squared channel gains for every link."""
        return channel_gain(self.fading, self.distances, self.path_loss_exponent)

    def gain(self, edp: int, requester: int) -> float:
        """Squared gain of a single EDP-requester link."""
        return float(
            channel_gain(
                self.fading[edp, requester],
                self.distances[edp, requester],
                self.path_loss_exponent,
            )
        )
