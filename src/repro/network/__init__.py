"""Wireless network substrate for MFG-CP.

Implements the paper's Section II-A network model:

* random placement of EDPs and requesters and nearest-EDP association
  (:mod:`repro.network.topology`),
* channel gain ``|g|^2 = |h|^2 d^{-tau}`` combining OU fading with
  distance path loss (:mod:`repro.network.channel`), and
* the SINR-based achievable wireless rate of Eq. (2)
  (:mod:`repro.network.rate`).
"""

from repro.network.topology import NetworkTopology, PlacementConfig
from repro.network.channel import ChannelModel, channel_gain
from repro.network.rate import RateModel, sinr, transmission_rate
from repro.network.interference import calibrate_channel, mean_interference

__all__ = [
    "NetworkTopology",
    "PlacementConfig",
    "ChannelModel",
    "channel_gain",
    "RateModel",
    "sinr",
    "transmission_rate",
    "calibrate_channel",
    "mean_interference",
]
