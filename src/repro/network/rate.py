"""Achievable wireless transmission rate, Eq. (2).

The downlink rate from EDP ``i`` to requester ``j`` is the Shannon
capacity under interference from all other EDPs:

    H_{i,j}(t) = B log2( 1 + |g_{i,j}|^2 G_i
                         / (rho^2 + sum_{i' != i} |g_{i',j}|^2 G_{i'}) ).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def sinr(gains: np.ndarray, powers: np.ndarray, noise_power: float) -> np.ndarray:
    """Per-link SINR matrix from the squared-gain matrix.

    Parameters
    ----------
    gains:
        Squared channel gains ``|g_{i,j}|^2`` of shape
        ``(n_edps, n_requesters)``.
    powers:
        Transmission powers ``G_i`` of shape ``(n_edps,)``.
    noise_power:
        Noise power ``rho^2`` (> 0).

    Returns
    -------
    numpy.ndarray
        Matrix ``sinr[i, j]`` where the interference for link ``(i, j)``
        is the received power at ``j`` from every other EDP.
    """
    gains = np.asarray(gains, dtype=float)
    powers = np.asarray(powers, dtype=float)
    if gains.ndim != 2:
        raise ValueError(f"gains must be a 2-D matrix, got ndim={gains.ndim}")
    if powers.shape != (gains.shape[0],):
        raise ValueError(
            f"powers shape {powers.shape} does not match {gains.shape[0]} EDPs"
        )
    if noise_power <= 0:
        raise ValueError(f"noise_power must be positive, got {noise_power}")
    received = gains * powers[:, None]
    total_per_requester = received.sum(axis=0)
    interference = total_per_requester[None, :] - received
    return received / (noise_power + interference)


def transmission_rate(
    gains: np.ndarray, powers: np.ndarray, noise_power: float, bandwidth: float
) -> np.ndarray:
    """Shannon rate matrix of Eq. (2): ``B log2(1 + SINR)``."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    return bandwidth * np.log2(1.0 + sinr(gains, powers, noise_power))


@dataclass(frozen=True)
class RateModel:
    """Eq. (2) bound to fixed radio parameters.

    Attributes
    ----------
    bandwidth:
        Transmission bandwidth ``B`` (Hz; the paper uses 10 MHz).  When
        the economic model works in MB/s, pass the bandwidth already
        converted so the produced rates carry the desired unit.
    noise_power:
        Noise power ``rho^2``.
    """

    bandwidth: float
    noise_power: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.noise_power <= 0:
            raise ValueError(f"noise_power must be positive, got {self.noise_power}")

    def rates(self, gains: np.ndarray, powers: np.ndarray) -> np.ndarray:
        """Rate matrix for the current channel gains."""
        return transmission_rate(gains, powers, self.noise_power, self.bandwidth)

    def interference_free_rate(self, gain: float, power: float) -> float:
        """Single-link rate with no interferers (upper bound)."""
        if gain < 0 or power < 0:
            raise ValueError("gain and power must be non-negative")
        return float(self.bandwidth * np.log2(1.0 + gain * power / self.noise_power))

    def effective_rate_of_fading(
        self,
        fading: np.ndarray,
        distance: float,
        power: float,
        path_loss_exponent: float,
        interference: float = 0.0,
    ) -> np.ndarray:
        """Rate as a scalar function of the fading coefficient ``h``.

        This is the reduction used on the mean-field grid, where the
        generic EDP's state carries a single ``h`` value: interference
        is summarised by a constant (its mean-field average) instead of
        per-link terms.
        """
        fading = np.asarray(fading, dtype=float)
        gain = np.abs(fading) ** 2 * distance ** (-path_loss_exponent)
        return self.bandwidth * np.log2(
            1.0 + gain * power / (self.noise_power + interference)
        )
