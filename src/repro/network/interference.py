"""Mean-field interference calibration.

The state grid of the mean-field game carries a single fading
coordinate per EDP, so the per-link interference sum of Eq. (2) must be
summarised by a constant (its population average).  This module
estimates that constant from an actual topology:

    E[I_j] = sum_{i' != serving(j)}  E[|h|^2] * G_{i'} * d_{i',j}^{-tau}

with ``E[|h|^2] = mean^2 + std^2`` of the stationary OU fading law, and
returns a :class:`repro.core.parameters.ChannelParameters` copy whose
``mean_distance`` and ``mean_interference`` reflect the topology — so
grid-level rates match what the deployed network would deliver.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from repro.network.topology import NetworkTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parameters
    # imports network.rate, so this module must not import parameters
    # at runtime; the functions only use ChannelParameters duck-typed).
    from repro.core.parameters import ChannelParameters


def mean_interference(
    topology: NetworkTopology, channel: "ChannelParameters"
) -> float:
    """Average received interference power at a requester.

    Averages, over requesters, the expected power received from every
    EDP except the serving one, under the stationary fading law.
    """
    ou_mean, ou_std = channel.process().stationary_moments()
    expected_h2 = ou_mean**2 + ou_std**2

    distances = topology.edp_requester_distances()
    received = (
        expected_h2
        * channel.transmission_power
        * distances ** (-channel.path_loss_exponent)
    )
    total = received.sum(axis=0)
    serving = topology.serving_edp()
    j = np.arange(distances.shape[1])
    interference = total - received[serving, j]
    return float(interference.mean()) if interference.size else 0.0


def calibrate_channel(
    topology: NetworkTopology,
    channel: "ChannelParameters",
    min_rate: float = 0.0,
) -> "ChannelParameters":
    """A channel parameter set whose mean-field reductions match a topology.

    Sets ``mean_distance`` to the topology's average association
    distance and ``mean_interference`` to :func:`mean_interference`.

    Parameters
    ----------
    min_rate:
        Minimum acceptable representative rate (same unit as the
        bandwidth, MB per unit time).  Dense interference-limited
        deployments saturate the SINR and can leave the representative
        rate below what the delay economics assume; pass the backhaul
        rate (or another floor) to fail fast in that regime.
    """
    calibrated = replace(
        channel,
        mean_distance=max(topology.mean_association_distance(), channel.mean_distance * 1e-6),
        mean_interference=mean_interference(topology, channel),
    )
    rate = float(calibrated.rate_of_fading(np.array(calibrated.mean)))
    if rate < min_rate:
        raise ValueError(
            f"calibrated representative rate {rate:.3f} is below the required "
            f"minimum {min_rate:.3f}; the deployment is interference-dominated "
            "at these radio parameters"
        )
    return calibrated
