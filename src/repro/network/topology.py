"""EDP / requester placement and association.

The paper's evaluation places EDPs and requesters "randomly distributed
within a certain range" and associates each requester with its
geographically nearest EDP (Section II-A).  :class:`NetworkTopology`
implements that placement, the pairwise distance matrix consumed by the
path-loss model, and adjacency queries used by the peer-sharing logic
(EDPs "give priority to adjacent EDPs" when buying uncached data).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class PlacementConfig:
    """Geometry of the simulated MEC area.

    Attributes
    ----------
    area_size:
        Side length of the square deployment area (metres).
    n_edps:
        Number of EDPs ``M``.
    n_requesters:
        Number of requesters ``J``.
    min_distance:
        Distances are floored at this value so the ``d^{-tau}`` path
        loss never diverges for co-located nodes.
    """

    area_size: float = 1000.0
    n_edps: int = 300
    n_requesters: int = 600
    min_distance: float = 1.0

    def __post_init__(self) -> None:
        if self.area_size <= 0:
            raise ValueError(f"area_size must be positive, got {self.area_size}")
        if self.n_edps < 1:
            raise ValueError(f"need at least one EDP, got {self.n_edps}")
        if self.n_requesters < 0:
            raise ValueError(f"n_requesters must be non-negative, got {self.n_requesters}")
        if self.min_distance <= 0:
            raise ValueError(f"min_distance must be positive, got {self.min_distance}")


@dataclass
class NetworkTopology:
    """Random uniform placement with nearest-EDP association.

    Construction samples positions once; the topology is static for a
    simulation run, matching the paper's fixed-distance assumption in
    Fig. 3 ("we set the fixed distance between EDPs and requesters") —
    requester mobility is instead captured by the OU fading process.
    """

    config: PlacementConfig
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    edp_positions: np.ndarray = field(init=False)
    requester_positions: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        size = self.config.area_size
        self.edp_positions = self.rng.uniform(0.0, size, size=(self.config.n_edps, 2))
        self.requester_positions = self.rng.uniform(
            0.0, size, size=(self.config.n_requesters, 2)
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def edp_requester_distances(self) -> np.ndarray:
        """Matrix ``d[i, j]`` of EDP-to-requester distances (metres)."""
        diff = self.edp_positions[:, None, :] - self.requester_positions[None, :, :]
        dist = np.linalg.norm(diff, axis=-1)
        return np.maximum(dist, self.config.min_distance)

    def edp_edp_distances(self) -> np.ndarray:
        """Matrix of pairwise EDP distances with zero diagonal.

        Returns a *copy* of the cached matrix, so callers may mutate
        the result without corrupting the stable graph API
        (:meth:`distance` / :meth:`neighbors` / :meth:`path`).
        """
        return self._edp_distance_matrix().copy()

    def _edp_distance_matrix(self) -> np.ndarray:
        """The cached pairwise EDP distance matrix (do not mutate)."""
        cached = getattr(self, "_edp_dist_cache", None)
        if cached is None:
            diff = self.edp_positions[:, None, :] - self.edp_positions[None, :, :]
            dist = np.linalg.norm(diff, axis=-1)
            off_diag = ~np.eye(self.config.n_edps, dtype=bool)
            dist[off_diag] = np.maximum(dist[off_diag], self.config.min_distance)
            dist.setflags(write=False)
            object.__setattr__(self, "_edp_dist_cache", dist)
            cached = dist
        return cached

    # ------------------------------------------------------------------
    # Association
    # ------------------------------------------------------------------
    def serving_edp(self) -> np.ndarray:
        """For each requester, the index of its nearest EDP."""
        return np.argmin(self.edp_requester_distances(), axis=0)

    def served_requesters(self) -> Dict[int, List[int]]:
        """Map from each EDP index to its set ``J_i`` of requesters."""
        assignment = self.serving_edp()
        served: Dict[int, List[int]] = {i: [] for i in range(self.config.n_edps)}
        for j, i in enumerate(assignment):
            served[int(i)].append(j)
        return served

    def load_per_edp(self) -> np.ndarray:
        """Number of requesters served by each EDP."""
        counts = np.zeros(self.config.n_edps, dtype=int)
        np.add.at(counts, self.serving_edp(), 1)
        return counts

    # ------------------------------------------------------------------
    # Stable graph API (adjacency, distance, shortest paths)
    # ------------------------------------------------------------------
    # These three methods are the documented graph surface other
    # subsystems build on (``repro.serve.net`` derives its MESH cache
    # networks from them) — deterministic given the placement, with
    # explicit tie-breaking, and no distance-matrix recomputation.

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between EDPs ``a`` and ``b`` (metres).

        Zero for ``a == b``; otherwise floored at
        ``config.min_distance`` like every other distance query.
        """
        self._check_edp(a)
        self._check_edp(b)
        return float(self._edp_distance_matrix()[a, b])

    def neighbors(
        self,
        edp: int,
        radius: Optional[float] = None,
        k: Optional[int] = None,
    ) -> np.ndarray:
        """EDPs adjacent to ``edp``, nearest first.

        Either all peers within ``radius`` metres, or the ``k`` nearest
        peers when ``radius`` is ``None`` (defaulting to the 5
        nearest).  Ordering is deterministic: ascending distance with
        the EDP index breaking ties, so equal-distance placements
        yield the same neighbour list on every platform.
        """
        self._check_edp(edp)
        dist = self._edp_distance_matrix()[edp].copy()
        dist[edp] = np.inf
        # Lexicographic (distance, index) order: stable under ties.
        order = np.lexsort((np.arange(dist.size), dist))
        if radius is not None:
            within = order[dist[order] <= radius]
            return within
        k = 5 if k is None else int(k)
        if k < 0:
            raise ValueError(f"neighbour count must be non-negative, got {k}")
        k = min(k, self.config.n_edps - 1)
        return order[:k]

    def path(
        self,
        a: int,
        b: int,
        radius: Optional[float] = None,
        k: Optional[int] = None,
    ) -> List[int]:
        """Shortest EDP-to-EDP path over the adjacency graph.

        The graph is the symmetrised :meth:`neighbors` relation (an
        edge exists when either endpoint lists the other), weighted by
        Euclidean distance; Dijkstra with (cost, node-index) ordering
        makes the returned path deterministic under ties.  Raises
        ``ValueError`` when ``b`` is unreachable — callers deciding to
        densify the graph (larger ``k`` / ``radius``) should catch it.
        """
        self._check_edp(a)
        self._check_edp(b)
        if a == b:
            return [a]
        n = self.config.n_edps
        adjacency: List[set] = [set() for _ in range(n)]
        for u in range(n):
            for v in self.neighbors(u, radius=radius, k=k):
                adjacency[u].add(int(v))
                adjacency[int(v)].add(u)
        dist_m = self._edp_distance_matrix()
        best = {a: 0.0}
        parent: Dict[int, int] = {}
        frontier = [(0.0, a)]
        while frontier:
            cost, u = heapq.heappop(frontier)
            if u == b:
                break
            if cost > best.get(u, np.inf):
                continue
            for v in sorted(adjacency[u]):
                candidate = cost + float(dist_m[u, v])
                if candidate < best.get(v, np.inf) - 1e-12:
                    best[v] = candidate
                    parent[v] = u
                    heapq.heappush(frontier, (candidate, v))
        if b not in best:
            raise ValueError(
                f"EDP {b} is unreachable from {a} over the "
                f"{'radius' if radius is not None else 'k-nearest'} "
                f"adjacency graph; widen the neighbourhood"
            )
        hops = [b]
        while hops[-1] != a:
            hops.append(parent[hops[-1]])
        return hops[::-1]

    def adjacent_edps(self, edp: int, radius: Optional[float] = None, k: Optional[int] = None) -> np.ndarray:
        """EDPs adjacent to ``edp`` for peer content sharing.

        Kept for the peer-sharing call sites; delegates to the stable
        :meth:`neighbors` API.
        """
        return self.neighbors(edp, radius=radius, k=k)

    def _check_edp(self, edp: int) -> None:
        if edp < 0 or edp >= self.config.n_edps:
            raise IndexError(f"EDP index {edp} out of range [0, {self.config.n_edps})")

    def mean_association_distance(self) -> float:
        """Average distance between a requester and its serving EDP."""
        if self.config.n_requesters == 0:
            return 0.0
        dist = self.edp_requester_distances()
        serving = self.serving_edp()
        return float(dist[serving, np.arange(self.config.n_requesters)].mean())
