"""Constant-memory streaming aggregates: quantile sketches and windows.

Two primitives back the live-observability layer:

* :class:`QuantileSketch` — a deterministic relative-error quantile
  sketch over logarithmic buckets (the DDSketch construction).  Memory
  is bounded by the *dynamic range* of the observations, never by
  their count, so a 10⁷-request replay carries the same metrics state
  as a 10³-request one.
* :class:`WindowedAggregator` — tumbling-window sums keyed by a
  monotone integer index (completed items, requests, epochs — never
  wall time), with bounded window retention.  The live status file
  derives its "recent hit ratio" and throughput views from it.

Both are pure python + dict arithmetic: no wall clock, no randomness,
no platform-dependent state.  A sketch built from the same multiset of
observations is identical however the observations were ordered or
sharded, which is what lets :meth:`QuantileSketch.merge` ride the
ordered telemetry merge of :mod:`repro.runtime` without breaking the
serial-vs-parallel bit-identity contract.

Error bound (the documented guarantee)
--------------------------------------
For ``relative_accuracy = a``, :meth:`QuantileSketch.quantile` returns
a value within relative error ``a`` of the exact *nearest-rank* order
statistic: for the p-th quantile of ``n`` observations the reference
value is ``sorted(xs)[ceil(p/100 * n) - 1]`` (``numpy.percentile``
with ``method="inverted_cdf"``), and the sketch's answer ``x̂``
satisfies ``|x̂ - x| <= a * |x|``.  Zeros are represented exactly.
The property suite (``tests/properties/test_sketch_properties.py``)
holds this bound on adversarial distributions.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

DEFAULT_RELATIVE_ACCURACY = 0.01
"""Default sketch accuracy: quantiles within 1% of the true value."""


class QuantileSketch:
    """A deterministic DDSketch-style relative-error quantile sketch.

    Positive observations land in logarithmic buckets indexed by
    ``ceil(log(x) / log(gamma))`` with ``gamma = (1+a)/(1-a)``;
    negatives mirror into a second bucket store; zeros are counted
    exactly.  A bucket's representative value ``2*gamma^i / (gamma+1)``
    is within relative error ``a`` of every value the bucket covers.

    Memory is ``O(log(max|x| / min|x|) / a)`` buckets — independent of
    the number of observations (for float64 inputs at the default 1%
    accuracy the hard ceiling is ~71k buckets; real telemetry spans a
    few decades and stays in the tens).

    Merging adds bucket counts, which is commutative and associative:
    a sketch of a sharded stream is *identical* for every shard
    permutation and for the unsharded stream.
    """

    __slots__ = (
        "relative_accuracy", "_gamma", "_log_gamma",
        "_pos", "_neg", "_n_zero",
        "count", "sum", "min", "max",
    )

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must lie in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = float(relative_accuracy)
        self._gamma = (1.0 + self.relative_accuracy) / (1.0 - self.relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._n_zero = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _bucket(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def _representative(self, index: int) -> float:
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value``."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"sketch observations must be finite, got {value}")
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        if value > 0.0:
            store, magnitude = self._pos, value
        elif value < 0.0:
            store, magnitude = self._neg, -value
        else:
            self._n_zero += count
            store = None
        if store is not None:
            index = self._bucket(magnitude)
            store[index] = store.get(index, 0) + count
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        """Occupied bucket count — the sketch's memory footprint."""
        return len(self._pos) + len(self._neg) + (1 if self._n_zero else 0)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, p: float) -> float:
        """The ``p``-th percentile (0-100), within the error bound.

        Rank convention is nearest-rank (``inverted_cdf``): the value
        returned approximates ``sorted(xs)[max(0, ceil(p/100*n) - 1)]``.
        The exact minimum / maximum are returned at p=0 / p=100.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {p}")
        if self.count == 0:
            raise ValueError("sketch has no observations")
        if p == 0.0:
            return self.min
        if p == 100.0:
            return self.max
        rank = max(0, int(math.ceil(p / 100.0 * self.count)) - 1)
        # Walk the merged value order: negatives (most negative first),
        # zeros, then positives ascending.
        seen = 0
        for index in sorted(self._neg, reverse=True):
            seen += self._neg[index]
            if rank < seen:
                return max(-self._representative(index), self.min)
        seen += self._n_zero
        if rank < seen:
            return 0.0
        for index in sorted(self._pos):
            seen += self._pos[index]
            if rank < seen:
                # Clamp into the exact observed range so p→0/p→100
                # never report a representative outside [min, max].
                return min(max(self._representative(index), self.min), self.max)
        return self.max  # unreachable unless counts drifted

    # ------------------------------------------------------------------
    # Merging / serialisation
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (commutative, order-independent)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        for index, n in other._pos.items():
            self._pos[index] = self._pos.get(index, 0) + n
        for index, n in other._neg.items():
            self._neg[index] = self._neg.get(index, 0) + n
        self._n_zero += other._n_zero
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(self.relative_accuracy)
        clone.merge(self)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self._pos == other._pos
            and self._neg == other._neg
            and self._n_zero == other._n_zero
            and self.count == other.count
        )

    def __getstate__(self):
        return {
            "relative_accuracy": self.relative_accuracy,
            "pos": self._pos,
            "neg": self._neg,
            "n_zero": self._n_zero,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def __setstate__(self, state) -> None:
        self.__init__(state["relative_accuracy"])
        self._pos = dict(state["pos"])
        self._neg = dict(state["neg"])
        self._n_zero = int(state["n_zero"])
        self.count = int(state["count"])
        self.sum = float(state["sum"])
        self.min = float(state["min"])
        self.max = float(state["max"])

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(a={self.relative_accuracy}, n={self.count}, "
            f"bins={self.n_bins})"
        )


class WindowedAggregator:
    """Tumbling-window field sums keyed by a monotone integer index.

    ``observe(index, requests=120, hits=90)`` accumulates named fields
    into the window ``index // window``; at most ``retain`` completed
    windows are kept (older ones are dropped), so memory is constant
    however long the run is.  Windows are keyed by *logical* progress
    (request ordinal, completed-item ordinal, epoch) — never wall time
    — so two runs of the same plan produce identical window contents.
    """

    __slots__ = ("window", "retain", "_windows")

    def __init__(self, window: int, retain: int = 32) -> None:
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        if retain < 1:
            raise ValueError(f"retain must be positive, got {retain}")
        self.window = int(window)
        self.retain = int(retain)
        self._windows: "OrderedDict[int, Dict[str, float]]" = OrderedDict()

    def observe(self, index: int, **fields: float) -> None:
        """Accumulate ``fields`` into the window holding ``index``."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        key = int(index) // self.window
        entry = self._windows.get(key)
        if entry is None:
            entry = self._windows[key] = {"_n": 0.0}
            while len(self._windows) > self.retain:
                self._windows.popitem(last=False)
        entry["_n"] += 1.0
        for name, value in fields.items():
            entry[name] = entry.get(name, 0.0) + float(value)

    @property
    def n_windows(self) -> int:
        return len(self._windows)

    def keys(self) -> List[int]:
        return list(self._windows)

    def window_totals(self, key: int) -> Dict[str, float]:
        return dict(self._windows.get(key, {}))

    def totals(self, last: Optional[int] = None) -> Dict[str, float]:
        """Summed fields over the newest ``last`` retained windows."""
        keys = list(self._windows)
        if last is not None:
            keys = keys[-int(last):]
        out: Dict[str, float] = {}
        for key in keys:
            for name, value in self._windows[key].items():
                out[name] = out.get(name, 0.0) + value
        return out

    def ratio(self, numerator: str, denominator: str,
              last: Optional[int] = None) -> float:
        """``sum(numerator) / sum(denominator)`` over recent windows."""
        totals = self.totals(last=last)
        denom = totals.get(denominator, 0.0)
        return totals.get(numerator, 0.0) / denom if denom else float("nan")
