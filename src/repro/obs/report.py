"""Offline summariser for telemetry JSONL runs (``repro report``).

Reads an event stream produced by :class:`~repro.obs.telemetry.SolverTelemetry`
and reconstructs the three views the CLI prints:

* the aggregated wall-time **span tree** (where the seconds went);
* the **iteration table** of Alg. 2 fixed-point diagnostics with
  per-stage timings;
* the **numerical health** summary of ``diag.*`` probe findings;
* the **fault tolerance** summary of ``item.*`` bookkeeping (checkpoint
  cache hits, retries, exhausted items) when the run used the
  resumable executor;
* the **top metrics** from the final registry snapshot;
* a **serving replays** table when the run contains
  ``serving_report`` events from :mod:`repro.serve`;
* a **cache networks** table when the run contains
  ``network_report`` events from :mod:`repro.serve.net`.

Everything here is pure data transformation over dicts, so the report
is reproducible from the file alone — no live solver state needed.
Truncated final lines (a run killed mid-write) are skipped and
counted, not fatal — the surviving prefix still summarises.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from repro.obs.events import read_events_tolerant
from repro.obs.sketch import QuantileSketch

DIAG_PREFIX = "diag."
_SEVERITY_ORDER = {"info": 0, "warning": 1, "error": 2}


def _format_table(*args, **kwargs):
    # Imported lazily: repro.analysis pulls in the game/baseline stack,
    # which itself imports repro.obs — a module-level import would be
    # circular during package initialisation.
    from repro.analysis.reporting import format_table

    return format_table(*args, **kwargs)


@dataclass
class RunSummary:
    """Everything parsed out of one telemetry JSONL file."""

    events: List[Dict[str, Any]]
    span_totals: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    span_sketches: Dict[str, QuantileSketch] = field(default_factory=dict)
    iterations: List[Dict[str, Any]] = field(default_factory=list)
    solve_ends: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    serving_reports: List[Dict[str, Any]] = field(default_factory=list)
    network_reports: List[Dict[str, Any]] = field(default_factory=list)
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)
    fault_events: List[Dict[str, Any]] = field(default_factory=list)
    n_skipped: int = 0
    schema_version: Optional[int] = None

    @property
    def n_events(self) -> int:
        return len(self.events)

    def final_solve(self) -> Optional[Dict[str, Any]]:
        """The last ``solve_end`` event, if any solve completed."""
        return self.solve_ends[-1] if self.solve_ends else None

    def diag_counts(self) -> Dict[str, int]:
        """Findings per severity across every ``diag.*`` event."""
        counts = {"info": 0, "warning": 0, "error": 0}
        for event in self.diagnostics:
            severity = str(event.get("severity", "info"))
            counts[severity] = counts.get(severity, 0) + 1
        return counts

    def diag_by_check(self) -> Dict[str, Dict[str, Any]]:
        """Per-check roll-up: count, worst severity, last value."""
        rollup: Dict[str, Dict[str, Any]] = {}
        for event in self.diagnostics:
            check = str(event.get("ev", ""))[len(DIAG_PREFIX) :]
            severity = str(event.get("severity", "info"))
            entry = rollup.setdefault(
                check,
                {"count": 0, "worst": "info", "value": None, "message": ""},
            )
            entry["count"] += 1
            if _SEVERITY_ORDER.get(severity, 0) >= _SEVERITY_ORDER.get(
                entry["worst"], 0
            ):
                entry["worst"] = severity
                if event.get("message"):
                    entry["message"] = str(event["message"])
            if "value" in event:
                entry["value"] = event["value"]
        return rollup


def load_run(source: Union[str, "os.PathLike[str]", IO[str]]) -> RunSummary:
    """Parse a JSONL event stream into a :class:`RunSummary`.

    Malformed lines (typically a final line truncated when the run was
    killed) are skipped and tallied in ``n_skipped``; the report header
    surfaces the count.
    """
    events, skipped = read_events_tolerant(source)
    summary = RunSummary(events=events, n_skipped=skipped)
    for event in events:
        kind = event.get("ev")
        if kind == "schema":
            summary.schema_version = int(event.get("version", 0)) or None
        elif kind == "span":
            path = str(event.get("path", ""))
            count, total = summary.span_totals.get(path, (0, 0.0))
            duration = float(event.get("dur_s", 0.0))
            summary.span_totals[path] = (count + 1, total + duration)
            # Per-path duration sketch: constant memory regardless of
            # how many times the span fired, feeds the p50/p90/p99
            # columns of the span tree.
            sketch = summary.span_sketches.get(path)
            if sketch is None:
                sketch = summary.span_sketches[path] = QuantileSketch()
            if math.isfinite(duration):
                sketch.record(duration)
        elif kind == "iteration":
            summary.iterations.append(event)
        elif kind == "solve_end":
            summary.solve_ends.append(event)
        elif kind == "metrics":
            # Later snapshots supersede earlier ones (one per close()).
            summary.metrics = dict(event.get("metrics", {}))
        elif kind == "serving_report":
            summary.serving_reports.append(event)
        elif kind == "network_report":
            summary.network_reports.append(event)
        elif kind in ("item.cached", "item.retry", "item.failed"):
            summary.fault_events.append(event)
        if isinstance(kind, str) and kind.startswith(DIAG_PREFIX):
            summary.diagnostics.append(event)
    return summary


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_span_tree(summary: RunSummary) -> str:
    """Indent the aggregated span paths into a wall-time tree."""
    if not summary.span_totals:
        return "(no spans recorded)"
    lines = ["span tree (total wall seconds, calls, mean ms; ~ marks "
             "sketch-approximated percentiles)"]
    for path in sorted(summary.span_totals):
        count, total = summary.span_totals[path]
        depth = path.count("/")
        name = path.rsplit("/", 1)[-1]
        mean_ms = (total / count) * 1e3 if count else 0.0
        line = (
            f"  {'  ' * depth}{name:<{max(1, 30 - 2 * depth)}} "
            f"{total:>9.4f}s  x{count:<5d} avg {mean_ms:8.2f} ms"
        )
        sketch = summary.span_sketches.get(path)
        if sketch is not None and sketch.count > 1:
            line += (
                f"  p50 ~{1e3 * sketch.quantile(50):.2f}"
                f"  p90 ~{1e3 * sketch.quantile(90):.2f}"
                f"  p99 ~{1e3 * sketch.quantile(99):.2f}"
            )
        lines.append(line)
    return "\n".join(lines)


def render_iteration_table(summary: RunSummary, max_rows: int = 40) -> str:
    """The Alg. 2 per-iteration convergence + timing table."""
    if not summary.iterations:
        return "(no iteration events recorded)"
    rows = []
    iterations = summary.iterations
    stride = max(1, len(iterations) // max_rows)
    shown = list(iterations[::stride])
    if shown[-1] is not iterations[-1]:
        shown.append(iterations[-1])  # always include the final iterate
    for it in shown:
        rows.append(
            (
                int(it.get("iteration", 0)),
                float(it.get("policy_change", float("nan"))),
                float(it.get("mean_field_change", float("nan"))),
                f"{1e3 * float(it.get('hjb_s', 0.0)):.2f}",
                f"{1e3 * float(it.get('fpk_s', 0.0)):.2f}",
                f"{1e3 * float(it.get('mean_field_s', 0.0)):.2f}",
            )
        )
    table = _format_table(
        ["iter", "policy delta", "mf delta", "hjb ms", "fpk ms", "mf ms"],
        rows,
        precision=6,
        title="iteration convergence",
    )
    end = summary.final_solve()
    if end is not None:
        status = "converged" if end.get("converged") else "NOT converged"
        table += (
            f"\n{status} after {int(end.get('n_iterations', 0))} iterations "
            f"(final policy change {float(end.get('final_policy_change', 0.0)):.3e})"
        )
    return table


def render_metrics(summary: RunSummary, top: int = 15) -> str:
    """The top metrics from the final registry snapshot."""
    if not summary.metrics:
        return "(no metrics recorded)"
    rows: List[Tuple[str, str, str]] = []
    for name in sorted(summary.metrics):
        entry = summary.metrics[name]
        kind = str(entry.get("kind", "?"))
        if kind == "histogram":
            if entry.get("count"):
                # `~` marks sketch-approximated percentiles (the
                # histogram overflowed its exact-sample cap); exact
                # histograms render unmarked.
                q = "~" if entry.get("approx") else ""
                detail = (
                    f"n={int(entry['count'])} mean={entry['mean']:.4g} "
                    f"p50={q}{entry['p50']:.4g} p90={q}{entry['p90']:.4g} "
                    f"max={entry['max']:.4g}"
                )
            else:
                detail = "n=0"
        else:
            detail = f"{entry.get('value', float('nan')):.6g}"
        rows.append((name, kind, detail))
    rows = rows[:top]
    return _format_table(["metric", "kind", "value"], rows, title="metrics")


def render_diagnostics(summary: RunSummary) -> str:
    """The numerical-health section: ``diag.*`` findings per check."""
    counts = summary.diag_counts()
    if not summary.diagnostics:
        return (
            "numerical health: no diag events recorded "
            "(telemetry predates the probes or probes were disabled)"
        )
    header = (
        "numerical health: "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info finding(s)"
    )
    rows = []
    rollup = summary.diag_by_check()
    for check in sorted(
        rollup,
        key=lambda c: (-_SEVERITY_ORDER.get(rollup[c]["worst"], 0), c),
    ):
        entry = rollup[check]
        value = entry["value"]
        rows.append(
            (
                check,
                entry["worst"],
                entry["count"],
                f"{value:.4g}" if isinstance(value, (int, float)) else "-",
                entry["message"] or "-",
            )
        )
    table = _format_table(
        ["check", "worst", "count", "last value", "message"],
        rows,
        title="numerical health",
    )
    return f"{header}\n{table}"


def render_serving(summary: RunSummary) -> str:
    """The serving replays recorded by :mod:`repro.serve` (if any)."""
    if not summary.serving_reports:
        return "(no serving replays recorded)"
    rows = [
        (
            str(ev.get("policy", "?")),
            int(ev.get("requests", 0)),
            float(ev.get("hit_ratio", float("nan"))),
            float(ev.get("staleness_violation_rate", float("nan"))),
            float(ev.get("backhaul_mb", float("nan"))),
        )
        for ev in summary.serving_reports
    ]
    table = _format_table(
        ["policy", "requests", "hit ratio", "staleness rate", "backhaul MB"],
        rows,
        title="serving replays",
    )
    # Per-EDP latency percentiles from the registry histogram; `~`
    # marks sketch-approximated quantiles (runs whose histograms
    # overflowed the exact cap), exact runs render unmarked.  Mixed
    # exact/sketch runs simply show whichever mode the final snapshot
    # ended in.
    latency = summary.metrics.get("serve.edp_mean_latency_s")
    if latency and latency.get("count"):
        q = "~" if latency.get("approx") else ""
        table += (
            "\nper-EDP mean latency: "
            f"p50 {q}{1e3 * float(latency.get('p50', 0.0)):.3f} ms, "
            f"p90 {q}{1e3 * float(latency.get('p90', 0.0)):.3f} ms, "
            f"p99 {q}{1e3 * float(latency.get('p99', 0.0)):.3f} ms "
            f"(n={int(latency['count'])})"
        )
    return table


def render_network(summary: RunSummary) -> str:
    """The cache-network replays recorded by :mod:`repro.serve.net`.

    One row per ``network_report`` event (one per strategy replayed),
    plus the replica-level hit-ratio spread from the registry histogram
    when the run captured one.
    """
    if not summary.network_reports:
        return "(no cache-network replays recorded)"
    rows = [
        (
            str(ev.get("strategy", "?")),
            str(ev.get("topology", "?")),
            int(ev.get("requests", 0)),
            float(ev.get("hit_ratio", float("nan"))),
            float(ev.get("mean_hops", float("nan"))),
            f"{1e3 * float(ev.get('mean_latency_s', float('nan'))):.3f}",
            float(ev.get("rejection_rate", float("nan"))),
        )
        for ev in summary.network_reports
    ]
    table = _format_table(
        ["strategy", "topology", "requests", "hit ratio", "mean hops",
         "latency ms", "queue rej"],
        rows,
        title="cache networks",
    )
    spread = summary.metrics.get("net.replica_hit_ratio")
    if spread and spread.get("count"):
        q = "~" if spread.get("approx") else ""
        table += (
            "\nper-replica hit ratio: "
            f"p50 {q}{float(spread.get('p50', 0.0)):.4f}, "
            f"p90 {q}{float(spread.get('p90', 0.0)):.4f} "
            f"(n={int(spread['count'])})"
        )
    return table


def render_fault_tolerance(summary: RunSummary) -> str:
    """The runtime resilience section: cache hits, retries, failures.

    Summarises the ``item.*`` bookkeeping emitted by the resumable
    executor — how many work items were restored from checkpoints, how
    many attempts were retried, and which items exhausted their retry
    budget (with the fault-policy action that resolved them).
    """
    if not summary.fault_events:
        return "(no fault-tolerance activity recorded)"
    cached = [e for e in summary.fault_events if e.get("ev") == "item.cached"]
    retries = [e for e in summary.fault_events if e.get("ev") == "item.retry"]
    failed = [e for e in summary.fault_events if e.get("ev") == "item.failed"]
    header = (
        "fault tolerance: "
        f"{len(cached)} item(s) restored from checkpoint, "
        f"{len(retries)} retry attempt(s), {len(failed)} item(s) exhausted"
    )
    rows = []
    for event in retries:
        rows.append(
            (
                str(event.get("label", event.get("index", "?"))),
                "retry",
                f"attempt {int(event.get('attempt', 0))}",
                str(event.get("error", event.get("reason", "-"))),
            )
        )
    for event in failed:
        rows.append(
            (
                str(event.get("label", event.get("index", "?"))),
                str(event.get("action", "fail")),
                f"{int(event.get('attempts', 0))} attempt(s)",
                str(event.get("error", "-")),
            )
        )
    if not rows:
        return header
    table = _format_table(
        ["item", "action", "attempts", "error"],
        rows,
        title="fault-tolerance events",
    )
    return f"{header}\n{table}"


def render_report(summary: RunSummary) -> str:
    """The full ``repro report`` body for one run."""
    header = f"telemetry run: {summary.n_events} events"
    if summary.schema_version is not None:
        header += f" (schema v{summary.schema_version})"
    if summary.n_skipped:
        header += f", {summary.n_skipped} malformed line(s) skipped"
    sections = [
        header,
        "",
        render_span_tree(summary),
        "",
        render_iteration_table(summary),
        "",
        render_diagnostics(summary),
        "",
        render_metrics(summary),
    ]
    if summary.fault_events:
        sections.extend(["", render_fault_tolerance(summary)])
    if summary.serving_reports:
        sections.extend(["", render_serving(summary)])
    if summary.network_reports:
        sections.extend(["", render_network(summary)])
    return "\n".join(sections)
