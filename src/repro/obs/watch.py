"""Terminal rendering for `repro watch` (live status dashboards).

Turns a status snapshot written by
:class:`~repro.obs.live.LiveStatusWriter` into a plain-ANSI text frame:
a progress bar, throughput and serving headline numbers (latency
percentiles carry the ``~`` sketch marker), diagnostic counts, and the
per-lane heartbeat table with stragglers flagged.  No curses, no
cursor addressing beyond clear-screen — the frames work in CI logs and
over ssh alike, and ``--once`` mode prints exactly one frame for
scripting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

CLEAR_SCREEN = "\x1b[2J\x1b[H"

_STATE_BADGES = {"running": "RUNNING", "done": "DONE", "failed": "FAILED"}


def _bar(done: int, total: Optional[int], width: int = 32) -> str:
    if not total:
        return f"[{'?' * width}] {done} items"
    total = max(int(total), 1)
    filled = min(width, int(round(width * done / total)))
    return (
        f"[{'#' * filled}{'.' * (width - filled)}] "
        f"{done}/{total} ({100.0 * done / total:.0f}%)"
    )


def _fmt_seconds(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds < 90:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(seconds), 60)
    if minutes < 90:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_status(status: Dict[str, Any]) -> str:
    """One dashboard frame for a live-status snapshot."""
    state = str(status.get("state", "?"))
    badge = _STATE_BADGES.get(state, state.upper())
    phase = str(status.get("phase", "?"))
    elapsed = _fmt_seconds(float(status.get("elapsed_s", 0.0)))
    lines: List[str] = [
        f"repro run status — {badge}",
        f"  phase    {phase}",
        f"  elapsed  {elapsed}",
    ]

    items = status.get("items", {})
    lines.append(
        "  items    "
        + _bar(int(items.get("done", 0)), items.get("total"))
    )
    extras = [
        f"{items[key]} {key}"
        for key in ("cached", "retried", "failed")
        if items.get(key)
    ]
    if extras:
        lines.append(f"           {', '.join(extras)}")
    phase_items = status.get("phase_items", {})
    if phase_items.get("total") and phase_items != items:
        lines.append(
            "  phase    "
            + _bar(int(phase_items.get("done", 0)), phase_items.get("total"))
        )

    throughput = status.get("throughput", {})
    rates = []
    if throughput.get("items_per_s"):
        rates.append(f"{throughput['items_per_s']:g} items/s")
    if throughput.get("requests_per_s"):
        rates.append(f"{throughput['requests_per_s']:g} req/s")
    if rates:
        lines.append(f"  rate     {', '.join(rates)}")

    stream = status.get("stream")
    if stream:
        parts = [
            f"{stream.get('workload', '?')}",
            f"{stream.get('n_chunks', '?')} chunk(s) × "
            f"{stream.get('chunk_slots', '?')} slot(s)",
        ]
        if stream.get("progress") is not None:
            parts.append(f"{100.0 * stream['progress']:.1f}% of "
                         f"{stream.get('expected_requests', 0):g} expected")
        lines.append(f"  stream   {', '.join(parts)}")

    requests = status.get("requests")
    if requests:
        parts = [f"{requests.get('total', 0)} requests"]
        if requests.get("hit_ratio") is not None:
            parts.append(f"hit ratio {requests['hit_ratio']:.4f}")
        if requests.get("window_hit_ratio") is not None:
            parts.append(f"recent {requests['window_hit_ratio']:.4f}")
        lines.append(f"  serving  {', '.join(parts)}")
    latency = status.get("latency_s")
    if latency:
        marker = "~" if latency.get("approx") else ""
        lines.append(
            "  latency  "
            f"p50 {marker}{1e3 * latency['p50']:.2f} ms  "
            f"p90 {marker}{1e3 * latency['p90']:.2f} ms  "
            f"p99 {marker}{1e3 * latency['p99']:.2f} ms"
        )

    diags = status.get("diags") or {}
    if any(diags.get(key) for key in ("warning", "error")):
        lines.append(
            "  diags    "
            f"{diags.get('error', 0)} error(s), "
            f"{diags.get('warning', 0)} warning(s)"
        )

    workers = status.get("workers") or {}
    stragglers = set(status.get("stragglers") or ())
    if workers:
        lines.append(f"  workers  {len(workers)} lane(s)")
        shown = sorted(
            workers,
            key=lambda lane: (lane not in stragglers, lane),
        )
        for lane in shown[:12]:
            info = workers[lane]
            flag = "  << STRAGGLER" if lane in stragglers else ""
            lines.append(
                f"    {lane:<28} {int(info.get('items', 0)):>4} item(s)  "
                f"last {_fmt_seconds(float(info.get('age_s', 0.0))):>6} ago"
                f"{flag}"
            )
        if len(shown) > 12:
            lines.append(f"    ... {len(shown) - 12} more lane(s)")
    return "\n".join(lines)
