"""Cross-run comparison for telemetry streams and benchmark files.

``repro compare A.jsonl B.jsonl`` answers the question every
performance or correctness PR raises: *did anything regress between
these two runs?*  The comparison covers the three observable surfaces:

* **span timings** — total wall seconds per span path, with a relative
  regression threshold (default +20%) and a noise floor so
  microsecond-level spans cannot trip it;
* **metrics** — counters and gauges by name (histograms compare their
  means), reported as relative changes;
* **diagnostics** — ``diag.*`` findings per severity; *new* errors or
  warnings in the candidate run are regressions regardless of timing.

``repro compare --bench A.json B.json`` applies the same relative-delta
machinery to benchmark JSON documents (``BENCH_*.json``), diffing every
numeric leaf by its dotted path.

The module is pure data transformation — comparisons are reproducible
from the files alone and never consult the clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.report import RunSummary

SPAN_NOISE_FLOOR_S = 5e-3
"""Spans whose baseline total is below this never count as regressions
— at sub-5ms totals, scheduler jitter swamps any real signal."""


@dataclass(frozen=True)
class Delta:
    """One compared quantity across the two runs."""

    name: str
    baseline: Optional[float]
    candidate: Optional[float]
    regressed: bool = False

    @property
    def rel_change(self) -> Optional[float]:
        """Relative change (candidate − baseline) / |baseline|."""
        if self.baseline is None or self.candidate is None:
            return None
        if self.baseline == 0:
            return None if self.candidate == 0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)

    def format_change(self) -> str:
        rel = self.rel_change
        if rel is None:
            return "-"
        if rel == float("inf"):
            return "new"
        return f"{rel:+.1%}"


@dataclass
class ComparisonResult:
    """Everything ``repro compare`` found between two runs."""

    span_deltas: List[Delta] = field(default_factory=list)
    metric_deltas: List[Delta] = field(default_factory=list)
    diag_deltas: List[Delta] = field(default_factory=list)
    bench_deltas: List[Delta] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        from repro.analysis.reporting import format_table

        sections: List[str] = []

        def table(title: str, deltas: List[Delta], unit: str) -> None:
            if not deltas:
                return
            rows = [
                (
                    d.name,
                    f"{d.baseline:.6g}" if d.baseline is not None else "-",
                    f"{d.candidate:.6g}" if d.candidate is not None else "-",
                    d.format_change(),
                    "REGRESSED" if d.regressed else "",
                )
                for d in deltas
            ]
            sections.append(
                format_table(
                    ["name", f"baseline {unit}", f"candidate {unit}", "change", ""],
                    rows,
                    title=title,
                )
            )

        table("span timings", self.span_deltas, "s")
        table("metrics", self.metric_deltas, "")
        table("diagnostics (findings)", self.diag_deltas, "count")
        table("benchmark values", self.bench_deltas, "")
        if self.has_regressions:
            sections.append(
                "REGRESSIONS ({n}):\n{body}".format(
                    n=len(self.regressions),
                    body="\n".join(f"  - {r}" for r in self.regressions),
                )
            )
        else:
            sections.append("no regressions beyond thresholds")
        return "\n\n".join(sections) if sections else "(nothing to compare)"


def _metric_value(entry: Dict[str, Any]) -> Optional[float]:
    """One comparable number per metric (histograms use their mean)."""
    if entry.get("kind") == "histogram":
        return float(entry["mean"]) if entry.get("count") else None
    value = entry.get("value")
    return float(value) if isinstance(value, (int, float)) else None


def compare_runs(
    baseline: RunSummary,
    candidate: RunSummary,
    span_threshold: float = 0.2,
    metric_threshold: float = 0.2,
) -> ComparisonResult:
    """Diff two telemetry runs; see the module docstring for semantics.

    ``span_threshold`` is the relative slowdown that flags a span-path
    regression (0.2 = +20%); ``metric_threshold`` bounds which metric
    changes are *reported* (metric movement alone is not a regression —
    a counter going up is not inherently bad).
    """
    result = ComparisonResult()

    # Span timings: regression = candidate total grew past threshold on
    # a span whose baseline is above the noise floor.
    paths = sorted(set(baseline.span_totals) | set(candidate.span_totals))
    for path in paths:
        a = baseline.span_totals.get(path)
        b = candidate.span_totals.get(path)
        a_total = a[1] if a else None
        b_total = b[1] if b else None
        regressed = (
            a_total is not None
            and b_total is not None
            and a_total >= SPAN_NOISE_FLOOR_S
            and (b_total - a_total) / a_total > span_threshold
        )
        delta = Delta(path, a_total, b_total, regressed)
        result.span_deltas.append(delta)
        if regressed:
            result.regressions.append(
                f"span {path}: {a_total:.4f}s -> {b_total:.4f}s "
                f"({delta.format_change()}, threshold +{span_threshold:.0%})"
            )

    # Metrics: report changes beyond the threshold, never regress.
    names = sorted(set(baseline.metrics) | set(candidate.metrics))
    for name in names:
        a_val = (
            _metric_value(baseline.metrics[name]) if name in baseline.metrics else None
        )
        b_val = (
            _metric_value(candidate.metrics[name])
            if name in candidate.metrics
            else None
        )
        delta = Delta(name, a_val, b_val)
        rel = delta.rel_change
        if (
            a_val is None
            or b_val is None
            or rel is None
            or rel == float("inf")
            or abs(rel) > metric_threshold
        ):
            result.metric_deltas.append(delta)

    # Diagnostics: new errors (and newly appearing warnings) regress.
    a_counts = baseline.diag_counts()
    b_counts = candidate.diag_counts()
    for severity in ("error", "warning", "info"):
        delta = Delta(
            f"diag.{severity}",
            float(a_counts.get(severity, 0)),
            float(b_counts.get(severity, 0)),
            regressed=(
                severity in ("error", "warning")
                and b_counts.get(severity, 0) > a_counts.get(severity, 0)
            ),
        )
        result.diag_deltas.append(delta)
        if delta.regressed:
            result.regressions.append(
                f"diagnostics: {severity} findings went "
                f"{int(delta.baseline)} -> {int(delta.candidate)}"
            )
    return result


def _flatten_numeric(doc: Any, prefix: str = "") -> Dict[str, float]:
    """Dot-path every numeric leaf of a JSON-like document."""
    flat: Dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            flat.update(_flatten_numeric(value, f"{prefix}{key}."))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            flat.update(_flatten_numeric(value, f"{prefix}{i}."))
    elif isinstance(doc, bool):
        pass  # bools are ints in Python; not meaningful to diff
    elif isinstance(doc, (int, float)):
        flat[prefix[:-1]] = float(doc)
    return flat


def compare_bench(
    baseline: Any,
    candidate: Any,
    threshold: float = 0.2,
    regress_on: Tuple[str, ...] = ("seconds", "_s", "latency", "time"),
) -> ComparisonResult:
    """Diff two benchmark JSON documents leaf by leaf.

    Every numeric leaf is compared; leaves whose dotted path mentions a
    timing keyword (``regress_on``) count as regressions when the
    candidate grew past ``threshold`` — throughput-style numbers are
    reported but never fail the comparison (bigger is better there).
    """
    result = ComparisonResult()
    a_flat = _flatten_numeric(baseline)
    b_flat = _flatten_numeric(candidate)
    for name in sorted(set(a_flat) | set(b_flat)):
        a_val = a_flat.get(name)
        b_val = b_flat.get(name)
        timing = any(key in name.lower() for key in regress_on)
        regressed = (
            timing
            and a_val is not None
            and b_val is not None
            and a_val > 0
            and (b_val - a_val) / a_val > threshold
        )
        delta = Delta(name, a_val, b_val, regressed)
        rel = delta.rel_change
        if (
            a_val is None
            or b_val is None
            or regressed
            or (rel is not None and rel != float("inf") and abs(rel) > threshold)
            or rel == float("inf")
        ):
            result.bench_deltas.append(delta)
        if regressed:
            result.regressions.append(
                f"bench {name}: {a_val:.6g} -> {b_val:.6g} "
                f"({delta.format_change()}, threshold +{threshold:.0%})"
            )
    return result
