"""Observability layer: metrics, span timers, and telemetry events.

The :class:`~repro.obs.telemetry.SolverTelemetry` facade is the single
object threaded through the solver pipeline (``BestResponseIterator``,
``MFGCPSolver``, ``GameSimulator``, the baselines, and the experiment
harness).  It is disabled by default (:data:`NULL_TELEMETRY`) at
near-zero cost; enable it with ``SolverTelemetry.to_jsonl(path)`` or
the CLI's ``--telemetry PATH.jsonl`` flag, then summarise the run with
``repro report PATH.jsonl``.

See ``docs/observability.md`` for the event schema and span semantics.
"""

from repro.obs.events import BufferSink, JsonlSink, NULL_SINK, NullSink, read_events
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    RunSummary,
    load_run,
    render_iteration_table,
    render_metrics,
    render_report,
    render_span_tree,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanNode, SpanRecorder
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry, TelemetrySnapshot

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanNode",
    "SpanRecorder",
    "NullSpan",
    "NULL_SPAN",
    "BufferSink",
    "JsonlSink",
    "NullSink",
    "NULL_SINK",
    "read_events",
    "SolverTelemetry",
    "TelemetrySnapshot",
    "NULL_TELEMETRY",
    "RunSummary",
    "load_run",
    "render_report",
    "render_span_tree",
    "render_iteration_table",
    "render_metrics",
]
