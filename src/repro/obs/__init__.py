"""Observability layer: metrics, span timers, and telemetry events.

The :class:`~repro.obs.telemetry.SolverTelemetry` facade is the single
object threaded through the solver pipeline (``BestResponseIterator``,
``MFGCPSolver``, ``GameSimulator``, the baselines, and the experiment
harness).  It is disabled by default (:data:`NULL_TELEMETRY`) at
near-zero cost; enable it with ``SolverTelemetry.to_jsonl(path)`` or
the CLI's ``--telemetry PATH.jsonl`` flag, then summarise the run with
``repro report PATH.jsonl``.

On top of the raw stream sit the numerical-health probes
(:mod:`repro.obs.diagnostics`, ``diag.*`` events with severities and
an optional ``--strict-numerics`` fail-fast), opt-in span resource
profiling (``profile=True`` / ``--profile``), the Chrome trace
exporter (:mod:`repro.obs.trace`, ``repro trace``), the cross-run
comparator (:mod:`repro.obs.compare`, ``repro compare``), and the
live-monitoring side channel (:mod:`repro.obs.live` +
:mod:`repro.obs.watch`, ``--live-status`` / ``repro watch``) backed by
the constant-memory quantile sketches of :mod:`repro.obs.sketch`
(``repro export-metrics`` renders Prometheus text exposition), and
the cross-run layer: the run-provenance registry
(:mod:`repro.obs.registry`, ``repro runs`` / ``repro env``) and the
trend analytics over append-only ``BENCH_*.json`` trajectories
(:mod:`repro.obs.trend`, ``repro trend``).

See ``docs/observability.md`` for the event schema and span semantics.
"""

from repro.obs.compare import ComparisonResult, Delta, compare_bench, compare_runs
from repro.obs.diagnostics import (
    CFLMarginProbe,
    DampingStabilityProbe,
    DensityHealthProbe,
    DiagnosticsProbe,
    ExploitabilityTrendProbe,
    HJBResidualProbe,
    MassConservationProbe,
    SolveDiagnostics,
    default_probes,
)
from repro.obs.events import (
    BufferSink,
    EVENT_SCHEMA_VERSION,
    JsonlSink,
    NULL_SINK,
    NullSink,
    read_events,
    read_events_tolerant,
)
from repro.obs.live import (
    DEFAULT_WRITE_EVERY,
    LiveStatusWriter,
    STATUS_SCHEMA_VERSION,
    read_status,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_EXACT_CAP,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.registry import (
    MANIFEST_SCHEMA_VERSION,
    RunRegistry,
    build_manifest,
    compute_run_id,
    diff_manifests,
    environment_fingerprint,
    headline_metrics,
    manifest_identity,
    render_manifest,
    render_runs_table,
)
from repro.obs.report import (
    RunSummary,
    load_run,
    render_diagnostics,
    render_fault_tolerance,
    render_iteration_table,
    render_metrics,
    render_report,
    render_serving,
    render_span_tree,
)
from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    WindowedAggregator,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanNode, SpanRecorder
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    SolverTelemetry,
    StrictNumericsError,
    TelemetrySnapshot,
)
from repro.obs.trace import build_chrome_trace, write_chrome_trace
from repro.obs.trend import (
    BENCH_SCHEMA_VERSION,
    BenchFormatError,
    DEFAULT_TREND_THRESHOLD,
    TrendSeries,
    append_bench_entry,
    bench_series,
    find_regressions,
    latest_entry_metrics,
    load_bench_trajectory,
    metric_direction,
    registry_series,
    render_trend,
)
from repro.obs.watch import render_status

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_EXACT_CAP",
    "QuantileSketch",
    "WindowedAggregator",
    "DEFAULT_RELATIVE_ACCURACY",
    "LiveStatusWriter",
    "read_status",
    "render_status",
    "render_prometheus",
    "DEFAULT_WRITE_EVERY",
    "STATUS_SCHEMA_VERSION",
    "Span",
    "SpanNode",
    "SpanRecorder",
    "NullSpan",
    "NULL_SPAN",
    "BufferSink",
    "JsonlSink",
    "NullSink",
    "NULL_SINK",
    "EVENT_SCHEMA_VERSION",
    "read_events",
    "read_events_tolerant",
    "SolverTelemetry",
    "StrictNumericsError",
    "TelemetrySnapshot",
    "NULL_TELEMETRY",
    "RunSummary",
    "load_run",
    "render_report",
    "render_span_tree",
    "render_iteration_table",
    "render_metrics",
    "render_diagnostics",
    "render_serving",
    "render_fault_tolerance",
    "DiagnosticsProbe",
    "SolveDiagnostics",
    "default_probes",
    "MassConservationProbe",
    "DensityHealthProbe",
    "HJBResidualProbe",
    "CFLMarginProbe",
    "ExploitabilityTrendProbe",
    "DampingStabilityProbe",
    "ComparisonResult",
    "Delta",
    "compare_runs",
    "compare_bench",
    "build_chrome_trace",
    "write_chrome_trace",
    "MANIFEST_SCHEMA_VERSION",
    "RunRegistry",
    "build_manifest",
    "compute_run_id",
    "diff_manifests",
    "environment_fingerprint",
    "headline_metrics",
    "manifest_identity",
    "render_manifest",
    "render_runs_table",
    "BENCH_SCHEMA_VERSION",
    "BenchFormatError",
    "DEFAULT_TREND_THRESHOLD",
    "TrendSeries",
    "append_bench_entry",
    "bench_series",
    "find_regressions",
    "latest_entry_metrics",
    "load_bench_trajectory",
    "metric_direction",
    "registry_series",
    "render_trend",
]
