"""Live run status: atomic JSON snapshots for `repro watch`.

:class:`LiveStatusWriter` is the in-flight counterpart of the post-hoc
JSONL stream: as a run progresses it rewrites one small JSON file
(tmp + ``os.replace``, the checkpoint-store idiom, so a concurrent
reader never sees a torn write) with the current phase, item progress,
retry/failure tallies, throughput, windowed serving statistics with
sketch-backed latency percentiles, diagnostic counts, and per-lane
heartbeats with straggler detection.  ``repro watch STATUS.json``
renders it as a refreshing dashboard.

Determinism contract
--------------------
The status file is a **pure side channel**: it is the one place in the
observability layer allowed to read the wall clock, and nothing in it
ever feeds back into solver results, telemetry metrics, or reports.
Each actual disk write also emits a ``live.status`` telemetry event —
those are wall-clock-throttled, so their *count* varies run to run,
and :func:`repro.testing.normalized_events` strips ``live.*`` events
wholesale; the serial-vs-parallel bit-identity contract is unchanged
with live status enabled.

Heartbeats are keyed by work-item *lane labels* from the execution
plan (``content:3``, ``serve:lru:shard2``), not OS worker ids — the
same philosophy as the Chrome-trace exporter's swimlanes: lanes derive
from the plan, so the status file's worker table is meaningful for
serial and process backends alike.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.obs.sketch import QuantileSketch, WindowedAggregator

STATUS_SCHEMA_VERSION = 1

DEFAULT_WRITE_EVERY = 16
"""Completed items between status-file rewrites (plus forced writes)."""

DEFAULT_REQUEST_WINDOW = 10_000
"""Requests per tumbling window for the "recent hit ratio" view."""


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    # Same tmp+replace idiom as repro.runtime.checkpoint, minus the
    # fsync (a lost status frame costs nothing; the next write wins).
    # Reimplemented locally: repro.obs must not import repro.runtime.
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class LiveStatusWriter:
    """Throttled atomic writer of the live run-status JSON file.

    Parameters
    ----------
    path:
        Destination of the status file.
    every:
        Completed items between rewrites; phase changes, failures, and
        :meth:`finish` always force a write.
    straggler_after_s:
        A lane with no completed item for this many seconds — while
        some *other* lane did complete one — is flagged a straggler.
    request_window:
        Tumbling-window size (in requests) for the recent hit ratio.
    max_lanes:
        Heartbeat-table cap; the least recently active lanes are
        evicted past it, keeping the file small for huge plans.
    clock:
        Wall-clock source, injectable for tests.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        every: int = DEFAULT_WRITE_EVERY,
        straggler_after_s: float = 60.0,
        request_window: int = DEFAULT_REQUEST_WINDOW,
        max_lanes: int = 64,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be positive, got {every}")
        self.path = Path(path)
        self.every = int(every)
        self.straggler_after_s = float(straggler_after_s)
        self.max_lanes = int(max_lanes)
        self._clock = clock
        self._telemetry = None  # set by SolverTelemetry.set_live

        now = clock()
        self._started = now
        self._phase = "starting"
        self._phase_started = now
        self._phase_total: Optional[int] = None
        self._phase_done = 0
        self._done = 0
        self._total: Optional[int] = None
        self._cached = 0
        self._retried = 0
        self._failed = 0
        self._since_write = 0
        self._writes = 0
        self._state = "running"

        self._requests = 0
        self._hits = 0
        self._latency = QuantileSketch()
        self._window = WindowedAggregator(window=int(request_window), retain=8)

        # lane -> {"items": int, "last_index": int, "last_wall": float}
        self._lanes: Dict[str, Dict[str, float]] = {}

        # Streaming-replay geometry (set_stream); None outside
        # streamed serving runs.
        self._stream: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, telemetry: Any) -> None:
        """Bind the run's telemetry (diag counters, live.* events)."""
        self._telemetry = telemetry

    def _emit(self, kind: str, **fields: Any) -> None:
        tele = self._telemetry
        if tele is not None and getattr(tele, "enabled", False):
            tele.event(kind, **fields)

    # ------------------------------------------------------------------
    # Progress notes (called from executors / engines / epoch loop)
    # ------------------------------------------------------------------
    def set_phase(self, phase: str, total_items: Optional[int] = None) -> None:
        """Enter a new phase (epoch, equilibria solve, replay, ...)."""
        self._phase = str(phase)
        self._phase_started = self._clock()
        self._phase_total = None if total_items is None else int(total_items)
        self._phase_done = 0
        if total_items is not None:
            self._total = (self._total or 0) + int(total_items)
        self._emit("live.phase", phase=self._phase, total_items=self._phase_total)
        self.write(force=True)

    def register_lanes(self, labels: Sequence[str]) -> None:
        """Pre-register heartbeat lanes so silent ones are visible."""
        if len(labels) > self.max_lanes:
            return  # huge plans: track only lanes that complete items
        now = self._clock()
        for label in labels:
            self._lanes.setdefault(
                str(label), {"items": 0, "last_index": -1, "last_wall": now}
            )

    def note_item(self, label: Optional[str] = None,
                  index: Optional[int] = None) -> None:
        """One work item completed; heartbeat its lane, maybe write."""
        self._done += 1
        self._phase_done += 1
        self._since_write += 1
        if label is not None:
            lane = self._lanes.setdefault(
                str(label), {"items": 0, "last_index": -1, "last_wall": 0.0}
            )
            lane["items"] += 1
            lane["last_index"] = -1 if index is None else int(index)
            lane["last_wall"] = self._clock()
            if len(self._lanes) > self.max_lanes:
                oldest = min(self._lanes, key=lambda k: self._lanes[k]["last_wall"])
                del self._lanes[oldest]
        if self._since_write >= self.every:
            self.write()

    def note_cached(self, label: Optional[str] = None) -> None:
        """Tally a checkpoint cache hit (the completion itself still
        arrives via :meth:`note_item` through the progress hook)."""
        self._cached += 1

    def note_retry(self, label: Optional[str] = None) -> None:
        self._retried += 1
        self.write(force=True)

    def note_failed(self, label: Optional[str] = None) -> None:
        self._failed += 1
        self.write(force=True)

    def set_stream(
        self,
        *,
        workload: str,
        chunk_slots: int,
        n_chunks: int,
        expected_requests: float,
    ) -> None:
        """Record a streaming replay's geometry for the dashboard.

        The snapshot then carries a ``stream`` block whose ``progress``
        is the served share of the expected request volume — logical
        progress through the stream, wall-clock free like every other
        deterministic input to the file.
        """
        self._stream = {
            "workload": str(workload),
            "chunk_slots": int(chunk_slots),
            "n_chunks": int(n_chunks),
            "expected_requests": float(expected_requests),
        }
        self._emit("live.stream", **self._stream)
        self.write(force=True)

    def note_requests(self, requests: int, hits: int = 0,
                      latency_s: float = 0.0) -> None:
        """Fold one completed batch of serving requests into the views.

        ``latency_s`` is the batch's *total* latency; the per-request
        mean feeds the live latency sketch and the tumbling windows
        (keyed by cumulative request ordinal — logical progress, not
        wall time).
        """
        requests = int(requests)
        if requests <= 0:
            return
        self._window.observe(
            self._requests, requests=requests, hits=hits, latency_s=latency_s
        )
        self._requests += requests
        self._hits += int(hits)
        self._latency.record(latency_s / requests)

    # ------------------------------------------------------------------
    # Snapshot assembly
    # ------------------------------------------------------------------
    def _diag_counts(self) -> Dict[str, int]:
        tele = self._telemetry
        if tele is None or not getattr(tele, "enabled", False):
            return {}
        counts = {}
        for key in ("findings", "info", "warning", "error"):
            value = tele.counter_value(f"diag.{key}")
            if value:
                counts[key] = int(value)
        return counts

    def _worker_table(self, now: float) -> Dict[str, Dict[str, Any]]:
        table: Dict[str, Dict[str, Any]] = {}
        for label in sorted(self._lanes):
            lane = self._lanes[label]
            table[label] = {
                "items": int(lane["items"]),
                "last_index": int(lane["last_index"]),
                "age_s": round(max(0.0, now - lane["last_wall"]), 3),
            }
        return table

    def _stragglers(self, now: float) -> List[str]:
        if self._state != "running" or len(self._lanes) < 2:
            return []
        ages = {
            label: now - lane["last_wall"] for label, lane in self._lanes.items()
        }
        if min(ages.values()) > self.straggler_after_s:
            return []  # everything is slow — a stall, not a straggler
        return sorted(
            label for label, age in ages.items()
            if age > self.straggler_after_s
        )

    def snapshot(self) -> Dict[str, Any]:
        """The status payload exactly as it is written to disk."""
        now = self._clock()
        elapsed = max(now - self._started, 1e-9)
        payload: Dict[str, Any] = {
            "version": STATUS_SCHEMA_VERSION,
            "state": self._state,
            "phase": self._phase,
            "started_at": self._started,
            "updated_at": now,
            "elapsed_s": round(elapsed, 3),
            "items": {
                "done": self._done,
                "total": self._total,
                "cached": self._cached,
                "retried": self._retried,
                "failed": self._failed,
            },
            "phase_items": {
                "done": self._phase_done,
                "total": self._phase_total,
            },
            "throughput": {
                "items_per_s": round(self._done / elapsed, 3),
                "requests_per_s": round(self._requests / elapsed, 1),
            },
            "diags": self._diag_counts(),
            "workers": self._worker_table(now),
            "stragglers": self._stragglers(now),
        }
        if self._stream is not None:
            expected = self._stream["expected_requests"]
            payload["stream"] = dict(
                self._stream,
                progress=(
                    round(min(self._requests / expected, 1.0), 6)
                    if expected > 0
                    else None
                ),
            )
        if self._requests:
            recent = self._window.totals(last=2)
            payload["requests"] = {
                "total": self._requests,
                "hits": self._hits,
                "hit_ratio": round(self._hits / self._requests, 6),
                "window_hit_ratio": round(
                    self._window.ratio("hits", "requests", last=2), 6
                )
                if recent.get("requests")
                else None,
            }
            lat = self._latency
            if lat.count:
                payload["latency_s"] = {
                    "p50": lat.quantile(50),
                    "p90": lat.quantile(90),
                    "p99": lat.quantile(99),
                    "mean": lat.mean,
                    "approx": True,
                }
        return payload

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(self, force: bool = False) -> bool:
        """Write the status file if due (or ``force``); True if written."""
        if not force and self._since_write < self.every:
            return False
        self._since_write = 0
        payload = self.snapshot()
        _atomic_write_json(self.path, payload)
        self._writes += 1
        self._emit(
            "live.status",
            phase=self._phase,
            items_done=self._done,
            path=str(self.path),
        )
        return True

    def finish(self, state: str = "done") -> None:
        """Final forced write; ``state`` is ``done`` or ``failed``.

        The first finish wins: a ``failed`` mark set by an error
        handler survives the telemetry teardown's routine ``done``.
        """
        if state not in ("done", "failed"):
            raise ValueError(f"final state must be 'done' or 'failed', got {state!r}")
        if self._state == "running":
            self._state = state
        self.write(force=True)


def read_status(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Load a status snapshot (raises ``FileNotFoundError`` if absent)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
