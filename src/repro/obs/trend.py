"""Cross-run trend analytics over BENCH trajectories and the registry.

``BENCH_*.json`` files used to be overwrite-in-place snapshots — one
number, no history, no slope.  This module turns them into
**append-only trajectories**:

.. code-block:: json

    {
      "schema": 1,
      "bench": "serve",
      "entries": [
        {"git_sha": "3cc5e61…", "dirty": false,
         "recorded_at": "2026-08-07T12:00:00+00:00",
         "metrics": {"serial_requests_per_s": 4048437.5, "...": 0}}
      ]
    }

:func:`load_bench_trajectory` reads both shapes — a legacy flat
metrics dict migrates into a single-entry trajectory whose git fields
are ``null`` — and raises :class:`BenchFormatError` on anything else
(the CLI maps that to exit 2).  :func:`append_bench_entry` appends a
measurement stamped with the current git SHA/dirty flag and UTC time,
using the registry's atomic write.

``repro trend`` folds trajectories plus the run registry into
per-metric time series with sparkline/delta tables.  Regression
gating (``--fail-on-regression``) applies to *bench* series only —
each metric's direction is inferred from its name
(:func:`metric_direction`); registry series are report-only because
wall-clock headlines jitter run to run while bench numbers are
measured under controlled conditions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import _atomic_write_json, _git

BENCH_SCHEMA_VERSION = 1

#: Default relative-change threshold for ``repro trend`` gating.
DEFAULT_TREND_THRESHOLD = 0.05

#: Substrings marking a metric as bigger-is-better.  Checked *before*
#: the lower-is-better patterns: ``requests_per_s`` contains ``_s``
#: but must gate on drops, not growth.
HIGHER_IS_BETTER = ("per_s", "hit_ratio", "speedup", "throughput")

#: Substrings marking a metric as smaller-is-better.
LOWER_IS_BETTER = (
    "seconds", "_s", "latency", "time", "staleness", "rejection", "backhaul",
    "exploitability",
)

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


class BenchFormatError(ValueError):
    """A BENCH file that is neither a trajectory nor a legacy snapshot."""


def _is_metrics_dict(doc: Any) -> bool:
    return isinstance(doc, dict) and all(isinstance(k, str) for k in doc)


def _bench_name(path: str) -> str:
    name = os.path.splitext(os.path.basename(path))[0]
    return name[len("BENCH_"):] if name.startswith("BENCH_") else name


def load_bench_trajectory(path: str) -> Dict[str, Any]:
    """Read a BENCH file, migrating the legacy snapshot shape.

    Returns a trajectory document (``schema``/``bench``/``entries``).
    A legacy flat metrics dict becomes a one-entry trajectory with
    ``null`` provenance fields.  Anything unreadable or structurally
    wrong raises :class:`BenchFormatError` with a one-line reason.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as err:
        raise BenchFormatError(f"cannot read benchmark file {path!r}: {err}")
    if not isinstance(doc, dict):
        raise BenchFormatError(
            f"benchmark file {path!r} is not a JSON object "
            f"(got {type(doc).__name__})"
        )
    if "entries" not in doc:
        # Legacy single-snapshot shape: a flat dict of metrics.
        if not _is_metrics_dict(doc) or not doc:
            raise BenchFormatError(
                f"benchmark file {path!r} is neither a trajectory nor a "
                f"legacy metrics snapshot"
            )
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "bench": _bench_name(path),
            "entries": [
                {"git_sha": None, "dirty": None, "recorded_at": None,
                 "metrics": doc}
            ],
        }
    schema = doc.get("schema")
    if not isinstance(schema, int) or schema > BENCH_SCHEMA_VERSION:
        raise BenchFormatError(
            f"benchmark file {path!r} has unsupported schema {schema!r}"
        )
    entries = doc["entries"]
    if not isinstance(entries, list) or not entries:
        raise BenchFormatError(
            f"benchmark file {path!r} needs a non-empty 'entries' list"
        )
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or not _is_metrics_dict(
            entry.get("metrics")
        ):
            raise BenchFormatError(
                f"benchmark file {path!r} entry {i} lacks a metrics object"
            )
    doc.setdefault("bench", _bench_name(path))
    return doc


def latest_entry_metrics(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The newest entry's metrics from a (loaded) trajectory."""
    return doc["entries"][-1]["metrics"]


def append_bench_entry(
    path: str, metrics: Dict[str, Any], bench: Optional[str] = None
) -> Dict[str, Any]:
    """Append one measurement to a trajectory file, atomically.

    Creates the file when missing, migrates a legacy snapshot first,
    stamps the entry with the current git SHA / dirty flag / UTC
    timestamp, and returns the written document.
    """
    if os.path.exists(path):
        doc = load_bench_trajectory(path)
    else:
        doc = {
            "schema": BENCH_SCHEMA_VERSION,
            "bench": bench or _bench_name(path),
            "entries": [],
        }
    sha = _git("rev-parse", "HEAD")
    status = _git("status", "--porcelain") if sha is not None else None
    doc["entries"].append(
        {
            "git_sha": sha,
            "dirty": bool(status) if status is not None else None,
            "recorded_at": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "metrics": dict(metrics),
        }
    )
    _atomic_write_json(path, doc)
    return doc


# -- series + regression analysis -----------------------------------


def metric_direction(name: str) -> Optional[str]:
    """``"higher"``, ``"lower"``, or ``None`` for ungated metrics."""
    lowered = name.lower()
    if any(pattern in lowered for pattern in HIGHER_IS_BETTER):
        return "higher"
    if any(pattern in lowered for pattern in LOWER_IS_BETTER):
        return "lower"
    return None


@dataclass
class TrendSeries:
    """One metric's history from one source (a bench file or the
    registry), oldest first."""

    source: str
    metric: str
    values: List[float]
    gate: bool
    direction: Optional[str] = None
    labels: List[str] = field(default_factory=list)

    @property
    def latest(self) -> float:
        return self.values[-1]

    def delta(self) -> Optional[float]:
        """Relative change of the newest value vs the mean of the
        prior history (``None`` with fewer than two points)."""
        if len(self.values) < 2:
            return None
        baseline = sum(self.values[:-1]) / (len(self.values) - 1)
        if baseline == 0:
            return None if self.latest == 0 else float("inf")
        return (self.latest - baseline) / abs(baseline)

    def regressed(self, threshold: float) -> bool:
        if not self.gate or self.direction is None:
            return False
        rel = self.delta()
        if rel is None:
            return False
        if self.direction == "higher":
            return rel < -threshold
        return rel > threshold


def bench_series(doc: Dict[str, Any], source: str) -> List[TrendSeries]:
    """Per-metric series from a trajectory document (gateable)."""
    history: Dict[str, List[float]] = {}
    for entry in doc["entries"]:
        for name, value in entry["metrics"].items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            history.setdefault(name, []).append(float(value))
    out = []
    for name in sorted(history):
        direction = metric_direction(name)
        out.append(
            TrendSeries(
                source=source,
                metric=name,
                values=history[name],
                gate=direction is not None,
                direction=direction,
            )
        )
    return out


def registry_series(manifests: List[Dict[str, Any]]) -> List[TrendSeries]:
    """Per-metric series from the run registry (report-only).

    Runs are comparable only within one ``(command, config_hash)``
    group — a config change legitimately moves every headline, so
    each group gets its own series, labelled
    ``command[config_hash]``.  Registry series never gate: wall-clock
    headlines (``requests_per_s``) jitter with machine load, and
    equilibrium headlines move whenever the config does.
    """
    groups: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for manifest in manifests:
        if manifest.get("status") != "ok":
            continue
        key = (
            str(manifest.get("command", "?")),
            str(manifest.get("config_hash", "?")),
        )
        groups.setdefault(key, []).append(manifest)
    out = []
    for (command, cfg_hash), group in sorted(groups.items()):
        group.sort(key=lambda m: m.get("seq") or 0)
        history: Dict[str, List[float]] = {}
        for manifest in group:
            for name, value in (manifest.get("metrics") or {}).items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                history.setdefault(name, []).append(float(value))
        source = f"{command}[{cfg_hash[:8]}]"
        for name in sorted(history):
            out.append(
                TrendSeries(
                    source=source,
                    metric=name,
                    values=history[name],
                    gate=False,
                    direction=metric_direction(name),
                )
            )
    return out


def sparkline(values: List[float]) -> str:
    """A unicode micro-chart of the series (min..max normalised)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_LEVELS[3] * len(values)
    span = hi - lo
    return "".join(
        SPARK_LEVELS[
            min(len(SPARK_LEVELS) - 1,
                int((v - lo) / span * len(SPARK_LEVELS)))
        ]
        for v in values
    )


def find_regressions(
    series_list: List[TrendSeries], threshold: float = DEFAULT_TREND_THRESHOLD
) -> List[str]:
    """Human-readable regression lines across all gateable series."""
    out = []
    for series in series_list:
        if not series.regressed(threshold):
            continue
        rel = series.delta()
        out.append(
            "{source} {metric}: {latest:.6g} vs historical mean "
            "({rel:+.1%}, {direction} is better, threshold ±{t:.0%})".format(
                source=series.source,
                metric=series.metric,
                latest=series.latest,
                rel=rel,
                direction=series.direction,
                t=threshold,
            )
        )
    return out


def render_trend(
    series_list: List[TrendSeries],
    threshold: float = DEFAULT_TREND_THRESHOLD,
) -> str:
    """The ``repro trend`` tables, grouped by source."""
    from repro.analysis.reporting import format_table

    sections = []
    by_source: Dict[str, List[TrendSeries]] = {}
    for series in series_list:
        by_source.setdefault(series.source, []).append(series)
    for source, group in by_source.items():
        rows = []
        for series in group:
            rel = series.delta()
            if rel is None:
                delta = "-"
            elif rel == float("inf"):
                delta = "new"
            else:
                delta = f"{rel:+.1%}"
            rows.append(
                (
                    series.metric,
                    len(series.values),
                    f"{series.latest:.6g}",
                    delta,
                    sparkline(series.values[-16:]),
                    "REGRESSED" if series.regressed(threshold) else "",
                )
            )
        gated = any(s.gate for s in group)
        suffix = f" (gate ±{threshold:.0%})" if gated else " (report-only)"
        sections.append(
            format_table(
                ["metric", "n", "latest", "delta vs mean", "trend", ""],
                rows,
                title=f"{source}{suffix}",
            )
        )
    regressions = find_regressions(series_list, threshold)
    if regressions:
        sections.append(
            "REGRESSIONS ({n}):\n{body}".format(
                n=len(regressions),
                body="\n".join(f"  - {r}" for r in regressions),
            )
        )
    else:
        sections.append("no trend regressions beyond thresholds")
    return "\n\n".join(sections) if sections else "(no series)"
