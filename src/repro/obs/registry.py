"""Run provenance registry: schema-versioned manifests for every run.

Telemetry answers *what happened inside* a run; this module answers
*which run was that* — after the fact, across weeks of runs.  Every
CLI run (``solve``, ``simulate``, ``experiment``, ``serve``,
``serve-net``) appends one **RunManifest** to an append-only store
under ``.repro/runs/``: a deterministic run id, the full config
snapshot and its hash, the CLI argv, an environment fingerprint
(python/numpy/platform, git SHA + dirty flag), the SeedSequence
lineage of every execution plan, wall time, exit status, artifact
paths, and headline metrics pulled from the telemetry stream.

Manifests are written with the checkpoint store's atomic discipline
(write to a temp file, ``fsync``, ``os.replace``) so a crash can
never leave a torn file, and the writer is a pure *side channel* —
exactly like the ``--live-status`` writer, it reads the finished
telemetry but never emits events into it, so the normalized stream
stays bit-identical serial vs ``process:N`` with the registry on.

On top of the store: ``repro runs list|show|diff|gc`` (diff reuses
:mod:`repro.obs.compare` with its noise floor) and ``repro trend``
(:mod:`repro.obs.trend`).  Opt out per run with ``--no-registry``,
per environment with ``REPRO_REGISTRY=0``; relocate the store with
``--registry-dir`` or ``REPRO_REGISTRY_DIR``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

MANIFEST_SCHEMA_VERSION = 1

DEFAULT_REGISTRY_DIR = os.path.join(".repro", "runs")

#: Environment override for the registry root directory.
REGISTRY_DIR_ENV = "REPRO_REGISTRY_DIR"

#: Set to ``0``/``false``/``no``/``off`` to disable manifest writing.
REGISTRY_ENABLE_ENV = "REPRO_REGISTRY"

#: Manifest fields measured per run — two otherwise-identical runs
#: differ only here (:func:`manifest_identity` strips them).
MEASURED_MANIFEST_FIELDS = ("seq", "started_at", "wall_s", "path")

#: Headline-metric keys derived from wall time, measured per run.
MEASURED_METRIC_KEYS = ("requests_per_s",)

_RUN_ID_HEX = 12


def _git(*argv: str) -> Optional[str]:
    """Output of one git command, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ("git",) + argv,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def environment_fingerprint() -> Dict[str, Any]:
    """The machine/toolchain/code facts a manifest pins a run to.

    Everything is best-effort: outside a git work tree the git fields
    are ``None``, without scipy its version is ``None`` — the
    fingerprint never raises.
    """
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    try:
        import scipy

        scipy_version: Optional[str] = scipy.__version__
    except Exception:
        scipy_version = None
    sha = _git("rev-parse", "HEAD")
    status = _git("status", "--porcelain") if sha is not None else None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "scipy": scipy_version,
        "git_sha": sha,
        "git_dirty": bool(status) if status is not None else None,
    }


def _canonical(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)


def compute_run_id(command: str, argv: Sequence[str], config: Any) -> str:
    """Deterministic run id: identical invocations share one id.

    The id hashes *what was asked for* (command, argv, config
    snapshot), never what was measured — rerunning the same command
    yields the same id, and the per-append ``seq`` distinguishes the
    attempts.
    """
    payload = _canonical({"command": command, "argv": list(argv), "config": config})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_RUN_ID_HEX]


def config_hash(config: Any) -> str:
    """Short content hash of a config snapshot."""
    return hashlib.sha256(_canonical(config).encode("utf-8")).hexdigest()[:_RUN_ID_HEX]


def headline_metrics(
    metrics_snapshot: Dict[str, Dict[str, Any]], wall_s: Optional[float] = None
) -> Dict[str, float]:
    """Fold a metrics-registry snapshot into the manifest headlines.

    Pulls the handful of numbers regressions are judged by: request
    volume and hit ratio (single-cache ``serve.*`` or network
    ``net.*``), the final best-response policy change (the
    exploitability proxy), iteration count, and ``diag.*`` severity
    tallies.  ``requests_per_s`` is derived from ``wall_s`` and is the
    one *measured* headline (see :data:`MEASURED_METRIC_KEYS`).
    """

    def value(name: str) -> Optional[float]:
        entry = metrics_snapshot.get(name)
        if isinstance(entry, dict) and isinstance(entry.get("value"), (int, float)):
            return float(entry["value"])
        return None

    out: Dict[str, float] = {}
    for requests_name, hits_name in (
        ("serve.requests", "serve.hits"),
        ("net.requests", "net.cache_hits"),
    ):
        requests = value(requests_name)
        hits = value(hits_name)
        if requests:
            out["requests"] = requests
            if hits is not None:
                out["hit_ratio"] = hits / requests
            if wall_s:
                out["requests_per_s"] = requests / wall_s
            break
    exploitability = value("solver.final_policy_change")
    if exploitability is not None:
        out["exploitability"] = exploitability
    n_iterations = value("solver.n_iterations")
    if n_iterations is not None:
        out["n_iterations"] = n_iterations
    for severity in ("findings", "info", "warning", "error"):
        count = value(f"diag.{severity}")
        if count is not None:
            out[f"diag_{severity}"] = count
    return out


def _atomic_write_json(path: str, doc: Any) -> None:
    """Checkpoint-discipline JSON write: temp file, fsync, replace."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def build_manifest(
    *,
    command: str,
    argv: Sequence[str],
    config: Any,
    status: str,
    exit_code: Optional[int],
    started_at: str,
    wall_s: float,
    seeds: Optional[Dict[str, Any]] = None,
    artifacts: Optional[Dict[str, str]] = None,
    metrics: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Assemble one schema-versioned RunManifest document."""
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "run_id": compute_run_id(command, argv, config),
        "command": command,
        "argv": list(argv),
        "status": status,
        "exit_code": exit_code,
        "started_at": started_at,
        "wall_s": wall_s,
        "config": config,
        "config_hash": config_hash(config),
        "environment": environment_fingerprint(),
        "seeds": seeds or {},
        "artifacts": artifacts or {},
        "metrics": metrics or {},
    }


def manifest_identity(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """A manifest minus its measured fields.

    Two runs of the same command on the same code are *identical*
    exactly when their identities compare equal — this is the
    determinism contract ``tests/test_cli_registry.py`` pins.
    """
    identity = {
        k: v for k, v in manifest.items() if k not in MEASURED_MANIFEST_FIELDS
    }
    metrics = identity.get("metrics")
    if isinstance(metrics, dict):
        identity["metrics"] = {
            k: v for k, v in metrics.items() if k not in MEASURED_METRIC_KEYS
        }
    return identity


class RunRegistry:
    """The append-only manifest store under ``.repro/runs/``.

    Filenames are ``{seq:06d}-{run_id}.json``: ``seq`` is a
    monotonically increasing append counter (ordering), ``run_id`` the
    deterministic invocation hash (identity).  Reading is tolerant —
    a truncated or garbage file yields a warning string, never an
    exception, so one corrupt manifest cannot brick ``repro runs``.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = os.environ.get(REGISTRY_DIR_ENV) or DEFAULT_REGISTRY_DIR
        self.root = root

    # -- writing ----------------------------------------------------

    def append(self, manifest: Dict[str, Any]) -> str:
        """Atomically add a manifest; returns the path written."""
        os.makedirs(self.root, exist_ok=True)
        seq = self._next_seq()
        manifest = dict(manifest)
        manifest["seq"] = seq
        path = os.path.join(
            self.root, f"{seq:06d}-{manifest.get('run_id', 'unknown')}.json"
        )
        _atomic_write_json(path, manifest)
        return path

    def _next_seq(self) -> int:
        highest = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            names = []
        for name in names:
            head = name.split("-", 1)[0]
            if head.isdigit():
                highest = max(highest, int(head))
        return highest + 1

    # -- reading ----------------------------------------------------

    def load_all(self) -> Tuple[List[Dict[str, Any]], List[str]]:
        """All readable manifests (by ``seq``), plus skip warnings."""
        manifests: List[Dict[str, Any]] = []
        warnings: List[str] = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return [], []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
            except (OSError, ValueError) as err:
                warnings.append(f"skipping unreadable manifest {path!r}: {err}")
                continue
            if not isinstance(doc, dict) or "run_id" not in doc:
                warnings.append(
                    f"skipping malformed manifest {path!r}: not a manifest object"
                )
                continue
            schema = doc.get("schema")
            if not isinstance(schema, int) or schema > MANIFEST_SCHEMA_VERSION:
                warnings.append(
                    f"skipping manifest {path!r}: unsupported schema {schema!r}"
                )
                continue
            doc.setdefault("seq", self._seq_of(name))
            doc["path"] = path
            manifests.append(doc)
        manifests.sort(key=lambda m: (m.get("seq") or 0, m.get("path", "")))
        return manifests, warnings

    @staticmethod
    def _seq_of(name: str) -> Optional[int]:
        head = name.split("-", 1)[0]
        return int(head) if head.isdigit() else None

    def find(self, ref: str) -> Optional[Dict[str, Any]]:
        """Resolve a run reference: a ``seq`` number or run-id prefix.

        Run ids repeat across re-runs of the same invocation, so a
        prefix match returns the *newest* matching manifest.
        """
        manifests, _ = self.load_all()
        ref = ref.strip()
        if ref.isdigit():
            seq = int(ref)
            for manifest in manifests:
                if manifest.get("seq") == seq:
                    return manifest
            return None
        for manifest in reversed(manifests):
            run_id = str(manifest.get("run_id", ""))
            if run_id.startswith(ref):
                return manifest
        return None

    # -- pruning ----------------------------------------------------

    def gc(self, keep: int) -> List[str]:
        """Prune oldest manifests, keeping the newest ``keep``.

        The newest manifest whose status is not ``"ok"`` is always
        retained even when it falls outside the keep window — the
        evidence of the latest failure must survive a routine gc.
        Each removal is a single ``os.remove`` (atomic per file), so
        an interrupted gc leaves a smaller-but-valid registry.
        """
        if keep < 0:
            raise ValueError(f"gc keep must be >= 0, got {keep}")
        manifests, _ = self.load_all()
        kept = set()
        if keep:
            kept.update(m["path"] for m in manifests[-keep:])
        for manifest in reversed(manifests):
            if manifest.get("status") != "ok":
                kept.add(manifest["path"])
                break
        removed = []
        for manifest in manifests:
            path = manifest["path"]
            if path in kept:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            removed.append(path)
        return removed


def diff_manifests(
    baseline: Dict[str, Any], candidate: Dict[str, Any], threshold: float = 0.2
):
    """What changed between two runs: config exactly, metrics fuzzily.

    Returns ``(config_changes, comparison)`` where ``config_changes``
    is a list of ``(dotted_key, baseline_value, candidate_value)``
    tuples (every leaf compared exactly — a config is identity, not a
    measurement) and ``comparison`` is the
    :class:`~repro.obs.compare.ComparisonResult` from diffing the
    headline metrics through :func:`~repro.obs.compare.compare_bench`
    with its relative-threshold noise floor.
    """
    from repro.obs.compare import compare_bench

    a_flat = _flatten_leaves(baseline.get("config"))
    b_flat = _flatten_leaves(candidate.get("config"))
    config_changes = [
        (key, a_flat.get(key), b_flat.get(key))
        for key in sorted(set(a_flat) | set(b_flat))
        if a_flat.get(key) != b_flat.get(key)
    ]
    comparison = compare_bench(
        baseline.get("metrics") or {},
        candidate.get("metrics") or {},
        threshold=threshold,
    )
    return config_changes, comparison


def _flatten_leaves(doc: Any, prefix: str = "") -> Dict[str, Any]:
    """Dot-path every leaf (any JSON type, not just numbers)."""
    flat: Dict[str, Any] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            flat.update(_flatten_leaves(value, f"{prefix}{key}."))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            flat.update(_flatten_leaves(value, f"{prefix}{i}."))
    else:
        flat[prefix[:-1]] = doc
    return flat


# -- rendering ------------------------------------------------------


def render_runs_table(manifests: List[Dict[str, Any]]) -> str:
    """The ``repro runs list`` table, newest first."""
    from repro.analysis.reporting import format_table

    rows = []
    for manifest in reversed(manifests):
        metrics = manifest.get("metrics") or {}
        headline = ""
        if "hit_ratio" in metrics:
            headline = f"hit_ratio={metrics['hit_ratio']:.4f}"
        elif "exploitability" in metrics:
            headline = f"exploitability={metrics['exploitability']:.3g}"
        env = manifest.get("environment") or {}
        sha = env.get("git_sha")
        rows.append(
            (
                manifest.get("seq", "?"),
                str(manifest.get("run_id", ""))[:12],
                manifest.get("command", "?"),
                manifest.get("status", "?"),
                f"{manifest.get('wall_s', 0.0):.2f}",
                (sha[:9] + ("+" if env.get("git_dirty") else "")) if sha else "-",
                str(manifest.get("started_at", ""))[:19],
                headline,
            )
        )
    return format_table(
        ["seq", "run id", "command", "status", "wall s", "git", "started (UTC)",
         "headline"],
        rows,
        title=f"run registry ({len(manifests)} manifest(s))",
    )


def render_manifest(manifest: Dict[str, Any]) -> str:
    """The ``repro runs show`` report for one manifest."""
    from repro.analysis.reporting import format_table

    env = manifest.get("environment") or {}
    seeds = manifest.get("seeds") or {}
    lines = [
        f"run {manifest.get('seq', '?')} · {manifest.get('run_id', '?')}",
        f"  command      : repro {' '.join(manifest.get('argv') or [])}",
        f"  status       : {manifest.get('status', '?')} "
        f"(exit {manifest.get('exit_code')})",
        f"  started (UTC): {manifest.get('started_at', '?')}",
        f"  wall time    : {manifest.get('wall_s', 0.0):.3f} s",
        f"  config hash  : {manifest.get('config_hash', '?')}",
        "  environment  : python {python} · numpy {numpy} · {platform}".format(
            python=env.get("python", "?"),
            numpy=env.get("numpy", "?"),
            platform=env.get("platform", "?"),
        ),
        "  git          : {sha}{dirty}".format(
            sha=env.get("git_sha") or "(not a work tree)",
            dirty=" (dirty)" if env.get("git_dirty") else "",
        ),
    ]
    if seeds.get("n_plans"):
        lines.append(
            "  seed lineage : {plans} plan(s), {items} item(s), "
            "{seeded} seeded".format(
                plans=seeds.get("n_plans"),
                items=seeds.get("total_items"),
                seeded=seeds.get("total_seeded"),
            )
        )
        for detail in seeds.get("plans") or []:
            if "entropy" not in detail:
                continue
            lines.append(
                "    entropy {entropy} spawn {first}..{last} "
                "({n} item(s): {labels}...)".format(
                    entropy=detail["entropy"],
                    first=detail.get("spawn_key_first"),
                    last=detail.get("spawn_key_last"),
                    n=detail.get("n_items"),
                    labels=", ".join(detail.get("labels") or []),
                )
            )
    artifacts = manifest.get("artifacts") or {}
    for name, path in sorted(artifacts.items()):
        lines.append(f"  artifact     : {name} = {path}")
    metrics = manifest.get("metrics") or {}
    if metrics:
        lines.append("")
        lines.append(
            format_table(
                ["metric", "value"],
                [(name, f"{value:.6g}") for name, value in sorted(metrics.items())],
                title="headline metrics",
            )
        )
    return "\n".join(lines)


def render_diff(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    config_changes,
    comparison,
) -> str:
    """The ``repro runs diff`` report."""
    lines = [
        "run diff: {a_seq} · {a_id} ({a_cmd})  vs  "
        "{b_seq} · {b_id} ({b_cmd})".format(
            a_seq=baseline.get("seq", "?"),
            a_id=str(baseline.get("run_id", ""))[:12],
            a_cmd=baseline.get("command", "?"),
            b_seq=candidate.get("seq", "?"),
            b_id=str(candidate.get("run_id", ""))[:12],
            b_cmd=candidate.get("command", "?"),
        ),
        "",
        f"config changes ({len(config_changes)}):",
    ]
    if config_changes:
        for key, a_val, b_val in config_changes:
            lines.append(f"  {key}: {a_val!r} -> {b_val!r}")
    else:
        lines.append("  (none — identical config hashes)" if
                     baseline.get("config_hash") == candidate.get("config_hash")
                     else "  (none)")
    lines.append("")
    lines.append(comparison.render())
    return "\n".join(lines)
