"""Event sinks: where telemetry records go.

Events are flat JSON-serialisable dicts with an ``ev`` kind field and
a monotone ``seq`` number (no wall-clock timestamps — durations are
carried explicitly, which keeps event files diffable across runs of
the same configuration up to timing noise).

Three sinks ship:

* :class:`NullSink` — the default; ``emit`` is a no-op, so disabled
  telemetry costs one method call on the cold paths and nothing on the
  hot paths (the telemetry facade checks ``enabled`` first).
* :class:`JsonlSink` — one compact JSON object per line, appended to a
  file.  ``repro report`` reads these back with :func:`read_events`.
* :class:`BufferSink` — keeps events in an in-memory list.  Worker
  processes in :mod:`repro.runtime` record into a buffer and ship it
  back to the parent, which replays the events deterministically
  (ordered by work-item index, not completion order).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional, Tuple, Union

EVENT_SCHEMA_VERSION = 2
"""Version of the JSONL event schema.

Every :class:`JsonlSink` file starts with a header line
``{"ev": "schema", "version": N}`` (no ``seq`` — it is a file header,
not a recorded event).  Version history:

* **1** — the original PR-1 stream (no header line).
* **2** — header line added; ``diag.*`` numerical-health events,
  optional span profiling fields (``cpu_s``/``rss_kb``/``gc``), and
  the ``lane`` field on events absorbed from runtime work items.

Readers must treat unknown fields as forward-compatible extensions.
"""


class NullSink:
    """Swallows every event; the disabled default."""

    enabled = False

    def emit(self, event: Dict[str, Any]) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_SINK = NullSink()


class BufferSink:
    """Collects events in memory (the per-worker telemetry buffer).

    The list is plain JSON-serialisable dicts, so a buffer produced in
    a worker process pickles cheaply back to the parent, where
    :meth:`repro.obs.telemetry.SolverTelemetry.absorb` replays it.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Writes one JSON object per line to a path or open handle.

    Parameters
    ----------
    target:
        A filesystem path (opened for writing, parent directories
        created) or an already-open text handle (left open on
        ``close``; useful for tests writing into ``io.StringIO``).
    """

    enabled = True

    def __init__(self, target: Union[str, "os.PathLike[str]", IO[str]]) -> None:
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns_handle = False
        else:
            path = os.fspath(target)
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(path, "w", encoding="utf-8")
            self._owns_handle = True
        self._closed = False
        # Schema header: first line of every JSONL file, outside the
        # seq-numbered event stream (see EVENT_SCHEMA_VERSION).
        self._handle.write(
            json.dumps(
                {"ev": "schema", "version": EVENT_SCHEMA_VERSION},
                separators=(",", ":"),
            )
        )
        self._handle.write("\n")

    def emit(self, event: Dict[str, Any]) -> None:
        if self._closed:
            raise ValueError("sink is closed")
        self._handle.write(json.dumps(event, separators=(",", ":")))
        self._handle.write("\n")

    def flush(self) -> None:
        if not self._closed:
            self._handle.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
        self._closed = True

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_events(
    source: Union[str, "os.PathLike[str]", IO[str]],
    kind: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Load a JSONL event stream back into dicts.

    Parameters
    ----------
    source:
        Path or open text handle.
    kind:
        Optional ``ev`` filter (e.g. ``"iteration"``).
    """
    events, _ = read_events_tolerant(source, kind=kind, skip_invalid=False)
    return events


def read_events_tolerant(
    source: Union[str, "os.PathLike[str]", IO[str]],
    kind: Optional[str] = None,
    skip_invalid: bool = True,
) -> Tuple[List[Dict[str, Any]], int]:
    """Load a JSONL event stream, optionally skipping malformed lines.

    A run killed mid-write leaves a truncated final line; with
    ``skip_invalid`` the line is counted instead of raising, so
    ``repro report`` can still summarise the part that survived.

    Returns ``(events, n_skipped)``.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        with open(os.fspath(source), "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    events: List[Dict[str, Any]] = []
    skipped = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            if skip_invalid:
                skipped += 1
                continue
            raise ValueError(f"line {lineno} is not valid JSON: {err}") from err
        if not isinstance(event, dict):
            if skip_invalid:
                skipped += 1
                continue
            raise ValueError(f"line {lineno} is not a JSON object: {event!r}")
        if kind is None or event.get("ev") == kind:
            events.append(event)
    return events, skipped
