"""Metric primitives and the registry that names them.

Three instrument kinds cover what the solver pipeline needs:

* :class:`Counter` — monotone event counts (simulation steps, scheme
  decisions, HJB sweeps);
* :class:`Gauge` — last-written values (final residual, iteration
  count);
* :class:`Histogram` — observation distributions with percentile
  summaries (per-iteration stage timings).

A :class:`MetricsRegistry` owns one instrument per name and merges
with other registries (used when per-content solves each carry their
own registry and the epoch driver folds them together).  Everything is
plain python + numpy; no locks — telemetry is single-threaded by
design (one registry per solver call chain).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.obs.sketch import QuantileSketch

Instrument = Union["Counter", "Gauge", "Histogram"]

DEFAULT_EXACT_CAP = 4096
"""Raw samples a :class:`Histogram` retains before sketch promotion.

Below the cap percentiles are exact (numpy linear interpolation over
the raw list); past it the histogram folds into a
:class:`~repro.obs.sketch.QuantileSketch` and memory stays constant
however many observations follow.  Resolved at construction time so
tests can monkeypatch it."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> Dict[str, float]:
        return {"value": float(self.value)}


class Gauge:
    """The most recent value written for a name."""

    __slots__ = ("name", "value", "n_writes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")
        self.n_writes = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.n_writes += 1

    def merge(self, other: "Gauge") -> None:
        # Last writer wins; an unwritten gauge never overwrites.
        if other.n_writes > 0:
            self.value = other.value
        self.n_writes += other.n_writes

    def snapshot(self) -> Dict[str, float]:
        return {"value": float(self.value), "n_writes": float(self.n_writes)}


class Histogram:
    """A distribution of observations with percentile summaries.

    Observations are stored exactly (python floats) while the count
    stays at or below ``exact_cap``; the next observation *promotes*
    the histogram — raw samples fold into a constant-memory
    :class:`~repro.obs.sketch.QuantileSketch`, the list is dropped, and
    percentiles become approximate (within the sketch's documented 1%
    relative error, flagged ``approx`` in snapshots).  Promotion keeps
    a million-request replay's metrics state flat while small solver
    runs keep exact numpy percentiles.

    Sketch state is a pure function of the observation multiset, so
    exact and promoted histograms mix freely in the deterministic
    registry merge: the merged result depends only on what was
    observed, not on which side promoted first.
    """

    __slots__ = ("name", "values", "exact_cap", "sketch")

    def __init__(self, name: str, exact_cap: Optional[int] = None) -> None:
        self.name = name
        self.values: List[float] = []
        self.exact_cap = DEFAULT_EXACT_CAP if exact_cap is None else int(exact_cap)
        if self.exact_cap < 0:
            raise ValueError(f"exact_cap must be non-negative, got {self.exact_cap}")
        self.sketch: Optional[QuantileSketch] = None

    @property
    def is_approx(self) -> bool:
        """True once raw samples have been folded into a sketch."""
        return self.sketch is not None

    def _promote(self) -> None:
        sketch = QuantileSketch()
        for value in self.values:
            sketch.record(value)
        self.values.clear()
        self.sketch = sketch

    def record(self, value: float) -> None:
        if self.sketch is not None:
            self.sketch.record(float(value))
            return
        self.values.append(float(value))
        if len(self.values) > self.exact_cap:
            self._promote()

    @property
    def count(self) -> int:
        if self.sketch is not None:
            return self.sketch.count
        return len(self.values)

    @property
    def total(self) -> float:
        if self.sketch is not None:
            return float(self.sketch.sum)
        return float(sum(self.values))

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the observations.

        Exact (numpy linear interpolation) until promotion; thereafter
        the sketch's nearest-rank answer, within 1% relative error.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {p}")
        if self.sketch is not None:
            return float(self.sketch.quantile(p))
        if not self.values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        return float(np.percentile(np.asarray(self.values, dtype=float), p))

    def merge(self, other: "Histogram") -> None:
        if other.sketch is not None:
            if self.sketch is None:
                self._promote()
            self.sketch.merge(other.sketch)
        elif self.sketch is not None:
            for value in other.values:
                self.sketch.record(value)
        else:
            self.values.extend(other.values)
            if len(self.values) > self.exact_cap:
                self._promote()

    def snapshot(self) -> Dict[str, float]:
        if self.sketch is not None:
            s = self.sketch
            return {
                "count": float(s.count),
                "sum": float(s.sum),
                "mean": float(s.mean),
                "min": float(s.min),
                "max": float(s.max),
                "p50": float(s.quantile(50)),
                "p90": float(s.quantile(90)),
                "p99": float(s.quantile(99)),
                "approx": True,
                "n_bins": float(s.n_bins),
            }
        if not self.values:
            return {"count": 0.0}
        arr = np.asarray(self.values, dtype=float)
        return {
            "count": float(arr.size),
            "sum": float(arr.sum()),
            "mean": float(arr.mean()),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "p50": float(np.percentile(arr, 50)),
            "p90": float(np.percentile(arr, 90)),
            "p99": float(np.percentile(arr, 99)),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to exactly one instrument kind; asking for the same
    name as a different kind raises, which catches typo'd re-use early.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, kind: type) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(name)
            self._instruments[name] = inst
        elif not isinstance(inst, kind):
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, "
                f"not a {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[Tuple[str, Instrument]]:
        return iter(sorted(self._instruments.items()))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (kind-checked per name)."""
        for name, inst in other._instruments.items():
            self._get(name, type(inst)).merge(inst)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-serialisable view: name -> {kind, ...stats}."""
        out: Dict[str, Dict[str, object]] = {}
        for name, inst in self:
            entry: Dict[str, object] = {"kind": type(inst).__name__.lower()}
            entry.update(inst.snapshot())
            out[name] = entry
        return out
