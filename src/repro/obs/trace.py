"""Chrome trace-event export for recorded telemetry streams.

Turns a JSONL event stream (``repro ... --telemetry run.jsonl``) into
the Chrome/Perfetto *Trace Event Format* — a JSON document that
``chrome://tracing`` and https://ui.perfetto.dev open directly — so a
merged serial or ``process:N`` run renders as swimlanes of nested span
blocks with diagnostics pinned as instant markers.

Timeline reconstruction
-----------------------
The telemetry contract deliberately records **no wall-clock
timestamps** (streams stay diffable across runs), so the exporter
rebuilds a timeline from what the stream does guarantee:

* ``span`` events are emitted at span *exit*, in post-order — every
  child closes before its parent, and siblings close in execution
  order;
* each event carries its full path (``epoch/content/solve/hjb``) and
  measured duration;
* events absorbed from runtime work items carry a ``lane`` field (the
  work-item label, e.g. ``content:3``).

Within a lane the exporter packs spans sequentially: a span's start is
its first descendant's start (or the end of the previous completed
interval when it has none), and its end covers both its own duration
and its children.  Lanes become Perfetto *threads* — one row per work
item plus a ``main`` row for the parent process — which matches how
the runtime actually schedules the work, up to worker assignment.
Durations are exact; only the absolute offsets are synthetic, which is
the best any timestamp-free stream can support.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional, Tuple, Union

MAIN_LANE = "main"


def _lane_of(event: Dict[str, Any]) -> str:
    lane = event.get("lane")
    return str(lane) if lane else MAIN_LANE


def build_chrome_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble a Trace Event Format document from telemetry events.

    Returns the ``{"traceEvents": [...]}`` dict ready to serialise.
    Spans become complete (``ph: "X"``) events with microsecond
    timestamps; ``diag.*`` events become instant (``ph: "i"``) markers
    on their lane at the reconstruction cursor.
    """
    trace_events: List[Dict[str, Any]] = []
    # Per lane: list of completed-but-unclaimed (path, start_us, end_us)
    # intervals; descendants collapse into their parent as it closes.
    pending: Dict[str, List[Tuple[str, float, float]]] = {}
    lane_order: List[str] = []

    def lane_state(lane: str) -> List[Tuple[str, float, float]]:
        if lane not in pending:
            pending[lane] = []
            lane_order.append(lane)
        return pending[lane]

    def cursor(stack: List[Tuple[str, float, float]]) -> float:
        return stack[-1][2] if stack else 0.0

    for event in events:
        kind = str(event.get("ev", ""))
        lane = _lane_of(event)
        if kind == "span":
            path = str(event.get("path", "")) or "span"
            dur_us = max(float(event.get("dur_s", 0.0)), 0.0) * 1e6
            stack = lane_state(lane)
            prefix = path + "/"
            n_children = 0
            while n_children < len(stack) and stack[-1 - n_children][0].startswith(
                prefix
            ):
                n_children += 1
            if n_children:
                children = stack[-n_children:]
                del stack[-n_children:]
                start = children[0][1]
                end = max(start + dur_us, children[-1][2])
            else:
                start = cursor(stack)
                end = start + dur_us
            stack.append((path, start, end))
            args: Dict[str, Any] = {"path": path}
            for key in ("cpu_s", "rss_kb", "gc"):
                if key in event:
                    args[key] = event[key]
            trace_events.append(
                {
                    "name": path.rsplit("/", 1)[-1],
                    "cat": "span",
                    "ph": "X",
                    "ts": round(start, 3),
                    "dur": round(max(end - start, 0.001), 3),
                    "pid": 1,
                    "tid": 0,  # patched to the lane's tid below
                    "args": args,
                    "_lane": lane,
                }
            )
        elif kind.startswith("diag."):
            stack = lane_state(lane)
            severity = str(event.get("severity", "info"))
            args = {
                k: v
                for k, v in event.items()
                if k not in ("ev", "seq", "lane") and _json_safe(v)
            }
            trace_events.append(
                {
                    "name": f"{kind} [{severity}]",
                    "cat": "diag",
                    "ph": "i",
                    "s": "t",
                    "ts": round(cursor(stack), 3),
                    "pid": 1,
                    "tid": 0,
                    "args": args,
                    "_lane": lane,
                }
            )

    # Stable lane -> tid mapping: main first, then first-appearance order.
    lanes = sorted(lane_order, key=lambda l: (l != MAIN_LANE, lane_order.index(l)))
    tids = {lane: i for i, lane in enumerate(lanes)}
    for entry in trace_events:
        entry["tid"] = tids[entry.pop("_lane")]

    metadata: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro telemetry"},
        }
    ]
    for lane, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }


def _json_safe(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool, list, type(None)))


def write_chrome_trace(
    events: List[Dict[str, Any]],
    target: Union[str, "os.PathLike[str]", IO[str]],
) -> Dict[str, int]:
    """Write the trace document; returns span/diag/lane counts."""
    document = build_chrome_trace(events)
    if hasattr(target, "write"):
        json.dump(document, target)  # type: ignore[arg-type]
    else:
        path = os.fspath(target)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    entries = document["traceEvents"]
    return {
        "spans": sum(1 for e in entries if e.get("cat") == "span"),
        "diags": sum(1 for e in entries if e.get("cat") == "diag"),
        "lanes": sum(1 for e in entries if e.get("name") == "thread_name"),
    }
