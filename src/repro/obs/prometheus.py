"""Prometheus text exposition for telemetry runs (`repro export-metrics`).

Converts a :class:`~repro.obs.report.RunSummary` into the Prometheus
text format (version 0.0.4): one ``# TYPE``-annotated family per
metric, ``repro_``-prefixed and sanitised names, counters with the
``_total`` suffix, histograms exposed as summaries (``quantile``
labels plus ``_sum``/``_count``).

Two sources feed the exposition:

* the final ``metrics`` registry snapshot, when the run closed cleanly
  — every counter/gauge/histogram the run recorded;
* event-derived families that work on an **in-flight** run too (the
  JSONL has no final snapshot until ``close()``): per-kind event
  counts, ``diag.*`` findings per severity, and the headline numbers
  of each ``serving_report`` event.

Output is deterministic: families and labels are emitted in sorted
order, so two byte-identical runs export byte-identical expositions.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from repro.obs.report import RunSummary

PROM_PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _metric_name(name: str) -> str:
    """Sanitise a dotted metric name into a Prometheus identifier."""
    clean = _NAME_RE.sub("_", str(name)).strip("_")
    if not clean:
        clean = "unnamed"
    if clean[0].isdigit():
        clean = "_" + clean
    return PROM_PREFIX + clean


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _labels(pairs: Dict[str, Any]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(pairs[key])}"' for key in sorted(pairs)
    )
    return "{" + inner + "}"


def _fmt(value: Any) -> str:
    number = float(value)
    if number != number:  # NaN (an unwritten gauge)
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Exposition:
    """Accumulates families, renders them in sorted order."""

    def __init__(self) -> None:
        self._families: Dict[str, Dict[str, Any]] = {}

    def add(
        self,
        name: str,
        kind: str,
        value: Any,
        labels: Dict[str, Any] = {},
        help_text: str = "",
    ) -> None:
        family = self._families.setdefault(
            name, {"kind": kind, "help": help_text, "samples": []}
        )
        family["samples"].append((name, dict(labels), value))

    def has(self, name: str) -> bool:
        return name in self._families

    def sample(self, family: str, suffix: str, value: Any,
               labels: Dict[str, Any] = {}) -> None:
        """An extra sample line under an existing family (``_sum`` ...)."""
        self._families[family]["samples"].append(
            (family + suffix, dict(labels), value)
        )

    def render(self) -> str:
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for sample_name, labels, value in sorted(
                family["samples"], key=lambda s: (s[0], _labels(s[1]))
            ):
                lines.append(f"{sample_name}{_labels(labels)} {_fmt(value)}")
        return "\n".join(lines) + "\n"


def render_prometheus(summary: RunSummary) -> str:
    """The full text exposition for one (finished or in-flight) run."""
    exp = _Exposition()

    # Event-derived families: available even before the final metrics
    # snapshot exists, so an in-flight run exports something useful.
    kind_counts: Dict[str, int] = {}
    for event in summary.events:
        kind = str(event.get("ev", "event"))
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
    for kind in sorted(kind_counts):
        exp.add(
            PROM_PREFIX + "events_total",
            "counter",
            kind_counts[kind],
            labels={"kind": kind},
            help_text="Telemetry events in the run, by event kind.",
        )
    diag_counts = summary.diag_counts()
    for severity in sorted(diag_counts):
        if diag_counts[severity]:
            exp.add(
                PROM_PREFIX + "diag_findings_total",
                "counter",
                diag_counts[severity],
                labels={"severity": severity},
                help_text="Numerical-health findings, by severity.",
            )
    for event in summary.serving_reports:
        policy = {"policy": str(event.get("policy", "?"))}
        exp.add(
            PROM_PREFIX + "serving_requests_total", "counter",
            event.get("requests", 0), labels=policy,
            help_text="Requests replayed per serving policy.",
        )
        exp.add(
            PROM_PREFIX + "serving_hit_ratio", "gauge",
            event.get("hit_ratio", float("nan")), labels=policy,
            help_text="Replay cache hit ratio per serving policy.",
        )
        if "staleness_violation_rate" in event:
            exp.add(
                PROM_PREFIX + "serving_staleness_violation_rate", "gauge",
                event["staleness_violation_rate"], labels=policy,
                help_text="Stale-hit rate per serving policy.",
            )
        if "backhaul_mb" in event:
            exp.add(
                PROM_PREFIX + "serving_backhaul_mb", "gauge",
                event["backhaul_mb"], labels=policy,
                help_text="Backhaul volume per serving policy, in MB.",
            )

    # Registry-derived families, from the final metrics snapshot.
    for raw_name in sorted(summary.metrics):
        entry = summary.metrics[raw_name]
        kind = str(entry.get("kind", ""))
        name = _metric_name(raw_name)
        if exp.has(name) or exp.has(name + "_total"):
            # A sanitised registry name colliding with an event-derived
            # family (e.g. the `diag.findings` counter vs the
            # per-severity `repro_diag_findings_total` breakdown): the
            # labelled event-derived family wins.
            continue
        if kind == "counter":
            exp.add(name + "_total", "counter", entry.get("value", 0.0),
                    help_text=f"Counter {raw_name!r}.")
        elif kind == "gauge":
            exp.add(name, "gauge", entry.get("value", float("nan")),
                    help_text=f"Gauge {raw_name!r}.")
        elif kind == "histogram":
            if not entry.get("count"):
                continue
            approx = " (sketch-approximated quantiles)" if entry.get(
                "approx"
            ) else ""
            first = True
            for quantile, key in _QUANTILES:
                if key not in entry:
                    continue
                if first:
                    exp.add(
                        name, "summary", entry[key],
                        labels={"quantile": quantile},
                        help_text=f"Histogram {raw_name!r}{approx}.",
                    )
                    first = False
                else:
                    exp.sample(name, "", entry[key],
                               labels={"quantile": quantile})
            if first:  # no quantile keys at all; still expose totals
                exp.add(name, "summary", entry.get("mean", float("nan")),
                        labels={"quantile": "0.5"},
                        help_text=f"Histogram {raw_name!r}{approx}.")
            exp.sample(name, "_sum", entry.get("sum", 0.0))
            exp.sample(name, "_count", entry.get("count", 0))
    return exp.render()
