"""Nestable wall-clock span timers that aggregate into a tree.

A span measures one stage of work (``hjb``, ``fpk``, one epoch, one
content solve).  Spans nest: entering a span while another is open
attaches it as a child, so repeated stages aggregate into a wall-time
tree keyed by path (``solve/iteration/hjb``).  The recorder keeps
total seconds and call counts per path — the structure ``repro report``
renders and every future performance PR measures against.

The context managers are intentionally tiny: two ``perf_counter``
calls and two dict operations per span.  The disabled fast path lives
one layer up (:mod:`repro.obs.telemetry` hands out a shared no-op span
when telemetry is off), so solver hot loops pay a single attribute
check when observability is disabled.

Resource profiling
------------------
A recorder built with ``profile=True`` additionally charges each span
with process CPU time (``time.process_time``), resident-set-size
growth (KB, from ``/proc/self/statm`` where available), and the number
of garbage-collector collections that ran while the span was open.
Profiling is opt-in because each sample costs a syscall + a
``gc.get_stats()`` walk; the default recorder touches only
``perf_counter``.  Profiled numbers are *measurements*, never inputs —
solver results stay bit-identical with profiling on or off.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, Iterator, List, Optional, Tuple


def _read_rss_kb() -> float:
    """Current resident set size in KB (0.0 when unavailable)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") / 1024.0)
    except (OSError, ValueError, IndexError):
        try:
            import resource

            # ru_maxrss is KB on Linux (bytes on macOS; close enough
            # for a fallback that only runs when /proc is missing).
            return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except Exception:  # pragma: no cover - exotic platforms
            return 0.0


def _gc_collections() -> int:
    """Cumulative garbage collections across all generations."""
    return sum(int(stats.get("collections", 0)) for stats in gc.get_stats())


class SpanNode:
    """Aggregated timings for one path in the span tree."""

    __slots__ = ("name", "count", "total_s", "cpu_s", "rss_kb", "gc_collections", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.cpu_s = 0.0          # process CPU charged (profiling only)
        self.rss_kb = 0.0         # net RSS growth in KB (profiling only)
        self.gc_collections = 0   # GC collections while open (profiling only)
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def merge(self, other: "SpanNode") -> None:
        """Fold another node's counts/timings (and subtree) into this one.

        Used when a worker process ships its span tree back to the
        parent: identical paths aggregate exactly as if the spans had
        been recorded in-process.
        """
        self.count += other.count
        self.total_s += other.total_s
        self.cpu_s += other.cpu_s
        self.rss_kb += other.rss_kb
        self.gc_collections += other.gc_collections
        for name, child in other.children.items():
            self.child(name).merge(child)

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "SpanNode"]]:
        """Yield ``(path, node)`` pairs depth-first."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield path, self
        for child in self.children.values():
            yield from child.walk(path)

    # SpanNode uses __slots__, so give pickle an explicit state tuple
    # (worker span trees cross the process boundary inside snapshots).
    def __getstate__(self):
        return (
            self.name, self.count, self.total_s, self.cpu_s,
            self.rss_kb, self.gc_collections, self.children,
        )

    def __setstate__(self, state) -> None:
        (
            self.name, self.count, self.total_s, self.cpu_s,
            self.rss_kb, self.gc_collections, self.children,
        ) = state


class Span:
    """One live measurement; use as a context manager.

    After ``__exit__`` the measured wall time is available as
    :attr:`duration` — callers that need the number (e.g. the Table II
    best-of-N timing) read it instead of re-timing.  Under a profiling
    recorder :attr:`cpu_s`, :attr:`rss_kb`, and :attr:`gc_collections`
    carry the resource deltas.
    """

    __slots__ = (
        "name", "duration", "cpu_s", "rss_kb", "gc_collections",
        "_recorder", "_start", "_cpu0", "_rss0", "_gc0", "_node",
    )

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self.name = name
        self.duration = 0.0
        self.cpu_s = 0.0
        self.rss_kb = 0.0
        self.gc_collections = 0
        self._recorder = recorder
        self._start = 0.0
        self._cpu0 = 0.0
        self._rss0 = 0.0
        self._gc0 = 0
        self._node: Optional[SpanNode] = None

    def __enter__(self) -> "Span":
        self._node = self._recorder._push(self.name)
        if self._recorder.profile:
            self._cpu0 = time.process_time()
            self._rss0 = _read_rss_kb()
            self._gc0 = _gc_collections()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start
        if self._recorder.profile:
            self.cpu_s = time.process_time() - self._cpu0
            self.rss_kb = _read_rss_kb() - self._rss0
            self.gc_collections = _gc_collections() - self._gc0
        self._recorder._pop(self, self._node)
        return None


class NullSpan:
    """The shared no-op span handed out when telemetry is disabled."""

    __slots__ = ()
    name = ""
    duration = 0.0
    cpu_s = 0.0
    rss_kb = 0.0
    gc_collections = 0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = NullSpan()


class SpanRecorder:
    """Aggregates nested spans into a wall-time tree.

    Not thread-safe: one recorder belongs to one solver call chain,
    matching how telemetry objects are threaded through the pipeline.

    Parameters
    ----------
    profile:
        When True every span also samples process CPU time, RSS, and
        GC collection counts on entry/exit and charges the deltas to
        its tree node (see the module docstring).
    """

    def __init__(self, profile: bool = False) -> None:
        self.profile = bool(profile)
        self.root = SpanNode("")
        self._stack: List[SpanNode] = [self.root]

    def span(self, name: str) -> Span:
        if "/" in name:
            raise ValueError(f"span names must not contain '/', got {name!r}")
        return Span(self, name)

    def _push(self, name: str) -> SpanNode:
        node = self._stack[-1].child(name)
        self._stack.append(node)
        return node

    def _pop(self, span: Span, node: SpanNode) -> None:
        popped = self._stack.pop()
        if popped is not node:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span {node.name!r} exited out of order (open: {popped.name!r})"
            )
        node.count += 1
        node.total_s += span.duration
        if self.profile:
            node.cpu_s += span.cpu_s
            node.rss_kb += span.rss_kb
            node.gc_collections += span.gc_collections

    def graft(self, root: SpanNode) -> None:
        """Attach another recorder's tree under the currently open span.

        ``root`` is the (nameless) root of a worker recorder; its
        children become children of whatever span is open here — e.g.
        a per-content ``content/solve/...`` subtree recorded in a
        worker grafts under the parent's live ``epoch`` span, giving
        the same ``epoch/content/solve`` paths a serial in-process run
        produces.
        """
        for name, child in root.children.items():
            self._stack[-1].child(name).merge(child)

    @property
    def current_path(self) -> str:
        """The '/'-joined path of open spans (empty at top level)."""
        return "/".join(n.name for n in self._stack[1:])

    def rows(self) -> List[Tuple[str, int, float]]:
        """Flat ``(path, count, total seconds)`` rows, depth-first."""
        out = []
        for child in self.root.children.values():
            out.extend(
                (path, node.count, node.total_s) for path, node in child.walk()
            )
        return out

    def render(self, min_seconds: float = 0.0) -> str:
        """An indented wall-time tree (used by reports and debugging)."""
        lines: List[str] = []

        def emit(node: SpanNode, depth: int) -> None:
            if node.count and node.total_s >= min_seconds:
                line = (
                    f"{'  ' * depth}{node.name:<{max(1, 28 - 2 * depth)}} "
                    f"{node.total_s:>9.4f}s  x{node.count}"
                    f"  (avg {node.mean_s * 1e3:.2f} ms)"
                )
                if self.profile and node.cpu_s:
                    line += f"  cpu {node.cpu_s:.4f}s"
                lines.append(line)
            for child in node.children.values():
                emit(child, depth + 1)

        for child in self.root.children.values():
            emit(child, 0)
        return "\n".join(lines)
