"""The :class:`SolverTelemetry` observer threaded through the pipeline.

One telemetry object bundles the three observability primitives —
a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.spans.SpanRecorder`, and an event sink — behind a
facade the solvers call unconditionally:

>>> tele = SolverTelemetry.null()          # disabled (the default)
>>> with tele.span("hjb"):                 # no-op singleton span
...     pass
>>> tele.event("iteration", iteration=1)   # returns immediately

Disabled telemetry (the :data:`NULL_TELEMETRY` default) costs a single
attribute check per call site, so hot numerical loops keep their seed
wall time.  Enabled telemetry records spans into the wall-time tree,
mirrors every finished span as a ``span`` event on the sink, and dumps
the metric registry as a final ``metrics`` event on ``close()``.

No wall-clock timestamps are ever attached and no solver *result*
changes in any way: the event stream is a pure side channel.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union

from repro.obs.events import BufferSink, JsonlSink, NULL_SINK, NullSink
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import NULL_SPAN, NullSpan, Span, SpanNode, SpanRecorder

DIAG_SEVERITIES = ("info", "warning", "error")
"""Allowed severities for ``diag.*`` events, mildest first."""


class StrictNumericsError(RuntimeError):
    """Raised by :meth:`SolverTelemetry.diag` under ``strict_numerics``.

    Fail-fast escalation: an error-severity numerical-health finding
    (NaN density, mass blow-up, CFL violation, ...) aborts the run at
    the first bad iteration instead of producing a garbage equilibrium
    hours later.  The triggering event is still emitted before the
    raise, so the JSONL stream records what went wrong.
    """

    def __init__(self, check: str, message: str = "", value: Optional[float] = None):
        self.check = check
        self.message = message
        self.value = value
        super().__init__(f"strict numerics: [{check}] {message}")

    def __reduce__(self):
        # Keep the structured fields across the process-pool boundary
        # (default exception pickling would re-init with the formatted
        # string as ``check``).
        return (type(self), (self.check, self.message, self.value))


class _RecordingSpan:
    """A span that also mirrors itself onto the event sink on exit."""

    __slots__ = ("_telemetry", "_span")

    def __init__(self, telemetry: "SolverTelemetry", span: Span) -> None:
        self._telemetry = telemetry
        self._span = span

    @property
    def name(self) -> str:
        return self._span.name

    @property
    def duration(self) -> float:
        return self._span.duration

    @property
    def cpu_s(self) -> float:
        return self._span.cpu_s

    @property
    def rss_kb(self) -> float:
        return self._span.rss_kb

    def __enter__(self) -> "_RecordingSpan":
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tele = self._telemetry
        path = tele.spans.current_path
        self._span.__exit__(exc_type, exc, tb)
        if tele.profile:
            tele.event(
                "span",
                path=path,
                dur_s=self._span.duration,
                cpu_s=self._span.cpu_s,
                rss_kb=round(self._span.rss_kb, 3),
                gc=self._span.gc_collections,
            )
        else:
            tele.event("span", path=path, dur_s=self._span.duration)
        return None


@dataclass
class TelemetrySnapshot:
    """Everything a buffered (per-worker) telemetry run recorded.

    Snapshots are plain data — event dicts, a metrics registry, a span
    tree — so they pickle across process boundaries.  The parent run
    folds them back in with :meth:`SolverTelemetry.absorb`, in
    work-item order, making the merged stream independent of worker
    completion order.
    """

    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    spans: SpanNode = field(default_factory=lambda: SpanNode(""))

    def span_seconds(self, name: str) -> float:
        """Total seconds of a top-level span in this snapshot."""
        node = self.spans.children.get(name)
        return node.total_s if node is not None else 0.0


class SolverTelemetry:
    """Observer handed to solvers, simulators, and experiment drivers.

    Parameters
    ----------
    sink:
        Event destination.  ``None`` (with ``enabled`` unset) leaves
        telemetry disabled.
    enabled:
        Force-enable without a sink — spans and metrics are recorded
        in memory and can be inspected programmatically (the Table II
        timing path uses this).
    profile:
        Opt into per-span resource profiling (process CPU, RSS delta,
        GC collections); ``span`` events then carry
        ``cpu_s``/``rss_kb``/``gc`` fields.  Ignored while disabled.
    strict_numerics:
        Escalate error-severity :meth:`diag` findings into a
        :class:`StrictNumericsError` after emitting the event.
    """

    def __init__(
        self,
        sink: Optional[Union[NullSink, JsonlSink]] = None,
        enabled: Optional[bool] = None,
        profile: bool = False,
        strict_numerics: bool = False,
    ) -> None:
        self.sink = sink if sink is not None else NULL_SINK
        self.enabled = bool(self.sink.enabled) if enabled is None else bool(enabled)
        self.profile = bool(profile) and self.enabled
        self.strict_numerics = bool(strict_numerics)
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(profile=self.profile)
        self.live = None  # Optional[repro.obs.live.LiveStatusWriter]
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def null(cls) -> "SolverTelemetry":
        """A fresh disabled instance (see also :data:`NULL_TELEMETRY`)."""
        return cls()

    @classmethod
    def in_memory(
        cls, profile: bool = False, strict_numerics: bool = False
    ) -> "SolverTelemetry":
        """Enabled without a sink: spans/metrics recorded, no events."""
        return cls(enabled=True, profile=profile, strict_numerics=strict_numerics)

    @classmethod
    def to_jsonl(
        cls,
        target: Union[str, "os.PathLike[str]", IO[str]],
        profile: bool = False,
        strict_numerics: bool = False,
    ) -> "SolverTelemetry":
        """Enabled, streaming events to a JSON-lines file or handle."""
        return cls(
            sink=JsonlSink(target), profile=profile, strict_numerics=strict_numerics
        )

    @classmethod
    def buffered(
        cls, profile: bool = False, strict_numerics: bool = False
    ) -> "SolverTelemetry":
        """Enabled, collecting events in memory for a later merge.

        This is the per-worker observer of :mod:`repro.runtime`: the
        worker records into the buffer, :meth:`snapshot` packages it,
        and the parent telemetry replays it with :meth:`absorb`.
        """
        return cls(
            sink=BufferSink(), profile=profile, strict_numerics=strict_numerics
        )

    # ------------------------------------------------------------------
    # Live status (repro.obs.live side channel)
    # ------------------------------------------------------------------
    def set_live(self, writer) -> None:
        """Attach a :class:`~repro.obs.live.LiveStatusWriter`.

        The writer is a wall-clock side channel: executors heartbeat
        it as items complete and phases change, and it reads this
        telemetry's diag counters at write time.  Never attach one to
        the shared :data:`NULL_TELEMETRY` singleton — give the run its
        own telemetry instance (the CLI's ``--live-status`` does).
        """
        if self is NULL_TELEMETRY:
            raise ValueError(
                "refusing to attach a live-status writer to the shared "
                "NULL_TELEMETRY singleton; create a dedicated telemetry"
            )
        self.live = writer
        if writer is not None:
            writer.attach(self)

    # ------------------------------------------------------------------
    # Recording API (called from solver hot paths)
    # ------------------------------------------------------------------
    def span(self, name: str) -> Union[NullSpan, _RecordingSpan]:
        """A context-manager span; the shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _RecordingSpan(self, self.spans.span(name))

    def event(self, kind: str, **fields: Any) -> None:
        """Emit one event dict (``ev`` + ``seq`` + the given fields)."""
        if not self.enabled:
            return
        self._seq += 1
        event: Dict[str, Any] = {"ev": kind, "seq": self._seq}
        event.update(fields)
        self.sink.emit(event)

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter (no-op when disabled)."""
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Write a gauge (no-op when disabled)."""
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram observation (no-op when disabled).

        When the observation tips the histogram past its raw-sample
        cap (promoting it to constant-memory sketch storage), a
        one-time ``diag.metrics.sketch_promoted`` info finding is
        emitted — the report's diagnostics section then explains why
        that metric's percentiles carry the ``~`` marker.
        """
        if not self.enabled:
            return
        hist = self.metrics.histogram(name)
        was_exact = not hist.is_approx
        hist.record(value)
        if was_exact and hist.is_approx:
            self.diag(
                "metrics.sketch_promoted",
                "info",
                message=(
                    f"histogram {name!r} exceeded exact_cap="
                    f"{hist.exact_cap}; promoted to quantile sketch "
                    "(percentiles now ~1% relative error)"
                ),
                metric=name,
                exact_cap=hist.exact_cap,
            )

    def diag(
        self,
        check: str,
        severity: str,
        value: Optional[float] = None,
        threshold: Optional[float] = None,
        message: str = "",
        **fields: Any,
    ) -> None:
        """Emit a numerical-health finding as a ``diag.<check>`` event.

        Besides the event, findings tally into ``diag.findings`` and
        per-severity ``diag.<severity>`` counters so reports can show
        health at a glance without re-scanning the stream.  Under
        ``strict_numerics``, an ``"error"`` finding raises
        :class:`StrictNumericsError` *after* the event is emitted —
        the stream records the cause of the abort.

        Diag values must be deterministic functions of solver state
        (never wall-clock-derived), preserving the serial-vs-parallel
        bit-identity contract of :mod:`repro.runtime`.
        """
        if not self.enabled:
            return
        if severity not in DIAG_SEVERITIES:
            raise ValueError(
                f"diag severity must be one of {DIAG_SEVERITIES}, got {severity!r}"
            )
        payload: Dict[str, Any] = {"severity": severity}
        if value is not None:
            payload["value"] = value
        if threshold is not None:
            payload["threshold"] = threshold
        if message:
            payload["message"] = message
        payload.update(fields)
        self.event(f"diag.{check}", **payload)
        self.metrics.counter("diag.findings").inc()
        self.metrics.counter(f"diag.{severity}").inc()
        if severity == "error" and self.strict_numerics:
            raise StrictNumericsError(check, message or f"{check} failed", value)

    # ------------------------------------------------------------------
    # Worker-buffer merging (repro.runtime)
    # ------------------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        """Package everything recorded so far for a cross-process merge."""
        return TelemetrySnapshot(
            events=list(getattr(self.sink, "events", [])),
            metrics=self.metrics,
            spans=self.spans.root,
        )

    def absorb(
        self,
        snapshot: Optional[TelemetrySnapshot],
        lane: Optional[str] = None,
    ) -> None:
        """Fold a worker snapshot into this telemetry deterministically.

        Buffered events are re-emitted through :meth:`event` (fresh
        ``seq`` numbers, original relative order); ``span`` events get
        their paths prefixed with the currently open span path, so a
        subtree recorded in a worker lands where a serial in-process
        run would have put it.  Metrics merge by name and the span
        tree grafts under the open span.  Call in work-item order —
        the merged stream is then identical for serial and parallel
        backends.

        ``lane`` tags every re-emitted event with the originating work
        item's label (e.g. ``content:3``).  The Chrome trace exporter
        uses lanes as thread rows, so a Perfetto view of a ``process:4``
        run shows per-work-item swimlanes.  Because lanes derive from
        the execution *plan* — not from which OS worker happened to run
        the item — the field is identical across backends.
        """
        if snapshot is None or not self.enabled:
            return
        prefix = self.spans.current_path
        for event in snapshot.events:
            kind = str(event.get("ev", "event"))
            if kind == "schema":  # defensive: never duplicate file headers
                continue
            fields = {k: v for k, v in event.items() if k not in ("ev", "seq")}
            if kind == "span" and prefix:
                child_path = str(fields.get("path", ""))
                fields["path"] = (
                    f"{prefix}/{child_path}" if child_path else prefix
                )
            if lane is not None and "lane" not in fields:
                fields["lane"] = lane
            self.event(kind, **fields)
        self.metrics.merge(snapshot.metrics)
        self.spans.graft(snapshot.spans)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        """Convenience accessor for tests and reports."""
        return self.metrics.counter(name).value if name in self.metrics else 0.0

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        """Dump the metrics snapshot as a final event and close the sink."""
        if self._closed:
            return
        if self.enabled and len(self.metrics):
            self.event("metrics", metrics=self.metrics.snapshot())
        if self.live is not None:
            # Routine teardown marks "done"; an earlier finish("failed")
            # from an error handler wins (first-finish semantics).
            self.live.finish("done")
        self.sink.close()
        self._closed = True

    def __enter__(self) -> "SolverTelemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


NULL_TELEMETRY = SolverTelemetry()
"""The shared disabled instance used as the default everywhere."""
