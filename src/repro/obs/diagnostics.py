"""Numerical-health probes for the HJB–FPK fixed-point pipeline.

The paper's equilibrium claims rest on numerical invariants the solver
otherwise only asserts in tests: the FPK sweep must conserve unit mass
(Eq. 9 dynamics), the backward HJB sweep must satisfy its own discrete
equation, the explicit schemes must respect their CFL bound, and the
Algorithm 2 best-response iteration must contract (Theorem 2).  This
module watches those invariants *live* and reports them as structured
``diag.<check>`` telemetry events with a severity each
(``info`` / ``warning`` / ``error``), via
:meth:`repro.obs.telemetry.SolverTelemetry.diag`.

Probes implement the :class:`DiagnosticsProbe` protocol — three hooks
mirroring the solve lifecycle — and are bundled by
:class:`SolveDiagnostics`, which :class:`~repro.core.best_response.
BestResponseIterator` drives.  Everything is gated on
``telemetry.enabled``: with the default :data:`~repro.obs.telemetry.
NULL_TELEMETRY` the probes are never constructed and the solve pays a
single boolean check per hook site.

Two design rules keep probes safe to leave installed:

* **Deterministic values.**  Probe outputs are pure functions of solver
  state (never wall-clock or memory measurements), so ``diag.*`` events
  survive the serial-vs-``process:N`` bit-identity contract of
  :mod:`repro.runtime`.
* **Bounded cost.**  Per-iteration probes sample at most
  :data:`MAX_RESIDUAL_SAMPLES` time slices for the HJB residual and use
  vectorised reductions elsewhere, so an enabled run stays within a few
  percent of the plain enabled-telemetry wall time.

Fail-fast: constructing the telemetry with ``strict_numerics=True``
(CLI flag ``--strict-numerics``) turns any error-severity finding into
a :class:`~repro.obs.telemetry.StrictNumericsError` at the offending
iteration, after the event is emitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional, Protocol, Sequence

import numpy as np

from repro.obs.telemetry import SolverTelemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports obs)
    from repro.core.equilibrium import ConvergenceReport
    from repro.core.fpk import FPKSolver
    from repro.core.grid import StateGrid
    from repro.core.hjb import HJBSolution, HJBSolver
    from repro.core.mean_field import MeanFieldPath
    from repro.core.parameters import MFGCPConfig

MAX_RESIDUAL_SAMPLES = 8
"""Most reporting-time slices the HJB residual probe evaluates per
iteration — bounds the enabled-mode overhead independent of ``n_t``."""


# ----------------------------------------------------------------------
# Lifecycle contexts
# ----------------------------------------------------------------------
@dataclass
class SolveStartContext:
    """State available before the first best-response iteration."""

    telemetry: SolverTelemetry
    grid: "StateGrid"
    config: "MFGCPConfig"
    fpk: "FPKSolver"
    hjb: "HJBSolver"


@dataclass
class IterationContext:
    """State available after one complete best-response iteration."""

    telemetry: SolverTelemetry
    grid: "StateGrid"
    config: "MFGCPConfig"
    hjb: "HJBSolver"
    iteration: int
    density_path: np.ndarray
    solution: "HJBSolution"
    mean_field: "MeanFieldPath"
    policy_change: float


@dataclass
class SolveEndContext:
    """State available once the fixed-point loop has stopped."""

    telemetry: SolverTelemetry
    config: "MFGCPConfig"
    report: "ConvergenceReport"


class DiagnosticsProbe(Protocol):
    """One numerical-health check, hooked into the solve lifecycle.

    Implementations may override any subset of the hooks; each receives
    a context dataclass and reports findings through
    ``ctx.telemetry.diag(...)``.  Probes must not mutate solver state.
    """

    name: str

    def on_solve_start(self, ctx: SolveStartContext) -> None: ...

    def on_iteration(self, ctx: IterationContext) -> None: ...

    def on_solve_end(self, ctx: SolveEndContext) -> None: ...


class _BaseProbe:
    """No-op hook defaults so concrete probes override only what they use."""

    name = "probe"

    def on_solve_start(self, ctx: SolveStartContext) -> None:
        return None

    def on_iteration(self, ctx: IterationContext) -> None:
        return None

    def on_solve_end(self, ctx: SolveEndContext) -> None:
        return None


# ----------------------------------------------------------------------
# Concrete probes
# ----------------------------------------------------------------------
class MassConservationProbe(_BaseProbe):
    """FPK mass drift: ``max_t |∫∫ λ(t) dh dq − 1|``.

    The conservative donor-cell scheme renormalises every substep, so
    healthy drift sits at rounding level (~1e-15).  Drift above
    ``warn_at`` flags quadrature/boundary trouble; above ``error_at``
    the density path is no longer a probability law.
    """

    name = "fpk.mass_drift"

    def __init__(self, warn_at: float = 1e-8, error_at: float = 1e-3) -> None:
        self.warn_at = float(warn_at)
        self.error_at = float(error_at)

    def on_iteration(self, ctx: IterationContext) -> None:
        weights = ctx.grid.cell_weights()
        # One vectorised contraction over the whole path: mass(t) for
        # every reporting time without a Python-level loop.
        masses = np.tensordot(ctx.density_path, weights, axes=([1, 2], [0, 1]))
        drift = float(np.max(np.abs(masses - 1.0)))
        if not np.isfinite(drift) or drift > self.error_at:
            severity = "error"
        elif drift > self.warn_at:
            severity = "warning"
        else:
            severity = "info"
        ctx.telemetry.diag(
            self.name,
            severity,
            value=drift,
            threshold=self.warn_at,
            message="FPK mass drift exceeds tolerance"
            if severity != "info"
            else "",
            iteration=ctx.iteration,
        )


class DensityHealthProbe(_BaseProbe):
    """Density positivity/finiteness guards over the whole FPK path.

    NaN/Inf anywhere, or negativity beyond the clipping tolerance, is
    an error: every downstream quantity (mean field, prices, utilities)
    is polluted from that time slice on.
    """

    name = "density.health"

    def __init__(self, negativity_tol: float = 1e-12) -> None:
        self.negativity_tol = float(negativity_tol)

    def on_iteration(self, ctx: IterationContext) -> None:
        path = ctx.density_path
        if not bool(np.isfinite(path).all()):
            ctx.telemetry.diag(
                self.name,
                "error",
                message="density path contains NaN/Inf",
                iteration=ctx.iteration,
            )
            return
        min_value = float(path.min())
        if min_value < -self.negativity_tol:
            ctx.telemetry.diag(
                self.name,
                "error",
                value=min_value,
                threshold=-self.negativity_tol,
                message="density path went negative",
                iteration=ctx.iteration,
            )
        else:
            ctx.telemetry.diag(
                self.name, "info", value=min_value, iteration=ctx.iteration
            )


class HJBResidualProbe(_BaseProbe):
    """Discrete HJB residual of the settled backward sweep.

    Evaluates ``(V[t] − V[t+1])/Δt − L(V[t+1]; m(t))`` — how far the
    stored value path is from satisfying its own one-step explicit
    update — at ≤ :data:`MAX_RESIDUAL_SAMPLES` evenly-spaced reporting
    times, normalised by the operator magnitude so the number is
    scale-free.  Healthy values are O(Δt) (substepping + nonlinearity);
    a non-finite or exploding residual means the sweep diverged.
    """

    name = "hjb.residual"

    def __init__(self, warn_at: float = 10.0) -> None:
        self.warn_at = float(warn_at)

    def on_iteration(self, ctx: IterationContext) -> None:
        residual = ctx.hjb.residual_norm(
            ctx.solution.value, ctx.mean_field, max_samples=MAX_RESIDUAL_SAMPLES
        )
        if not np.isfinite(residual):
            severity = "error"
        elif residual > self.warn_at:
            severity = "warning"
        else:
            severity = "info"
        ctx.telemetry.diag(
            self.name,
            severity,
            value=residual,
            threshold=self.warn_at,
            message="HJB residual norm is large" if severity != "info" else "",
            iteration=ctx.iteration,
        )


class CFLMarginProbe(_BaseProbe):
    """CFL stability margin of both explicit schemes, once per solve.

    ``margin = dt_stable / dt_substep`` per solver; the substep count is
    chosen as ``ceil(dt / dt_stable)`` so the margin is ≥ 1 whenever the
    configuration came through the standard constructors.  A margin
    below 1 (hand-built grid, edited substep count) means the explicit
    update is operating outside its stability region — an error.
    """

    name = "cfl.margin"

    def __init__(self, warn_below: float = 1.0) -> None:
        self.warn_below = float(warn_below)

    def on_solve_start(self, ctx: SolveStartContext) -> None:
        dt = ctx.grid.dt
        for scheme, solver in (("fpk", ctx.fpk), ("hjb", ctx.hjb)):
            dt_stable = solver.stable_step()
            n_sub = solver.substeps_per_interval()
            margin = float(dt_stable / (dt / n_sub))
            if not np.isfinite(margin) or margin < self.warn_below:
                severity = "error"
                message = f"{scheme} substep exceeds the CFL-stable step"
            else:
                severity = "info"
                message = ""
            ctx.telemetry.diag(
                self.name,
                severity,
                value=margin,
                threshold=self.warn_below,
                message=message,
                scheme=scheme,
                substeps=n_sub,
                dt_stable=dt_stable,
            )


class ExploitabilityTrendProbe(_BaseProbe):
    """Best-response gap trend across iterations (Theorem 2 contraction).

    The max-norm policy change of Algorithm 2 is the computable proxy
    for exploitability: it bounds how much any single EDP could gain by
    deviating from the current candidate equilibrium.  Each iteration
    emits the gap and its ratio to the previous one; at solve end the
    probe fits the empirical contraction rate (geometric mean ratio
    over the trailing half of the history) and warns when the iteration
    is not contracting and did not converge.
    """

    name = "exploitability"

    def __init__(self, contraction_warn_at: float = 1.0) -> None:
        self.contraction_warn_at = float(contraction_warn_at)
        self._history: List[float] = []

    def on_iteration(self, ctx: IterationContext) -> None:
        gap = float(ctx.policy_change)
        ratio = (
            gap / self._history[-1]
            if self._history and self._history[-1] > 0
            else None
        )
        self._history.append(gap)
        fields: dict = {"iteration": ctx.iteration}
        if ratio is not None:
            fields["ratio"] = ratio
        ctx.telemetry.diag(
            self.name,
            "error" if not np.isfinite(gap) else "info",
            value=gap,
            message="best-response gap is non-finite"
            if not np.isfinite(gap)
            else "",
            **fields,
        )

    def on_solve_end(self, ctx: SolveEndContext) -> None:
        gaps = [g for g in self._history if np.isfinite(g) and g > 0]
        if len(gaps) < 3:
            return
        tail = gaps[len(gaps) // 2 :]
        ratios = [b / a for a, b in zip(tail[:-1], tail[1:]) if a > 0]
        if not ratios:
            return
        rate = float(np.exp(np.mean(np.log(ratios))))
        diverging = rate >= self.contraction_warn_at and not ctx.report.converged
        ctx.telemetry.diag(
            "exploitability.trend",
            "warning" if diverging else "info",
            value=rate,
            threshold=self.contraction_warn_at,
            message="best-response iteration is not contracting"
            if diverging
            else "",
            n_iterations=len(self._history),
            converged=bool(ctx.report.converged),
        )


class DampingStabilityProbe(_BaseProbe):
    """Flags a damped update that is amplifying instead of contracting.

    Three consecutive policy-change ratios above ``growth_at`` indicate
    the damping factor β is too aggressive for this configuration
    (Theorem 2 requires the damped map to contract); the probe warns
    once per solve and names the configured β so the fix is obvious.
    """

    name = "damping.stability"

    def __init__(self, growth_at: float = 1.05, consecutive: int = 3) -> None:
        self.growth_at = float(growth_at)
        self.consecutive = int(consecutive)
        self._previous: Optional[float] = None
        self._streak = 0
        self._reported = False

    def on_iteration(self, ctx: IterationContext) -> None:
        gap = float(ctx.policy_change)
        if self._previous is not None and self._previous > 0 and np.isfinite(gap):
            if gap / self._previous > self.growth_at:
                self._streak += 1
            else:
                self._streak = 0
        self._previous = gap
        if self._streak >= self.consecutive and not self._reported:
            self._reported = True
            ctx.telemetry.diag(
                self.name,
                "warning",
                value=float(self._streak),
                threshold=float(self.consecutive),
                message=(
                    "policy change grew for "
                    f"{self._streak} consecutive iterations; lower the "
                    f"damping factor (currently {ctx.config.damping})"
                ),
                iteration=ctx.iteration,
                damping=float(ctx.config.damping),
            )


def default_probes() -> List[DiagnosticsProbe]:
    """The standard probe set installed by the best-response iterator."""
    return [
        CFLMarginProbe(),
        MassConservationProbe(),
        DensityHealthProbe(),
        HJBResidualProbe(),
        ExploitabilityTrendProbe(),
        DampingStabilityProbe(),
    ]


class SolveDiagnostics:
    """Drives a probe set through one solve's lifecycle.

    Constructed per :meth:`BestResponseIterator.solve` call (probes are
    stateful across iterations), and only when telemetry is enabled —
    the iterator guards every hook with ``tele.enabled`` so disabled
    runs never touch this class.

    :class:`~repro.obs.telemetry.StrictNumericsError` raised by a probe
    (strict mode) propagates; any *other* probe failure is demoted to a
    ``diag.probe_failure`` warning — a broken watchdog must not take
    down a healthy solve.
    """

    def __init__(
        self,
        telemetry: SolverTelemetry,
        probes: Optional[Sequence[DiagnosticsProbe]] = None,
    ) -> None:
        self.telemetry = telemetry
        self.probes: List[DiagnosticsProbe] = (
            list(probes) if probes is not None else default_probes()
        )

    def _dispatch(self, hook: str, ctx: Any) -> None:
        from repro.obs.telemetry import StrictNumericsError

        for probe in self.probes:
            try:
                getattr(probe, hook)(ctx)
            except StrictNumericsError:
                raise
            except Exception as err:  # pragma: no cover - defensive
                self.telemetry.diag(
                    "probe_failure",
                    "warning",
                    message=f"probe {probe.name!r} raised {type(err).__name__}: {err}",
                    probe=probe.name,
                    hook=hook,
                )

    def solve_start(self, ctx: SolveStartContext) -> None:
        self._dispatch("on_solve_start", ctx)

    def iteration(self, ctx: IterationContext) -> None:
        self._dispatch("on_iteration", ctx)

    def solve_end(self, ctx: SolveEndContext) -> None:
        self._dispatch("on_solve_end", ctx)
