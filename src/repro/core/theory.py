"""Numerical verification of the paper's theoretical conditions.

Section IV-D proves three results:

* **Lemma 1** — the HJB equation has a unique value function, provided
  (i) the control space is a compact subset of R and (ii) the state
  drift and the utility are bounded and Lipschitz continuous.
* **Lemma 2** — the FPK equation has a unique weak solution, provided
  the parabolic coefficients satisfy ``a_ij, b_i, c ∈ L∞``, ``d ∈ L²``
  and ``a_ij = a_ji`` (Eq. (25)).
* **Theorem 2** — the coupled fixed-point iteration is a contraction
  mapping with a unique fixed point (the MFG Nash equilibrium).

The lemmas' hypotheses are *checkable numbers* for a concrete
configuration: this module evaluates them on the state grid and
returns structured reports, so a user can confirm the equilibrium
machinery is operating inside the regime the proofs cover.  The
test-suite and the convergence diagnostics assert these reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.convergence import fixed_point_rate
from repro.core.best_response import build_grid
from repro.core.equilibrium import EquilibriumResult
from repro.core.grid import StateGrid
from repro.core.mean_field import MeanFieldEstimator, MeanFieldPath
from repro.core.operators import central_gradient
from repro.core.parameters import MFGCPConfig


@dataclass(frozen=True)
class Lemma1Report:
    """Boundedness / Lipschitz diagnostics for the HJB hypotheses.

    Attributes
    ----------
    control_space_compact:
        Condition (i): always true — the caching rate lives in [0, 1].
    drift_bound:
        ``sup |DF(t, S, x)|`` over the grid and feasible controls.
    drift_lipschitz:
        The Lipschitz constant of the drift; Eq. (22) shows it is
        ``varsigma_h / 2`` exactly (the q drift does not depend on the
        state).
    utility_bound:
        ``sup |U|`` over the grid at feasible controls.
    utility_gradient_bound:
        ``sup |d_q U|`` over the grid (Eq. (24) is the analytic bound;
        this is its numerical evaluation).
    satisfied:
        All quantities finite — the hypotheses of Lemma 1 hold.
    """

    control_space_compact: bool
    drift_bound: float
    drift_lipschitz: float
    utility_bound: float
    utility_gradient_bound: float

    @property
    def satisfied(self) -> bool:
        values = (
            self.drift_bound,
            self.drift_lipschitz,
            self.utility_bound,
            self.utility_gradient_bound,
        )
        return self.control_space_compact and all(np.isfinite(values))


@dataclass(frozen=True)
class Lemma2Report:
    """Parabolic-coefficient diagnostics for the FPK hypotheses.

    Eq. (25): the second-order coefficient is
    ``a_11 = rho_h^2 / 2 + rho_q^2 / 2`` with all off-diagonal terms
    zero, ``c = d = 0``, and the first-order coefficients are the
    (bounded, by Lemma 1) drifts.
    """

    a_diagonal: float
    a_symmetric: bool
    a_inf_norm: float
    b_inf_norm: float
    c_inf_norm: float
    d_l2_norm: float

    @property
    def satisfied(self) -> bool:
        return (
            self.a_symmetric
            and np.isfinite(self.a_inf_norm)
            and np.isfinite(self.b_inf_norm)
            and self.c_inf_norm == 0.0
            and self.d_l2_norm == 0.0
        )


@dataclass(frozen=True)
class Theorem2Report:
    """Contraction diagnostics for the coupled fixed-point iteration."""

    converged: bool
    n_iterations: int
    empirical_contraction_rate: float
    final_policy_change: float

    @property
    def contraction_observed(self) -> bool:
        """Whether the iteration behaved as a contraction (rate < 1)."""
        return self.converged and (
            np.isnan(self.empirical_contraction_rate)
            or self.empirical_contraction_rate < 1.0
        )


def _grid_and_mean_field(
    config: MFGCPConfig,
    grid: Optional[StateGrid],
    mean_field: Optional[MeanFieldPath],
) -> Tuple[StateGrid, MeanFieldPath]:
    grid = grid if grid is not None else build_grid(config)
    if mean_field is None:
        mean_field = MeanFieldEstimator(config, grid).constant_guess()
    return grid, mean_field


def verify_lemma1(
    config: MFGCPConfig,
    grid: Optional[StateGrid] = None,
    mean_field: Optional[MeanFieldPath] = None,
    n_controls: int = 5,
) -> Lemma1Report:
    """Evaluate the Lemma 1 hypotheses on a state grid.

    Parameters
    ----------
    mean_field:
        The market paths the utility is evaluated against; defaults to
        the bootstrap estimate (any bounded path gives the same
        conclusion — the bounds are uniform).
    n_controls:
        Number of feasible control levels sampled in the suprema.
    """
    if n_controls < 2:
        raise ValueError(f"need at least 2 control samples, got {n_controls}")
    grid, mean_field = _grid_and_mean_field(config, grid, mean_field)

    # Drift bounds: DF1 over the h grid, DF2 over feasible controls.
    ch = config.channel
    df1 = 0.5 * ch.reversion * np.abs(ch.mean - grid.h)
    controls = np.linspace(0.0, 1.0, n_controls)
    df2 = np.abs(config.drift_rate(controls))
    drift_bound = float(np.sqrt(df1.max() ** 2 + df2.max() ** 2))
    drift_lipschitz = 0.5 * ch.reversion  # Eq. (22)

    # Utility bound and gradient bound over grid x controls x time.
    utility = config.utility_model()
    rate_of_h = np.asarray(ch.rate_of_fading(grid.h), dtype=float)[:, None]
    q_mesh = grid.q_mesh()
    u_max = 0.0
    du_max = 0.0
    time_samples = (0, grid.n_t // 2, grid.n_t)
    for ti in time_samples:
        ctx = mean_field.context(ti)
        for x in controls:
            u = utility.total(x, q_mesh, rate_of_h, ctx)
            u_max = max(u_max, float(np.abs(u).max()))
            du = central_gradient(np.asarray(u, dtype=float), grid.dq, axis=1)
            du_max = max(du_max, float(np.abs(du).max()))

    return Lemma1Report(
        control_space_compact=True,
        drift_bound=drift_bound,
        drift_lipschitz=drift_lipschitz,
        utility_bound=u_max,
        utility_gradient_bound=du_max,
    )


def verify_lemma2(
    config: MFGCPConfig,
    grid: Optional[StateGrid] = None,
) -> Lemma2Report:
    """Evaluate the Eq. (25) parabolic-coefficient conditions."""
    grid = grid if grid is not None else build_grid(config)
    a_diag = 0.5 * config.channel.volatility**2 + 0.5 * config.caching.noise**2
    lemma1 = verify_lemma1(config, grid)
    return Lemma2Report(
        a_diagonal=float(a_diag),
        a_symmetric=True,  # the off-diagonal terms are identically zero
        a_inf_norm=float(a_diag),
        b_inf_norm=lemma1.drift_bound,
        c_inf_norm=0.0,
        d_l2_norm=0.0,
    )


def verify_theorem2(result: EquilibriumResult) -> Theorem2Report:
    """Contraction diagnostics for a solved equilibrium.

    Theorem 2 argues each Alg. 2 iteration is a contraction mapping;
    the empirical geometric rate of the recorded policy changes is the
    numerical counterpart.
    """
    report = result.report
    return Theorem2Report(
        converged=report.converged,
        n_iterations=report.n_iterations,
        empirical_contraction_rate=fixed_point_rate(report),
        final_policy_change=report.final_policy_change,
    )
