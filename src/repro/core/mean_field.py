"""Mean-field estimator (Section IV-B, module 1).

Given the population density path ``lambda(t, h, q)`` and the current
policy table, the estimator produces every market quantity the generic
player needs but cannot observe directly:

* the mean-field trading price ``p_k(t)`` of Eq. (17),
* the average peer cache state ``q_bar_-(t)`` of Eq. (18),
* the average transfer size ``Delta_q_bar(t)`` and the per-sharer
  average sharing benefit ``Phi^2_bar(t)``,
* the sharer / case-3 population counts ``M_k(t)`` and ``M'_k(t)``.

This replaces all EDP-to-EDP communication: the generic player solves
its HJB against these paths alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.grid import StateGrid
from repro.core.parameters import MFGCPConfig
from repro.economics.sharing import mean_field_sharing_benefit
from repro.economics.utility import MarketContext


@dataclass(frozen=True)
class MeanFieldPath:
    """Time paths of every mean-field market quantity.

    All arrays have shape ``(n_t + 1,)`` on the reporting time grid.
    """

    grid: StateGrid
    n_requests: np.ndarray
    mean_control: np.ndarray
    price: np.ndarray
    mean_q: np.ndarray
    mean_transfer: np.ndarray
    sharing_benefit: np.ndarray
    qualified_fraction: np.ndarray
    case3_fraction: np.ndarray

    def __post_init__(self) -> None:
        n = self.grid.n_t + 1
        requests = np.asarray(self.n_requests, dtype=float)
        if requests.ndim == 0:
            requests = np.full(n, float(requests))
        object.__setattr__(self, "n_requests", requests)
        for name in (
            "n_requests",
            "mean_control",
            "price",
            "mean_q",
            "mean_transfer",
            "sharing_benefit",
            "qualified_fraction",
            "case3_fraction",
        ):
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
            object.__setattr__(self, name, arr)

    def context(self, time_index: int) -> MarketContext:
        """The market context the generic player sees at a time index."""
        if not 0 <= time_index <= self.grid.n_t:
            raise IndexError(f"time index {time_index} out of range [0, {self.grid.n_t}]")
        return MarketContext(
            n_requests=float(self.n_requests[time_index]),
            price=float(self.price[time_index]),
            q_other=float(self.mean_q[time_index]),
            sharing_benefit=float(self.sharing_benefit[time_index]),
        )

    def distance(self, other: "MeanFieldPath") -> float:
        """Sup-norm distance between two estimates (fixed-point metric)."""
        return float(
            max(
                np.max(np.abs(self.price - other.price)),
                np.max(np.abs(self.mean_q - other.mean_q)),
                np.max(np.abs(self.sharing_benefit - other.sharing_benefit)),
            )
        )


@dataclass
class MeanFieldEstimator:
    """Computes :class:`MeanFieldPath` from density and policy paths."""

    config: MFGCPConfig
    grid: StateGrid

    def estimate(
        self,
        density_path: np.ndarray,
        policy_table: np.ndarray,
        n_requests: Optional[float] = None,
    ) -> MeanFieldPath:
        """One full estimator pass (Alg. 2, line 9).

        Parameters
        ----------
        density_path:
            ``lambda(t, h, q)``, shape ``grid.path_shape``, each time
            sheet a unit-mass density.
        policy_table:
            ``x*(t, h, q)``, same shape.
        n_requests:
            Expected request-rate path (scalar or per reporting time);
            defaults to the configured ``n_requests_at`` law.
        """
        density_path = np.asarray(density_path, dtype=float)
        policy_table = np.asarray(policy_table, dtype=float)
        expected = self.grid.path_shape
        if density_path.shape != expected:
            raise ValueError(
                f"density path shape {density_path.shape} != grid {expected}"
            )
        if policy_table.shape != expected:
            raise ValueError(
                f"policy table shape {policy_table.shape} != grid {expected}"
            )

        cfg = self.config
        weights = self.grid.cell_weights()
        q_mesh = self.grid.q_mesh()
        threshold = cfg.alpha * cfg.content_size
        low_mask = (q_mesh <= threshold).astype(float)

        # Population-average control, Eq. (17)'s integral.
        mean_control = np.einsum("thq,thq,hq->t", density_path, policy_table, weights)
        price = cfg.pricing_model().mean_field(cfg.content_size, mean_control)

        # Average peer cache state, Eq. (18).
        mean_q = np.einsum("thq,hq,hq->t", density_path, q_mesh, weights)

        # Partial expectations below/above the alpha*Q threshold.
        partial_low = np.einsum(
            "thq,hq,hq,hq->t", density_path, q_mesh, low_mask, weights
        )
        partial_high = np.einsum(
            "thq,hq,hq,hq->t", density_path, q_mesh, 1.0 - low_mask, weights
        )
        mean_transfer = np.abs(partial_low - partial_high)

        # Sharer / case-3 fractions: a qualified sharer has q <= alpha Q;
        # a case-3 event needs both the EDP and its randomly assigned
        # peer above the threshold.
        mass_low = np.einsum("thq,hq,hq->t", density_path, low_mask, weights)
        mass_low = np.clip(mass_low, 0.0, 1.0)
        qualified_fraction = mass_low
        case3_fraction = (1.0 - mass_low) ** 2

        if cfg.include_sharing:
            benefit = mean_field_sharing_benefit(
                cfg.sharing_price,
                mean_transfer,
                cfg.n_edps,
                case3_fraction * cfg.n_edps,
                qualified_fraction * cfg.n_edps,
            )
        else:
            benefit = np.zeros_like(mean_q)

        if n_requests is None:
            requests = cfg.n_requests_at(self.grid.t)
        else:
            requests = np.asarray(n_requests, dtype=float)
        return MeanFieldPath(
            grid=self.grid,
            n_requests=requests,
            mean_control=mean_control,
            price=np.asarray(price, dtype=float),
            mean_q=mean_q,
            mean_transfer=mean_transfer,
            sharing_benefit=np.asarray(benefit, dtype=float),
            qualified_fraction=qualified_fraction,
            case3_fraction=case3_fraction,
        )

    def constant_guess(self, mean_control: float = 0.5) -> MeanFieldPath:
        """A flat bootstrap estimate for the first Alg. 2 iteration.

        Uses the initial density's mean cache state and a constant
        population control; the first FPK pass replaces it immediately.
        """
        cfg = self.config
        n = self.grid.n_t + 1
        mean_q0, _ = cfg.initial_density_moments()
        control = np.full(n, float(np.clip(mean_control, 0.0, 1.0)))
        price = cfg.pricing_model().mean_field(cfg.content_size, control)
        zeros = np.zeros(n)
        return MeanFieldPath(
            grid=self.grid,
            n_requests=cfg.n_requests_at(self.grid.t),
            mean_control=control,
            price=np.asarray(price, dtype=float),
            mean_q=np.full(n, mean_q0),
            mean_transfer=zeros.copy(),
            sharing_benefit=zeros.copy(),
            qualified_fraction=zeros.copy(),
            case3_fraction=zeros.copy(),
        )
