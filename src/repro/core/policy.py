"""Optimal caching strategy, Theorem 1 / Eq. (21).

The Hamiltonian of Eq. (20) is strictly concave in the control ``x``
(the quadratic placement cost dominates), so the maximiser has the
closed form

    x*(t) = clip( -( w4 / (2 w5)
                     + eta2 Q_k / (2 H_c w5)
                     + Q_k w1 d_q V(t) / (2 w5) ), 0, 1 ).

:func:`optimal_control` evaluates the formula on value-gradient grids;
:class:`CachingPolicy` wraps the solved space-time policy table with
interpolation so the finite-population simulator can query
``x*(t, h, q)`` at arbitrary states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.grid import StateGrid

ArrayLike = Union[float, np.ndarray]


def optimal_control(
    dq_value: ArrayLike,
    content_size: float,
    w1: float,
    w4: float,
    w5: float,
    eta2: float,
    backhaul_rate: float,
) -> np.ndarray:
    """Eq. (21): the closed-form optimal caching rate.

    Parameters
    ----------
    dq_value:
        Value-function gradient ``d_q V(t)`` (any shape).
    content_size, w1, w4, w5, eta2, backhaul_rate:
        The model constants entering the formula; ``w5 > 0`` is required
        for the Hamiltonian to be strictly concave (Thm. 1's proof).
    """
    if w5 <= 0:
        raise ValueError(f"w5 must be positive for a concave Hamiltonian, got {w5}")
    if backhaul_rate <= 0:
        raise ValueError(f"backhaul_rate must be positive, got {backhaul_rate}")
    if content_size <= 0:
        raise ValueError(f"content_size must be positive, got {content_size}")
    dq_value = np.asarray(dq_value, dtype=float)
    raw = -(
        w4 / (2.0 * w5)
        + eta2 * content_size / (2.0 * backhaul_rate * w5)
        + content_size * w1 * dq_value / (2.0 * w5)
    )
    return np.clip(raw, 0.0, 1.0)


@dataclass(frozen=True)
class CachingPolicy:
    """A solved feedback policy ``x*(t, h, q)`` on a state grid.

    Attributes
    ----------
    grid:
        The grid the table was solved on.
    table:
        Policy values of shape ``grid.path_shape``.
    """

    grid: StateGrid
    table: np.ndarray

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=float)
        if table.shape != self.grid.path_shape:
            raise ValueError(
                f"policy table shape {table.shape} does not match "
                f"grid path shape {self.grid.path_shape}"
            )
        if np.any(table < -1e-9) or np.any(table > 1.0 + 1e-9):
            raise ValueError("policy values must lie in [0, 1]")
        object.__setattr__(self, "table", np.clip(table, 0.0, 1.0))

    def __call__(self, t: float, h: float, q: float) -> float:
        """Policy lookup: nearest in time, bilinear in ``(h, q)``."""
        ti = self.grid.nearest_time_index(t)
        ih, iq, fh, fq = self.grid.interp_weights(h, q)
        sheet = self.table[ti]
        v00 = sheet[ih, iq]
        v10 = sheet[min(ih + 1, self.grid.n_h - 1), iq]
        v01 = sheet[ih, min(iq + 1, self.grid.n_q - 1)]
        v11 = sheet[min(ih + 1, self.grid.n_h - 1), min(iq + 1, self.grid.n_q - 1)]
        top = v00 * (1.0 - fh) + v10 * fh
        bot = v01 * (1.0 - fh) + v11 * fh
        return float(top * (1.0 - fq) + bot * fq)

    def batch(self, t: float, h: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Vectorised lookup for a population of EDP states at time ``t``."""
        h = np.asarray(h, dtype=float)
        q = np.asarray(q, dtype=float)
        if h.shape != q.shape:
            raise ValueError(f"h shape {h.shape} != q shape {q.shape}")
        ti = self.grid.nearest_time_index(t)
        sheet = self.table[ti]
        fh = np.clip((h - self.grid.h[0]) / self.grid.dh, 0.0, self.grid.n_h - 1 - 1e-12)
        fq = np.clip((q - self.grid.q[0]) / self.grid.dq, 0.0, self.grid.n_q - 1 - 1e-12)
        ih = fh.astype(int)
        iq = fq.astype(int)
        rh = fh - ih
        rq = fq - iq
        ih1 = np.minimum(ih + 1, self.grid.n_h - 1)
        iq1 = np.minimum(iq + 1, self.grid.n_q - 1)
        top = sheet[ih, iq] * (1.0 - rh) + sheet[ih1, iq] * rh
        bot = sheet[ih, iq1] * (1.0 - rh) + sheet[ih1, iq1] * rh
        return top * (1.0 - rq) + bot * rq

    def at_time(self, t: float) -> np.ndarray:
        """The policy sheet for the reporting time nearest to ``t``."""
        return self.table[self.grid.nearest_time_index(t)].copy()

    def q_profile(self, t: float, h: float) -> np.ndarray:
        """``x*(t, h, .)`` as a function of ``q`` (the Fig. 5 slice)."""
        ih, _ = self.grid.locate(h, self.grid.q[0])
        return self.table[self.grid.nearest_time_index(t), ih, :].copy()

    def time_profile(self, h: float, q: float) -> np.ndarray:
        """``x*(., h, q)`` over all reporting times (Fig. 5's other axis)."""
        ih, iq = self.grid.locate(h, q)
        return self.table[:, ih, iq].copy()

    def mean_against(self, density_path: np.ndarray) -> np.ndarray:
        """Population-average control ``E_lambda[x*]`` per time point.

        This is the integral in Eq. (17) that sets the mean-field price.
        """
        density_path = np.asarray(density_path, dtype=float)
        if density_path.shape != self.table.shape:
            raise ValueError(
                f"density path shape {density_path.shape} does not match "
                f"policy table shape {self.table.shape}"
            )
        weights = self.grid.cell_weights()
        return np.einsum("thq,thq,hq->t", density_path, self.table, weights)
