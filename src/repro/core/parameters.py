"""Configuration for the MFG-CP framework.

Two parameter records live here:

* :class:`PaperParameters` — the raw values printed in Section V-A of
  the paper, kept verbatim for reference.  The paper mixes byte-scale
  and MB-scale constants (``w5 = 0.65e8`` pairs with byte-valued cache
  states while ``Q_k`` is quoted in MB), so the raw values cannot be
  used together in a single unit system.
* :class:`MFGCPConfig` — the working configuration in a consistent
  MB / money / unit-time system, with
  :meth:`MFGCPConfig.paper_default` producing the calibrated
  equivalents.  The calibration preserves the dimensionless ratios that
  drive the equilibrium — in particular ``Q_k w1 / (2 w5)`` (the slope
  of the optimal control in the value gradient, Eq. (21)) and
  ``eta1 Q_k / p_hat`` (the relative price depression at full supply,
  Eq. (17)) — so every qualitative shape of Figs. 3-14 is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

import numpy as np

from repro.economics.cases import CaseProbabilities
from repro.economics.pricing import PricingModel
from repro.economics.utility import EconomicParameters, UtilityModel
from repro.network.rate import RateModel
from repro.sde.caching_state import CachingDrift
from repro.sde.ornstein_uhlenbeck import OrnsteinUhlenbeckProcess


@dataclass(frozen=True)
class PaperParameters:
    """Verbatim Section V-A values (for reference and documentation)."""

    n_contents: int = 20
    n_edps: int = 300
    bandwidth_hz: float = 10e6
    path_loss_exponent: float = 3.0
    w1: float = 1.0
    w2: float = 1.0 / 20.0
    w3: float = 10.0
    w4: float = 2.5e3
    w5: float = 0.65e8
    xi: float = 0.1
    rho_q: float = 0.1
    content_size_mb: float = 100.0
    p_hat_per_byte: float = 5e-7
    alpha: float = 0.2
    horizon: float = 1.0
    eta1_range: Tuple[float, float] = (0.1, 0.4)
    transmission_power_w: float = 1.0
    initial_mean_range: Tuple[float, float] = (0.5, 0.8)
    initial_std_choices: Tuple[float, float] = (0.05, 0.1)
    fading_range: Tuple[float, float] = (1e-5, 10e-5)


@dataclass(frozen=True)
class ChannelParameters:
    """Eq. (1) OU parameters plus the radio constants feeding Eq. (2)."""

    reversion: float = 4.0          # varsigma_h
    mean: float = 5.0               # upsilon_h
    volatility: float = 0.5         # rho_h
    bandwidth: float = 14.0         # B, in MB per unit time after conversion
    noise_power: float = 2e-5       # rho^2
    transmission_power: float = 1.0  # G
    path_loss_exponent: float = 3.0  # tau
    mean_distance: float = 50.0     # representative EDP-requester distance (m)
    mean_interference: float = 0.0  # mean-field interference at the requester

    def __post_init__(self) -> None:
        if self.reversion <= 0 or self.volatility < 0:
            raise ValueError("reversion must be > 0 and volatility >= 0")
        if self.bandwidth <= 0 or self.noise_power <= 0:
            raise ValueError("bandwidth and noise_power must be positive")
        if self.mean_distance <= 0:
            raise ValueError(f"mean_distance must be positive, got {self.mean_distance}")

    def process(self, rng: Optional[np.random.Generator] = None) -> OrnsteinUhlenbeckProcess:
        """The OU fading process of Eq. (1)."""
        kwargs = {} if rng is None else {"rng": rng}
        return OrnsteinUhlenbeckProcess(
            reversion=self.reversion, mean=self.mean, volatility=self.volatility, **kwargs
        )

    def rate_model(self) -> RateModel:
        """Eq. (2) bound to the radio constants."""
        return RateModel(bandwidth=self.bandwidth, noise_power=self.noise_power)

    def rate_of_fading(self, fading: np.ndarray) -> np.ndarray:
        """Wireless rate as a function of the fading coefficient only.

        This is the mean-field reduction used on the state grid: the
        representative link distance and mean interference stand in for
        the per-link geometry.
        """
        return self.rate_model().effective_rate_of_fading(
            fading,
            self.mean_distance,
            self.transmission_power,
            self.path_loss_exponent,
            self.mean_interference,
        )


@dataclass(frozen=True)
class CachingParameters:
    """Eq. (4) drift/diffusion parameters for the caching state."""

    w1: float = 1.0
    w2: float = 0.05
    w3: float = 10.0
    xi: float = 0.1
    noise: float = 3.0              # rho_q, MB-scale diffusion

    def drift(self) -> CachingDrift:
        """The shared drift object (validates the coefficients)."""
        return CachingDrift(w1=self.w1, w2=self.w2, w3=self.w3, xi=self.xi)


@dataclass(frozen=True)
class MFGCPConfig:
    """Full working configuration of the MFG-CP framework (MB units).

    Attributes
    ----------
    horizon:
        Finite time horizon ``T`` of one optimization epoch.
    n_time_steps:
        Reporting time resolution; solvers sub-step internally when the
        CFL condition demands it.
    content_size:
        ``Q_k`` in MB.
    n_h, n_q:
        State-grid resolution in the fading and cache dimensions.
    channel, caching:
        SDE parameter bundles.
    w4, w5, eta2, backhaul_rate:
        Cost parameters of Eqs. (8)-(9); ``backhaul_rate`` is ``H_c``.
    p_hat, eta1, sharing_price:
        Pricing parameters of Eqs. (5) and the ``p_bar_k`` sharing
        price.
    alpha, case_smoothing:
        Case-probability parameters (Section III-A).
    n_edps:
        Population size ``M``.
    n_requests:
        Expected requests ``|I_k(t)|`` per EDP per unit time for the
        solved content at the start of the epoch.
    sharer_capacity:
        How many case-2 buyers one qualified sharer can serve per
        decision step in the finite-population game (an edge link
        bandwidth limit; buyers beyond the population's total sharing
        capacity fall back to the cloud, case 3).
    demand_decay:
        Exponential saturation rate of requester demand within the
        epoch: ``|I_k(t)| = n_requests * exp(-demand_decay * t)``.
        Zero (default) keeps demand constant; the Fig. 11/12
        experiments use a positive rate to model requesters leaving
        the market once served — the effect the paper invokes to
        explain the trading-income decline ("many EDPs have cached
        enough contents and the trading processes will be reduced").
    popularity, timeliness:
        ``Pi_k`` and ``L_k`` held fixed within one epoch (the paper
        assumes demand changes slowly relative to the epoch).
    initial_mean_fraction, initial_std_fraction:
        The initial density ``lambda(0)`` over ``q`` is a truncated
        normal with this mean/std expressed as fractions of ``Q_k``
        (paper default N(0.7, 0.1^2)).
    include_sharing:
        Disable to obtain the paper's "MFG" baseline.
    max_iterations, tolerance, damping:
        Alg. 2 fixed-point controls (``psi_th``, the policy-change
        stopping threshold, and the relaxation factor).
    """

    horizon: float = 1.0
    n_time_steps: int = 100
    content_size: float = 100.0
    n_h: int = 15
    n_q: int = 45
    channel: ChannelParameters = field(default_factory=ChannelParameters)
    caching: CachingParameters = field(default_factory=CachingParameters)
    w4: float = 2.0
    w5: float = 90.0
    eta2: float = 10.0
    backhaul_rate: float = 20.0
    p_hat: float = 0.8
    eta1: float = 2e-3
    sharing_price: float = 0.3
    alpha: float = 0.2
    case_smoothing: float = 0.1
    n_edps: int = 300
    n_requests: float = 5.0
    sharer_capacity: int = 2
    demand_decay: float = 0.0
    popularity: float = 0.3
    timeliness: float = 2.0
    initial_mean_fraction: float = 0.7
    initial_std_fraction: float = 0.1
    include_sharing: bool = True
    include_trading: bool = True
    max_iterations: int = 40
    tolerance: float = 1e-3
    damping: float = 0.5

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.n_time_steps < 1:
            raise ValueError(f"n_time_steps must be positive, got {self.n_time_steps}")
        if self.content_size <= 0:
            raise ValueError(f"content_size must be positive, got {self.content_size}")
        if self.n_h < 3 or self.n_q < 3:
            raise ValueError("grid needs at least 3 points per dimension")
        if self.n_edps < 1:
            raise ValueError(f"n_edps must be positive, got {self.n_edps}")
        if not 0.0 <= self.popularity <= 1.0:
            raise ValueError(f"popularity must lie in [0, 1], got {self.popularity}")
        if not 0.0 < self.initial_mean_fraction < 1.0:
            raise ValueError("initial_mean_fraction must lie in (0, 1)")
        if self.initial_std_fraction <= 0:
            raise ValueError("initial_std_fraction must be positive")
        if self.sharer_capacity < 1:
            raise ValueError(f"sharer_capacity must be positive, got {self.sharer_capacity}")
        if self.demand_decay < 0:
            raise ValueError(f"demand_decay must be non-negative, got {self.demand_decay}")
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {self.max_iterations}")
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {self.tolerance}")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError(f"damping must lie in (0, 1], got {self.damping}")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_default(cls) -> "MFGCPConfig":
        """The MB-calibrated equivalent of the Section V-A settings."""
        return cls()

    @classmethod
    def fast(cls) -> "MFGCPConfig":
        """A coarse, quick-solving configuration for tests and demos."""
        return cls(n_time_steps=40, n_h=9, n_q=25, max_iterations=25)

    def without_sharing(self) -> "MFGCPConfig":
        """The paper's MFG baseline: sharing economics disabled."""
        return replace(self, include_sharing=False)

    def with_content_size(self, content_size: float) -> "MFGCPConfig":
        """A copy targeting a different ``Q_k`` (the Fig. 6/7 sweep)."""
        return replace(self, content_size=content_size)

    # ------------------------------------------------------------------
    # Derived model objects
    # ------------------------------------------------------------------
    def pricing_model(self) -> PricingModel:
        """Eq. (5)/(17) pricing bound to this configuration."""
        return PricingModel(
            p_hat=self.p_hat, eta1=self.eta1, sharing_price=self.sharing_price
        )

    def case_probabilities(self) -> CaseProbabilities:
        """The smoothed case probabilities of Section III-A."""
        return CaseProbabilities(alpha=self.alpha, smoothing=self.case_smoothing)

    def economic_parameters(self) -> EconomicParameters:
        """The cost/price bundle consumed by the utility model."""
        return EconomicParameters(
            w4=self.w4,
            w5=self.w5,
            eta2=self.eta2,
            backhaul_rate=self.backhaul_rate,
            cases=self.case_probabilities(),
            pricing=self.pricing_model(),
            include_sharing=self.include_sharing,
            include_trading=self.include_trading,
        )

    def utility_model(self) -> UtilityModel:
        """Eq. (10) bound to this configuration's content."""
        return UtilityModel(
            params=self.economic_parameters(), content_size=self.content_size
        )

    def caching_drift(self) -> CachingDrift:
        """The Eq. (4) drift coefficients."""
        return self.caching.drift()

    def ou_process(self, rng: Optional[np.random.Generator] = None) -> OrnsteinUhlenbeckProcess:
        """The Eq. (1) fading process."""
        return self.channel.process(rng)

    def drift_rate(self, x: np.ndarray) -> np.ndarray:
        """Eq. (4) drift of ``q`` in MB per unit time under control ``x``.

        Uses the epoch-frozen popularity and timeliness of this config.
        """
        return self.content_size * self.caching_drift().rate(
            x, self.popularity, self.timeliness
        )

    def initial_density_moments(self) -> Tuple[float, float]:
        """Mean and std (MB) of the initial cache-space density."""
        return (
            self.initial_mean_fraction * self.content_size,
            self.initial_std_fraction * self.content_size,
        )

    def n_requests_at(self, t: Union[float, np.ndarray]) -> np.ndarray:
        """Expected request rate ``|I_k(t)|`` at time ``t``."""
        return self.n_requests * np.exp(-self.demand_decay * np.asarray(t, dtype=float))

    def time_axis(self) -> np.ndarray:
        """The reporting time grid ``0 = t_0 < ... < t_N = T``."""
        return np.linspace(0.0, self.horizon, self.n_time_steps + 1)
