"""Backward HJB solver for the generic player, Eq. (20).

The value function ``V(t, h, q)`` of the generic EDP satisfies

    max_x [ (1/2) varsigma_h (upsilon_h - h) d_h V
            + (1/2) rho_h^2 d_hh V
            + Q_k ( -w1 x - w2 Pi + w3 xi^L ) d_q V
            + (1/2) rho_q^2 d_qq V
            + U(t, x, S, lambda) ] + d_t V = 0,

with terminal condition ``V(T) = 0`` (no salvage value after the
epoch).

Discretisation.  The control enters both the ``q`` drift and the
running utility, so a naive central-difference control extraction is
nonlinearly unstable (checkerboard modes in ``d_q V`` flip the
bang-bang control and amplify).  We therefore use a **monotone Godunov
scheme** for the controlled ``q`` advection: writing the drift as
``b_q(x) = Q_k (c - w1 x)`` with ``c = -w2 Pi + w3 xi^L`` and the
control-coupled utility as ``-a x - w5 x^2``
(``a = w4 + eta2 Q_k / H_c``), the Hamiltonian is maximised separately
on the two upwind branches:

* drift >= 0 (``x <= c / w1``): forward difference ``D+ V`` (the
  backward-in-time equation reads along forward characteristics),
* drift <= 0 (``x >= c / w1``): backward difference ``D- V``,

each a clipped concave quadratic with a closed-form maximiser (the
Eq. (21) formula restricted to the branch).  The node takes the larger
branch value and its argmax as the policy.  The uncontrolled ``h``
advection uses plain sign-upwinding; diffusion is central; time
stepping is explicit Euler with CFL sub-division.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from scipy.special import expit

from repro.core.grid import BatchGrid, StateGrid
from repro.core.mean_field import MeanFieldPath
from repro.core.operators import (
    batched_second_derivative,
    batched_upwind_gradient,
    central_gradient,
    second_derivative,
    stable_time_step,
    upwind_gradient,
)
from repro.core.parameters import MFGCPConfig
from repro.core.policy import CachingPolicy, optimal_control


@dataclass(frozen=True)
class HJBSolution:
    """Output of one backward HJB sweep.

    Attributes
    ----------
    grid:
        The state grid.
    value:
        ``V(t, h, q)``, shape ``grid.path_shape``.
    policy:
        The maximising control table ``x*(t, h, q)`` extracted during
        the sweep, wrapped for interpolation.
    """

    grid: StateGrid
    value: np.ndarray
    policy: CachingPolicy

    def value_gradient_q(self, time_index: int) -> np.ndarray:
        """``d_q V`` at a reporting time (central differences)."""
        return central_gradient(self.value[time_index], self.grid.dq, axis=1)

    def initial_value(self, h: float, q: float) -> float:
        """``V(0, h, q)`` — the accumulated optimal utility from state."""
        ih, iq = self.grid.locate(h, q)
        return float(self.value[0, ih, iq])


class HJBSolver:
    """Monotone (Godunov) finite-difference solver for Eq. (20)."""

    def __init__(self, config: MFGCPConfig, grid: StateGrid) -> None:
        self.config = config
        self.grid = grid
        self._utility = config.utility_model()
        # Fading drift b_h = (1/2) varsigma_h (upsilon_h - h): constant
        # over time, broadcast over the spatial shape.
        ch = config.channel
        self._drift_h = 0.5 * ch.reversion * (ch.mean - grid.h)[:, None]
        self._rate_of_h = np.asarray(
            ch.rate_of_fading(grid.h), dtype=float
        )[:, None]
        if np.any(self._rate_of_h <= 0):
            raise ValueError(
                "wireless rate non-positive on the grid; widen h bounds or "
                "adjust the radio parameters"
            )
        self._diff_h = 0.5 * ch.volatility**2
        self._diff_q = 0.5 * config.caching.noise**2

        drift = config.caching_drift()
        # Control-free drift multiplier c and its balance point x_c at
        # which the q drift changes sign.
        self._drift_const = float(
            drift.rate(0.0, config.popularity, config.timeliness)
        )
        self._w1 = drift.w1
        if self._w1 > 0:
            self._x_balance = float(np.clip(self._drift_const / self._w1, 0.0, 1.0))
        else:
            self._x_balance = 1.0 if self._drift_const >= 0 else 0.0
        # Control-coupled utility: U(x) = U(0) - a x - w5 x^2.
        self._a_lin, self._w5 = self._utility.control_gradient_constants()

    # ------------------------------------------------------------------
    # Sub-stepping
    # ------------------------------------------------------------------
    def stable_step(self) -> float:
        """The CFL-stable explicit time step for this configuration."""
        cfg = self.config
        max_bh = float(np.max(np.abs(self._drift_h)))
        drift0 = float(np.abs(cfg.drift_rate(np.array(0.0))))
        drift1 = float(np.abs(cfg.drift_rate(np.array(1.0))))
        max_bq = max(drift0, drift1)
        return stable_time_step(
            max_bh, max_bq, self.grid.dh, self.grid.dq, self._diff_h, self._diff_q
        )

    def substeps_per_interval(self) -> int:
        """Number of CFL substeps per reporting interval."""
        return max(1, int(np.ceil(self.grid.dt / self.stable_step())))

    # ------------------------------------------------------------------
    # Godunov Hamiltonian in q
    # ------------------------------------------------------------------
    def _one_sided_gradients_q(self, value: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Backward and forward differences in ``q`` with Neumann ghosts."""
        dq = self.grid.dq
        backward = np.zeros_like(value)
        forward = np.zeros_like(value)
        backward[:, 1:] = (value[:, 1:] - value[:, :-1]) / dq
        forward[:, :-1] = (value[:, 1:] - value[:, :-1]) / dq
        # Reflecting state boundaries => zero normal derivative ghosts.
        return backward, forward

    def _branch_maximum(
        self, grad: np.ndarray, x_lo: float, x_hi: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Maximise the control part of the Hamiltonian on one branch.

        ``g(x) = b_q(x) grad - a x - w5 x^2`` with
        ``b_q(x) = Q (c - w1 x)``, maximised over ``x in [x_lo, x_hi]``.
        Returns the branch value and its argmax (arrays over the grid).
        """
        cfg = self.config
        q_size = cfg.content_size
        x_star = optimal_control(
            grad, q_size, self._w1, cfg.w4, cfg.w5, cfg.eta2, cfg.backhaul_rate
        )
        x = np.clip(x_star, x_lo, x_hi)
        value = q_size * (self._drift_const - self._w1 * x) * grad - self._a_lin * x - self._w5 * x**2
        return value, x

    def _godunov_q(self, value: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Monotone upwinded ``max_x [ b_q(x) d_qV - a x - w5 x^2 ]``.

        Returns the Hamiltonian contribution and the maximising control.
        """
        backward, forward = self._one_sided_gradients_q(value)
        # Upwinding for the BACKWARD-in-time equation follows the
        # forward characteristics: V(t, q) ~ V(t+dt, q + b dt), so
        # positive drift reads from larger q (forward difference).
        # Branch A: drift >= 0 (x below the balance point) -> D+ V.
        val_a, x_a = self._branch_maximum(forward, 0.0, self._x_balance)
        # Branch B: drift <= 0 (x above the balance point) -> D- V.
        val_b, x_b = self._branch_maximum(backward, self._x_balance, 1.0)
        take_a = val_a >= val_b
        return np.where(take_a, val_a, val_b), np.where(take_a, x_a, x_b)

    def _step_rhs(self, value: np.ndarray, ctx) -> Tuple[np.ndarray, np.ndarray]:
        """The bracketed operator of Eq. (20) and the maximising control."""
        grid = self.grid
        ham_q, control = self._godunov_q(value)
        # Negated velocity flips the upwind side: the backward-time
        # equation reads along forward characteristics (see _godunov_q).
        adv_h = self._drift_h * upwind_gradient(value, grid.dh, -self._drift_h, axis=0)
        diff = self._diff_h * second_derivative(
            value, grid.dh, axis=0
        ) + self._diff_q * second_derivative(value, grid.dq, axis=1)
        # Control-free running utility U(x=0); the control-coupled part
        # (-a x - w5 x^2) already lives inside the Godunov term.
        utility0 = self._utility.total(0.0, grid.q_mesh(), self._rate_of_h, ctx)
        return adv_h + ham_q + diff + utility0, control

    def control_from_value(self, value: np.ndarray) -> np.ndarray:
        """The Godunov-consistent policy for a value sheet."""
        return self._godunov_q(value)[1]

    def residual_norm(
        self,
        value_path: np.ndarray,
        mean_field: MeanFieldPath,
        max_samples: int = 8,
    ) -> float:
        """Scale-free discrete residual of a settled value path.

        Measures ``max_t || (V[t] - V[t+1]) / dt - L(V[t+1]; m(t)) ||_inf
        / (1 + ||L||_inf)`` at up to ``max_samples`` evenly-spaced
        reporting intervals, where ``L`` is the bracketed Eq. (20)
        operator.  A healthy sweep leaves O(dt) residual (substepping +
        the nonlinearity of the Godunov Hamiltonian); NaN/Inf or an
        exploding value means the backward sweep diverged.  This is a
        diagnostic for the numerical-health probes, not a convergence
        criterion — it reuses the solver's own discretisation so the
        number is comparable across runs of the same grid.
        """
        grid = self.grid
        value_path = np.asarray(value_path, dtype=float)
        if value_path.shape != grid.path_shape:
            raise ValueError(
                f"value path shape {value_path.shape} != grid {grid.path_shape}"
            )
        n_int = grid.n_t
        n_samples = max(1, min(int(max_samples), n_int))
        indices = np.unique(
            np.linspace(0, n_int - 1, n_samples).round().astype(int)
        )
        worst = 0.0
        for ti in indices:
            ctx = mean_field.context(int(ti))
            rhs, _ = self._step_rhs(value_path[ti + 1], ctx)
            residual = (value_path[ti] - value_path[ti + 1]) / grid.dt - rhs
            scale = 1.0 + float(np.max(np.abs(rhs)))
            worst = max(worst, float(np.max(np.abs(residual))) / scale)
            if not np.isfinite(worst):
                return float("nan")
        return worst

    def solve(
        self,
        mean_field: MeanFieldPath,
        terminal_value: Optional[np.ndarray] = None,
    ) -> HJBSolution:
        """Backward sweep from ``V(T)`` to ``V(0)`` against a mean field.

        Parameters
        ----------
        mean_field:
            The estimator's market paths (price, peer state, sharing
            benefit per reporting time).
        terminal_value:
            ``V(T, h, q)``; defaults to zero (no salvage value).
        """
        grid = self.grid
        value_path = np.empty(grid.path_shape)
        policy_path = np.empty(grid.path_shape)

        if terminal_value is None:
            value = np.zeros(grid.shape)
        else:
            value = np.asarray(terminal_value, dtype=float).copy()
            if value.shape != grid.shape:
                raise ValueError(
                    f"terminal value shape {value.shape} != grid {grid.shape}"
                )
        value_path[grid.n_t] = value
        policy_path[grid.n_t] = self.control_from_value(value)

        n_sub = self.substeps_per_interval()
        dt_sub = grid.dt / n_sub
        for ti in range(grid.n_t - 1, -1, -1):
            ctx = mean_field.context(ti)
            for _ in range(n_sub):
                rhs, _control = self._step_rhs(value, ctx)
                value = value + dt_sub * rhs
            value_path[ti] = value
            # Re-extract the control from the settled value sheet so the
            # stored policy is exactly Godunov-consistent with it.
            policy_path[ti] = self.control_from_value(value)

        return HJBSolution(
            grid=grid,
            value=value_path,
            policy=CachingPolicy(grid=grid, table=policy_path),
        )


def validate_shared_lane_params(configs: Sequence[MFGCPConfig]) -> None:
    """Check that a batch of per-content configs may share one sweep.

    The batched solvers assume the lanes differ only in the per-content
    demand fields (``content_size``, ``popularity``, ``timeliness``,
    ``n_requests``) — exactly what
    :meth:`~repro.core.solver.MFGCPSolver.per_content_config`
    specialises.  Channel, caching-drift, and economic parameters must
    be common so the fading operators and utility constants are shared.
    """
    first = configs[0]
    for i, cfg in enumerate(configs[1:], start=1):
        if cfg.channel != first.channel:
            raise ValueError(f"lane {i} has a different channel model")
        if cfg.caching != first.caching:
            raise ValueError(f"lane {i} has a different caching process")
        if cfg.economic_parameters() != first.economic_parameters():
            raise ValueError(f"lane {i} has different economic parameters")


def _batched_control_free_utility(
    params,
    size_col: np.ndarray,
    q_mesh: np.ndarray,
    wireless_rate: np.ndarray,
    n_requests_col: np.ndarray,
    price_col: np.ndarray,
    q_other_col: np.ndarray,
    benefit_col: np.ndarray,
) -> np.ndarray:
    """Eq. (10) at ``x = 0`` for a batch of lanes in one numpy pass.

    Replicates :meth:`repro.economics.utility.UtilityModel.total`
    term by term and in the same float operation order, with every
    per-lane scalar lifted to a ``(B, 1, 1)`` column — lane ``b`` is
    bit-identical to the scalar evaluation (the equivalence tests
    assert it).  The control-coupled terms (``-a x - w5 x^2``) vanish
    at ``x = 0``, matching the scalar HJB solver's ``utility0``.
    """
    two_l = 2.0 * params.cases.smoothing
    thr = params.cases.alpha * size_col
    have = expit(two_l * (thr - q_mesh))
    lack = 1.0 - have
    peer_has = expit(two_l * (thr - q_other_col))
    p1, p2, p3 = have, lack * peer_has, lack * (1.0 - peer_has)

    if params.include_trading:
        sold = (
            p1 * (size_col - q_mesh)
            + p2 * (size_col - q_other_col)
            + p3 * size_col
        )
        income = n_requests_col * price_col * sold
    else:
        income = np.zeros(np.broadcast_shapes(q_mesh.shape, size_col.shape))

    per_request = (
        p1 * (size_col - q_mesh) / wireless_rate
        + p2 * (size_col - q_other_col) / wireless_rate
        + p3 * (q_mesh / params.backhaul_rate + size_col / wireless_rate)
    )
    stale = params.eta2 * (n_requests_col * per_request)

    if params.include_sharing:
        benefit = p1 * benefit_col
        transfer = np.maximum(q_mesh - q_other_col, 0.0)
        share_cost = p2 * params.pricing.sharing_price * transfer
        return income + benefit - stale - share_cost
    return income - stale


class BatchedHJBSolver:
    """One vectorized backward sweep over a batch of content lanes.

    Wraps one scalar :class:`HJBSolver` per lane (so every per-lane
    constant — drift balance point, linear utility coefficient, CFL
    substep count — is *by construction* the scalar solver's value) and
    advances all lanes together through the batched stencil operators.
    Lanes with fewer CFL substeps than the batch maximum freeze once
    their own substeps are done, so each lane reproduces its scalar
    update sequence exactly.
    """

    def __init__(self, configs: Sequence[MFGCPConfig], grid: BatchGrid) -> None:
        self.configs = list(configs)
        self.grid = grid
        if len(self.configs) != grid.n_lanes:
            raise ValueError(
                f"{len(self.configs)} configs for {grid.n_lanes} grid lanes"
            )
        validate_shared_lane_params(self.configs)
        self.lane_solvers = [
            HJBSolver(cfg, grid.lane(b)) for b, cfg in enumerate(self.configs)
        ]
        first = self.lane_solvers[0]
        # Shared (channel-derived) pieces, identical across lanes.
        self._drift_h = first._drift_h  # (n_h, 1), broadcasts over lanes
        self._rate_of_h = first._rate_of_h
        self._diff_h = first._diff_h
        self._diff_q = first._diff_q
        self._w1 = first._w1
        self._w5 = first._w5
        self._params = first._utility.params
        cfg0 = self.configs[0]
        self._w4 = cfg0.w4
        self._eta2 = cfg0.eta2
        self._backhaul = cfg0.backhaul_rate
        # Per-lane constants, stacked from the scalar solvers.
        self._drift_const = np.array(
            [s._drift_const for s in self.lane_solvers]
        )
        self._x_balance = np.array([s._x_balance for s in self.lane_solvers])
        self._a_lin = np.array([s._a_lin for s in self.lane_solvers])
        self._q_size = np.array([cfg.content_size for cfg in self.configs])
        self._n_sub = np.array(
            [s.substeps_per_interval() for s in self.lane_solvers], dtype=int
        )

    # ------------------------------------------------------------------
    # Batched Godunov Hamiltonian
    # ------------------------------------------------------------------
    def _one_sided_gradients_q(
        self, value: np.ndarray, dq_col: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        backward = np.zeros_like(value)
        forward = np.zeros_like(value)
        diff = (value[:, :, 1:] - value[:, :, :-1]) / dq_col
        backward[:, :, 1:] = diff
        forward[:, :, :-1] = diff
        return backward, forward

    def _branch_maximum(self, grad, x_lo, x_hi, size_col, const_col, a_col):
        # Inlined Eq. (21) (optimal_control validates scalar sizes);
        # identical float operation order with per-lane columns.
        raw = -(
            self._w4 / (2.0 * self._w5)
            + self._eta2 * size_col / (2.0 * self._backhaul * self._w5)
            + size_col * self._w1 * grad / (2.0 * self._w5)
        )
        x = np.clip(np.clip(raw, 0.0, 1.0), x_lo, x_hi)
        value = (
            size_col * (const_col - self._w1 * x) * grad
            - a_col * x
            - self._w5 * x**2
        )
        return value, x

    def _godunov_q(self, value, lanes, dq_col):
        size_col = self._q_size[lanes][:, None, None]
        const_col = self._drift_const[lanes][:, None, None]
        a_col = self._a_lin[lanes][:, None, None]
        xbal_col = self._x_balance[lanes][:, None, None]
        backward, forward = self._one_sided_gradients_q(value, dq_col)
        val_a, x_a = self._branch_maximum(
            forward, 0.0, xbal_col, size_col, const_col, a_col
        )
        val_b, x_b = self._branch_maximum(
            backward, xbal_col, 1.0, size_col, const_col, a_col
        )
        take_a = val_a >= val_b
        return np.where(take_a, val_a, val_b), np.where(take_a, x_a, x_b)

    def _step_rhs(self, value, utility0, lanes, dq_col):
        grid = self.grid
        ham_q, control = self._godunov_q(value, lanes, dq_col)
        adv_h = self._drift_h * batched_upwind_gradient(
            value, grid.dh, -self._drift_h, axis=0
        )
        diff = self._diff_h * batched_second_derivative(
            value, grid.dh, axis=0
        ) + self._diff_q * batched_second_derivative(value, dq_col, axis=1)
        return adv_h + ham_q + diff + utility0, control

    def control_from_value(self, value, lanes, dq_col) -> np.ndarray:
        """The Godunov-consistent policy sheets for a batch of values."""
        return self._godunov_q(value, lanes, dq_col)[1]

    def _utility0(self, mean_fields, lanes, ti, q_mesh) -> np.ndarray:
        """Control-free running utility for one reporting interval.

        The scalar solver recomputes this inside every CFL substep, but
        it depends only on the interval's market context — hoisting it
        here is value-identical and saves ``n_sub - 1`` evaluations.
        """

        def col(values):
            return np.array(values)[:, None, None]

        n_col = col([float(mf.n_requests[ti]) for mf in mean_fields])
        price_col = col([float(mf.price[ti]) for mf in mean_fields])
        q_other_col = col([float(mf.mean_q[ti]) for mf in mean_fields])
        benefit_col = col([float(mf.sharing_benefit[ti]) for mf in mean_fields])
        return _batched_control_free_utility(
            self._params,
            self._q_size[lanes][:, None, None],
            q_mesh,
            self._rate_of_h,
            n_col,
            price_col,
            q_other_col,
            benefit_col,
        )

    def solve(
        self,
        mean_fields: Sequence[MeanFieldPath],
        lanes: Optional[np.ndarray] = None,
        terminal_value: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Backward sweep advancing every requested lane simultaneously.

        Parameters
        ----------
        mean_fields:
            One :class:`MeanFieldPath` per requested lane, in lane
            order.
        lanes:
            Lane indices into the batch (default: all lanes).  Passing
            the active subset is how the best-response iterator drops
            converged contents out of the batch.
        terminal_value:
            ``V(T)`` per lane, shape ``(b, n_h, n_q)``; defaults to
            zero.

        Returns
        -------
        (value_path, policy_path):
            Arrays of shape ``(b, n_t + 1, n_h, n_q)``.
        """
        grid = self.grid
        lanes = (
            np.arange(grid.n_lanes) if lanes is None else np.asarray(lanes, int)
        )
        if len(mean_fields) != lanes.size:
            raise ValueError(
                f"{len(mean_fields)} mean fields for {lanes.size} lanes"
            )
        b = lanes.size
        shape = (b, grid.n_h, grid.n_q)
        if terminal_value is None:
            value = np.zeros(shape)
        else:
            value = np.asarray(terminal_value, dtype=float).copy()
            if value.shape != shape:
                raise ValueError(
                    f"terminal value shape {value.shape} != batch {shape}"
                )

        dq_col = grid.dq[lanes][:, None, None]
        q_mesh = grid.q_mesh()[lanes]
        value_path = np.empty((b, grid.n_t + 1, grid.n_h, grid.n_q))
        policy_path = np.empty_like(value_path)
        value_path[:, grid.n_t] = value
        policy_path[:, grid.n_t] = self.control_from_value(value, lanes, dq_col)

        n_sub = self._n_sub[lanes]
        max_sub = int(n_sub.max())
        dt_sub = grid.dt / n_sub  # per-lane substep, (b,)
        dt_col = dt_sub[:, None, None]
        uniform = bool(np.all(n_sub == n_sub[0]))
        for ti in range(grid.n_t - 1, -1, -1):
            utility0 = self._utility0(mean_fields, lanes, ti, q_mesh)
            for s in range(max_sub):
                if uniform:
                    rhs, _ = self._step_rhs(value, utility0, lanes, dq_col)
                    value = value + dt_col * rhs
                else:
                    # Lanes whose own substep count is exhausted freeze;
                    # the stepping subset advances with its own dt.
                    idx = np.flatnonzero(s < n_sub)
                    rhs, _ = self._step_rhs(
                        value[idx], utility0[idx], lanes[idx], dq_col[idx]
                    )
                    value[idx] = value[idx] + dt_col[idx] * rhs
            value_path[:, ti] = value
            policy_path[:, ti] = self.control_from_value(value, lanes, dq_col)
        return value_path, policy_path
