"""Iterative best-response learning scheme, Algorithm 2.

The coupled HJB-FPK system is solved by fixed-point iteration:

1. initialise the policy and the mean-field estimate;
2. solve the backward HJB against the current mean field and extract
   the Eq. (21) best response;
3. stop when the policy change drops below the preset threshold;
4. otherwise solve the forward FPK under the (damped) new policy,
   refresh the mean-field estimator, and repeat.

Damped updates (``x <- (1 - beta) x_old + beta x_new``) implement the
contraction mapping of Theorem 2 robustly on coarse grids.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.equilibrium import ConvergenceReport, EquilibriumResult, IterationRecord
from repro.core.fpk import BatchedFPKSolver, FPKSolver, batched_initial_density, initial_density
from repro.core.grid import BatchGrid, StateGrid
from repro.core.hjb import BatchedHJBSolver, HJBSolution, HJBSolver
from repro.core.mean_field import MeanFieldEstimator
from repro.core.parameters import MFGCPConfig
from repro.core.policy import CachingPolicy
from repro.obs.diagnostics import (
    IterationContext,
    SolveDiagnostics,
    SolveEndContext,
    SolveStartContext,
)
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry, StrictNumericsError


def build_grid(config: MFGCPConfig) -> StateGrid:
    """The state grid implied by a configuration.

    The fading axis covers the OU stationary support (4 standard
    deviations around the long-term mean, widened to include the mean
    itself when volatility is tiny); the cache axis spans ``[0, Q_k]``.
    """
    ou = config.ou_process()
    h_lo, h_hi = ou.stationary_interval()
    if h_hi - h_lo < 1e-6:
        h_lo, h_hi = ou.mean - 0.5, ou.mean + 0.5
    h_lo = max(h_lo, 1e-6)  # fading coefficients are positive magnitudes
    return StateGrid.regular(
        horizon=config.horizon,
        n_time_steps=config.n_time_steps,
        h_bounds=(h_lo, h_hi),
        n_h=config.n_h,
        q_max=config.content_size,
        n_q=config.n_q,
    )


class BestResponseIterator:
    """Algorithm 2 bound to one configuration."""

    def __init__(
        self,
        config: MFGCPConfig,
        grid: Optional[StateGrid] = None,
        telemetry: Optional[SolverTelemetry] = None,
    ) -> None:
        self.config = config
        self.grid = grid if grid is not None else build_grid(config)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.hjb = HJBSolver(config, self.grid)
        self.fpk = FPKSolver(config, self.grid, telemetry=self.telemetry)
        self.estimator = MeanFieldEstimator(config, self.grid)

    def initial_policy(self, level: float = 0.5) -> np.ndarray:
        """The bootstrap policy table ``x^0`` (constant caching rate)."""
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"policy level must lie in [0, 1], got {level}")
        return np.full(self.grid.path_shape, float(level))

    def solve(
        self,
        density0: Optional[np.ndarray] = None,
        initial_policy_level: float = 0.5,
        initial_policy: Optional[np.ndarray] = None,
    ) -> EquilibriumResult:
        """Run the fixed-point loop to an MFG equilibrium.

        Parameters
        ----------
        density0:
            Initial population density ``lambda(0)``; defaults to the
            configured truncated normal.
        initial_policy_level:
            The constant bootstrap policy ``x^0``.
        initial_policy:
            Optional full bootstrap policy table (overrides the
            constant level) — warm-starting from a neighbouring
            parameter point's equilibrium cuts the iteration count in
            sweeps.
        """
        cfg = self.config
        grid = self.grid
        tele = self.telemetry
        if density0 is None:
            density0 = initial_density(grid, cfg)

        if initial_policy is not None:
            policy_table = np.asarray(initial_policy, dtype=float).copy()
            if policy_table.shape != grid.path_shape:
                raise ValueError(
                    f"initial policy shape {policy_table.shape} != grid "
                    f"{grid.path_shape}"
                )
            if np.any(policy_table < -1e-9) or np.any(policy_table > 1 + 1e-9):
                raise ValueError("initial policy values must lie in [0, 1]")
            policy_table = np.clip(policy_table, 0.0, 1.0)
        else:
            policy_table = self.initial_policy(initial_policy_level)

        # Numerical-health probes: constructed only for enabled
        # telemetry, so the NULL_TELEMETRY fast path pays a single
        # boolean check per hook site below.
        diagnostics = SolveDiagnostics(tele) if tele.enabled else None

        solve_span = tele.span("solve")
        solve_span.__enter__()
        tele.event(
            "solve_start",
            max_iterations=cfg.max_iterations,
            tolerance=cfg.tolerance,
            damping=cfg.damping,
            grid_shape=list(grid.path_shape),
        )
        if diagnostics is not None:
            diagnostics.solve_start(
                SolveStartContext(
                    telemetry=tele,
                    grid=grid,
                    config=cfg,
                    fpk=self.fpk,
                    hjb=self.hjb,
                )
            )
        with tele.span("bootstrap"):
            density_path = self.fpk.solve(policy_table, density0)
            mean_field = self.estimator.estimate(density_path, policy_table)

        history = []
        converged = False
        policy_change = np.inf
        solution = None
        for iteration in range(1, cfg.max_iterations + 1):
            with tele.span("iteration"):
                with tele.span("hjb") as sp_hjb:
                    solution = self.hjb.solve(mean_field)
                new_table = solution.policy.table
                policy_change = float(np.max(np.abs(new_table - policy_table)))

                # Damped best-response update (contraction mapping).
                policy_table = (
                    (1.0 - cfg.damping) * policy_table + cfg.damping * new_table
                )
                with tele.span("fpk") as sp_fpk:
                    density_path = self.fpk.solve(policy_table, density0)
                with tele.span("mean_field") as sp_mf:
                    new_mean_field = self.estimator.estimate(
                        density_path, policy_table
                    )
                mf_change = mean_field.distance(new_mean_field)
                mean_field = new_mean_field

            history.append(
                IterationRecord(
                    iteration=iteration,
                    policy_change=policy_change,
                    mean_field_change=mf_change,
                    mean_price=float(mean_field.price.mean()),
                    mean_control=float(mean_field.mean_control.mean()),
                )
            )
            if tele.enabled:
                tele.inc("solver.iterations")
                tele.observe("solver.hjb_seconds", sp_hjb.duration)
                tele.observe("solver.fpk_seconds", sp_fpk.duration)
                tele.event(
                    "iteration",
                    iteration=iteration,
                    policy_change=policy_change,
                    mean_field_change=mf_change,
                    mean_price=float(mean_field.price.mean()),
                    mean_control=float(mean_field.mean_control.mean()),
                    hjb_s=sp_hjb.duration,
                    fpk_s=sp_fpk.duration,
                    mean_field_s=sp_mf.duration,
                )
            if diagnostics is not None:
                diagnostics.iteration(
                    IterationContext(
                        telemetry=tele,
                        grid=grid,
                        config=cfg,
                        hjb=self.hjb,
                        iteration=iteration,
                        density_path=density_path,
                        solution=solution,
                        mean_field=mean_field,
                        policy_change=policy_change,
                    )
                )
            if policy_change < cfg.tolerance:
                converged = True
                break

        assert solution is not None  # max_iterations >= 1 by validation
        report = ConvergenceReport(
            converged=converged,
            n_iterations=len(history),
            final_policy_change=policy_change,
            history=history,
        )
        if diagnostics is not None:
            diagnostics.solve_end(
                SolveEndContext(telemetry=tele, config=cfg, report=report)
            )
        solve_span.__exit__(None, None, None)
        if tele.enabled:
            tele.gauge("solver.final_policy_change", policy_change)
            tele.gauge("solver.n_iterations", float(len(history)))
            tele.event(
                "solve_end",
                converged=converged,
                n_iterations=len(history),
                final_policy_change=policy_change,
                solve_s=solve_span.duration,
            )
        return EquilibriumResult(
            config=cfg,
            grid=grid,
            value=solution.value,
            policy=CachingPolicy(grid=grid, table=policy_table),
            density=density_path,
            mean_field=mean_field,
            report=report,
        )


class _LaneTelemetry:
    """Per-lane telemetry proxy tagging diagnostics with a content index.

    The batched iterator drives one :class:`SolveDiagnostics` per lane;
    every probe finding is forwarded through this proxy, which adds a
    ``content=<index>`` field to the ``diag.*`` event and prefixes a
    strict-numerics escalation with the content index — so a batched
    abort names the lane that failed, not just the check.
    """

    def __init__(self, inner: SolverTelemetry, content: int) -> None:
        self._inner = inner
        self.content = int(content)

    @property
    def enabled(self) -> bool:
        return self._inner.enabled

    @property
    def strict_numerics(self) -> bool:
        return self._inner.strict_numerics

    def diag(self, check, severity, value=None, threshold=None, message="", **fields):
        fields.setdefault("content", self.content)
        try:
            self._inner.diag(
                check,
                severity,
                value=value,
                threshold=threshold,
                message=message,
                **fields,
            )
        except StrictNumericsError as err:
            raise StrictNumericsError(
                err.check, f"content {self.content}: {err.message}", err.value
            ) from None

    def __getattr__(self, name):
        return getattr(self._inner, name)


class BatchedBestResponseIterator:
    """Algorithm 2 over a batch of contents with a convergence mask.

    Each lane runs exactly the scalar fixed-point loop — bootstrap FPK,
    then hjb → policy change → damped update → FPK → mean-field
    refresh — but all active lanes advance through one vectorized
    backward and forward sweep per iteration.  A lane whose policy
    change drops below tolerance leaves the active set at the end of
    its iteration (after its FPK/estimator refresh, mirroring the
    scalar loop's stopping point); frozen lanes are never recomputed,
    so their value function, density, and policy stay bit-identical to
    the state at their own convergence.

    ``content_ids`` labels lanes in telemetry and diagnostics; results
    come back as one :class:`EquilibriumResult` per lane, in input
    order, each indistinguishable from a scalar
    :class:`BestResponseIterator` solve of that lane alone.
    """

    def __init__(
        self,
        configs: Sequence[MFGCPConfig],
        content_ids: Optional[Sequence[int]] = None,
        telemetry: Optional[SolverTelemetry] = None,
    ) -> None:
        self.configs = list(configs)
        if not self.configs:
            raise ValueError("cannot batch zero configs")
        first = self.configs[0]
        for i, cfg in enumerate(self.configs[1:], start=1):
            if (
                cfg.max_iterations != first.max_iterations
                or cfg.tolerance != first.tolerance
                or cfg.damping != first.damping
            ):
                raise ValueError(
                    f"lane {i} has different iteration controls "
                    "(max_iterations/tolerance/damping must be shared)"
                )
        self.content_ids = (
            list(range(len(self.configs)))
            if content_ids is None
            else [int(k) for k in content_ids]
        )
        if len(self.content_ids) != len(self.configs):
            raise ValueError(
                f"{len(self.content_ids)} content ids for "
                f"{len(self.configs)} configs"
            )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.lane_grids = [build_grid(cfg) for cfg in self.configs]
        self.grid = BatchGrid.from_grids(self.lane_grids)
        self.hjb = BatchedHJBSolver(self.configs, self.grid)
        self.fpk = BatchedFPKSolver(
            self.configs,
            self.grid,
            telemetry=self.telemetry,
            content_ids=self.content_ids,
        )
        self.estimators = [
            MeanFieldEstimator(cfg, lane_grid)
            for cfg, lane_grid in zip(self.configs, self.lane_grids)
        ]

    def solve(
        self, initial_policy_level: float = 0.5
    ) -> List[EquilibriumResult]:
        """Run the masked fixed-point loop to per-content equilibria."""
        if not 0.0 <= initial_policy_level <= 1.0:
            raise ValueError(
                f"policy level must lie in [0, 1], got {initial_policy_level}"
            )
        grid = self.grid
        tele = self.telemetry
        cfg0 = self.configs[0]
        n_lanes = grid.n_lanes

        density0 = batched_initial_density(grid, self.configs)
        policy = np.full(grid.path_shape, float(initial_policy_level))

        lane_teles = [_LaneTelemetry(tele, k) for k in self.content_ids]
        diagnostics = (
            [SolveDiagnostics(lt) for lt in lane_teles] if tele.enabled else None
        )

        solve_span = tele.span("solve")
        solve_span.__enter__()
        tele.event(
            "solve_start",
            max_iterations=cfg0.max_iterations,
            tolerance=cfg0.tolerance,
            damping=cfg0.damping,
            grid_shape=list(grid.path_shape),
            batched=True,
            contents=list(self.content_ids),
        )
        if diagnostics is not None:
            for b, diag in enumerate(diagnostics):
                diag.solve_start(
                    SolveStartContext(
                        telemetry=lane_teles[b],
                        grid=self.lane_grids[b],
                        config=self.configs[b],
                        fpk=self.fpk.lane_solvers[b],
                        hjb=self.hjb.lane_solvers[b],
                    )
                )
        with tele.span("bootstrap"):
            density_paths = self.fpk.solve(policy, density0)
            mean_fields = [
                est.estimate(density_paths[b], policy[b])
                for b, est in enumerate(self.estimators)
            ]

        histories: List[List[IterationRecord]] = [[] for _ in range(n_lanes)]
        converged = np.zeros(n_lanes, dtype=bool)
        policy_changes = np.full(n_lanes, np.inf)
        value_paths = np.empty(grid.path_shape)
        active = np.arange(n_lanes)

        for iteration in range(1, cfg0.max_iterations + 1):
            if active.size == 0:
                break
            with tele.span("iteration"):
                with tele.span("hjb") as sp_hjb:
                    v_path, new_tables = self.hjb.solve(
                        [mean_fields[b] for b in active], lanes=active
                    )
                value_paths[active] = v_path
                pc = np.max(np.abs(new_tables - policy[active]), axis=(1, 2, 3))
                policy_changes[active] = pc

                policy[active] = (
                    (1.0 - cfg0.damping) * policy[active]
                    + cfg0.damping * new_tables
                )
                with tele.span("fpk") as sp_fpk:
                    d_paths = self.fpk.solve(
                        policy[active], density0[active], lanes=active
                    )
                density_paths[active] = d_paths
                with tele.span("mean_field") as sp_mf:
                    mf_changes = np.empty(active.size)
                    for j, b in enumerate(active):
                        new_mf = self.estimators[b].estimate(
                            d_paths[j], policy[b]
                        )
                        mf_changes[j] = mean_fields[b].distance(new_mf)
                        mean_fields[b] = new_mf

            for j, b in enumerate(active):
                histories[b].append(
                    IterationRecord(
                        iteration=iteration,
                        policy_change=float(pc[j]),
                        mean_field_change=float(mf_changes[j]),
                        mean_price=float(mean_fields[b].price.mean()),
                        mean_control=float(mean_fields[b].mean_control.mean()),
                    )
                )
            if tele.enabled:
                tele.inc("solver.iterations")
                tele.observe("solver.hjb_seconds", sp_hjb.duration)
                tele.observe("solver.fpk_seconds", sp_fpk.duration)
                tele.event(
                    "iteration",
                    iteration=iteration,
                    n_active=int(active.size),
                    policy_change=float(pc.max()),
                    mean_field_change=float(mf_changes.max()),
                    hjb_s=sp_hjb.duration,
                    fpk_s=sp_fpk.duration,
                    mean_field_s=sp_mf.duration,
                )
            if diagnostics is not None:
                for j, b in enumerate(active):
                    lane_grid = self.lane_grids[b]
                    solution = HJBSolution(
                        grid=lane_grid,
                        value=value_paths[b],
                        policy=CachingPolicy(grid=lane_grid, table=new_tables[j]),
                    )
                    diagnostics[b].iteration(
                        IterationContext(
                            telemetry=lane_teles[b],
                            grid=lane_grid,
                            config=self.configs[b],
                            hjb=self.hjb.lane_solvers[b],
                            iteration=iteration,
                            density_path=density_paths[b],
                            solution=solution,
                            mean_field=mean_fields[b],
                            policy_change=float(pc[j]),
                        )
                    )
            # Convergence mask: lanes below tolerance freeze after this
            # iteration's FPK/estimator refresh — exactly where the
            # scalar loop stops — and drop out of the batch.
            done = pc < cfg0.tolerance
            converged[active[done]] = True
            active = active[~done]

        results: List[EquilibriumResult] = []
        for b in range(n_lanes):
            report = ConvergenceReport(
                converged=bool(converged[b]),
                n_iterations=len(histories[b]),
                final_policy_change=float(policy_changes[b]),
                history=histories[b],
            )
            if diagnostics is not None:
                diagnostics[b].solve_end(
                    SolveEndContext(
                        telemetry=lane_teles[b],
                        config=self.configs[b],
                        report=report,
                    )
                )
            results.append(
                EquilibriumResult(
                    config=self.configs[b],
                    grid=self.lane_grids[b],
                    value=value_paths[b],
                    policy=CachingPolicy(grid=self.lane_grids[b], table=policy[b]),
                    density=density_paths[b],
                    mean_field=mean_fields[b],
                    report=report,
                )
            )
        solve_span.__exit__(None, None, None)
        if tele.enabled:
            tele.gauge(
                "solver.final_policy_change", float(policy_changes.max())
            )
            tele.gauge(
                "solver.n_iterations",
                float(max(len(h) for h in histories)),
            )
            tele.event(
                "solve_end",
                converged=bool(converged.all()),
                n_converged=int(converged.sum()),
                n_lanes=n_lanes,
                n_iterations=max(len(h) for h in histories),
                final_policy_change=float(policy_changes.max()),
                solve_s=solve_span.duration,
            )
        return results
