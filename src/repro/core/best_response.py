"""Iterative best-response learning scheme, Algorithm 2.

The coupled HJB-FPK system is solved by fixed-point iteration:

1. initialise the policy and the mean-field estimate;
2. solve the backward HJB against the current mean field and extract
   the Eq. (21) best response;
3. stop when the policy change drops below the preset threshold;
4. otherwise solve the forward FPK under the (damped) new policy,
   refresh the mean-field estimator, and repeat.

Damped updates (``x <- (1 - beta) x_old + beta x_new``) implement the
contraction mapping of Theorem 2 robustly on coarse grids.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.equilibrium import ConvergenceReport, EquilibriumResult, IterationRecord
from repro.core.fpk import FPKSolver, initial_density
from repro.core.grid import StateGrid
from repro.core.hjb import HJBSolver
from repro.core.mean_field import MeanFieldEstimator
from repro.core.parameters import MFGCPConfig
from repro.core.policy import CachingPolicy
from repro.obs.diagnostics import (
    IterationContext,
    SolveDiagnostics,
    SolveEndContext,
    SolveStartContext,
)
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry


def build_grid(config: MFGCPConfig) -> StateGrid:
    """The state grid implied by a configuration.

    The fading axis covers the OU stationary support (4 standard
    deviations around the long-term mean, widened to include the mean
    itself when volatility is tiny); the cache axis spans ``[0, Q_k]``.
    """
    ou = config.ou_process()
    h_lo, h_hi = ou.stationary_interval()
    if h_hi - h_lo < 1e-6:
        h_lo, h_hi = ou.mean - 0.5, ou.mean + 0.5
    h_lo = max(h_lo, 1e-6)  # fading coefficients are positive magnitudes
    return StateGrid.regular(
        horizon=config.horizon,
        n_time_steps=config.n_time_steps,
        h_bounds=(h_lo, h_hi),
        n_h=config.n_h,
        q_max=config.content_size,
        n_q=config.n_q,
    )


class BestResponseIterator:
    """Algorithm 2 bound to one configuration."""

    def __init__(
        self,
        config: MFGCPConfig,
        grid: Optional[StateGrid] = None,
        telemetry: Optional[SolverTelemetry] = None,
    ) -> None:
        self.config = config
        self.grid = grid if grid is not None else build_grid(config)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.hjb = HJBSolver(config, self.grid)
        self.fpk = FPKSolver(config, self.grid, telemetry=self.telemetry)
        self.estimator = MeanFieldEstimator(config, self.grid)

    def initial_policy(self, level: float = 0.5) -> np.ndarray:
        """The bootstrap policy table ``x^0`` (constant caching rate)."""
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"policy level must lie in [0, 1], got {level}")
        return np.full(self.grid.path_shape, float(level))

    def solve(
        self,
        density0: Optional[np.ndarray] = None,
        initial_policy_level: float = 0.5,
        initial_policy: Optional[np.ndarray] = None,
    ) -> EquilibriumResult:
        """Run the fixed-point loop to an MFG equilibrium.

        Parameters
        ----------
        density0:
            Initial population density ``lambda(0)``; defaults to the
            configured truncated normal.
        initial_policy_level:
            The constant bootstrap policy ``x^0``.
        initial_policy:
            Optional full bootstrap policy table (overrides the
            constant level) — warm-starting from a neighbouring
            parameter point's equilibrium cuts the iteration count in
            sweeps.
        """
        cfg = self.config
        grid = self.grid
        tele = self.telemetry
        if density0 is None:
            density0 = initial_density(grid, cfg)

        if initial_policy is not None:
            policy_table = np.asarray(initial_policy, dtype=float).copy()
            if policy_table.shape != grid.path_shape:
                raise ValueError(
                    f"initial policy shape {policy_table.shape} != grid "
                    f"{grid.path_shape}"
                )
            if np.any(policy_table < -1e-9) or np.any(policy_table > 1 + 1e-9):
                raise ValueError("initial policy values must lie in [0, 1]")
            policy_table = np.clip(policy_table, 0.0, 1.0)
        else:
            policy_table = self.initial_policy(initial_policy_level)

        # Numerical-health probes: constructed only for enabled
        # telemetry, so the NULL_TELEMETRY fast path pays a single
        # boolean check per hook site below.
        diagnostics = SolveDiagnostics(tele) if tele.enabled else None

        solve_span = tele.span("solve")
        solve_span.__enter__()
        tele.event(
            "solve_start",
            max_iterations=cfg.max_iterations,
            tolerance=cfg.tolerance,
            damping=cfg.damping,
            grid_shape=list(grid.path_shape),
        )
        if diagnostics is not None:
            diagnostics.solve_start(
                SolveStartContext(
                    telemetry=tele,
                    grid=grid,
                    config=cfg,
                    fpk=self.fpk,
                    hjb=self.hjb,
                )
            )
        with tele.span("bootstrap"):
            density_path = self.fpk.solve(policy_table, density0)
            mean_field = self.estimator.estimate(density_path, policy_table)

        history = []
        converged = False
        policy_change = np.inf
        solution = None
        for iteration in range(1, cfg.max_iterations + 1):
            with tele.span("iteration"):
                with tele.span("hjb") as sp_hjb:
                    solution = self.hjb.solve(mean_field)
                new_table = solution.policy.table
                policy_change = float(np.max(np.abs(new_table - policy_table)))

                # Damped best-response update (contraction mapping).
                policy_table = (
                    (1.0 - cfg.damping) * policy_table + cfg.damping * new_table
                )
                with tele.span("fpk") as sp_fpk:
                    density_path = self.fpk.solve(policy_table, density0)
                with tele.span("mean_field") as sp_mf:
                    new_mean_field = self.estimator.estimate(
                        density_path, policy_table
                    )
                mf_change = mean_field.distance(new_mean_field)
                mean_field = new_mean_field

            history.append(
                IterationRecord(
                    iteration=iteration,
                    policy_change=policy_change,
                    mean_field_change=mf_change,
                    mean_price=float(mean_field.price.mean()),
                    mean_control=float(mean_field.mean_control.mean()),
                )
            )
            if tele.enabled:
                tele.inc("solver.iterations")
                tele.observe("solver.hjb_seconds", sp_hjb.duration)
                tele.observe("solver.fpk_seconds", sp_fpk.duration)
                tele.event(
                    "iteration",
                    iteration=iteration,
                    policy_change=policy_change,
                    mean_field_change=mf_change,
                    mean_price=float(mean_field.price.mean()),
                    mean_control=float(mean_field.mean_control.mean()),
                    hjb_s=sp_hjb.duration,
                    fpk_s=sp_fpk.duration,
                    mean_field_s=sp_mf.duration,
                )
            if diagnostics is not None:
                diagnostics.iteration(
                    IterationContext(
                        telemetry=tele,
                        grid=grid,
                        config=cfg,
                        hjb=self.hjb,
                        iteration=iteration,
                        density_path=density_path,
                        solution=solution,
                        mean_field=mean_field,
                        policy_change=policy_change,
                    )
                )
            if policy_change < cfg.tolerance:
                converged = True
                break

        assert solution is not None  # max_iterations >= 1 by validation
        report = ConvergenceReport(
            converged=converged,
            n_iterations=len(history),
            final_policy_change=policy_change,
            history=history,
        )
        if diagnostics is not None:
            diagnostics.solve_end(
                SolveEndContext(telemetry=tele, config=cfg, report=report)
            )
        solve_span.__exit__(None, None, None)
        if tele.enabled:
            tele.gauge("solver.final_policy_change", policy_change)
            tele.gauge("solver.n_iterations", float(len(history)))
            tele.event(
                "solve_end",
                converged=converged,
                n_iterations=len(history),
                final_policy_change=policy_change,
                solve_s=solve_span.duration,
            )
        return EquilibriumResult(
            config=cfg,
            grid=grid,
            value=solution.value,
            policy=CachingPolicy(grid=grid, table=policy_table),
            density=density_path,
            mean_field=mean_field,
            report=report,
        )
