"""Discretised state space for the HJB/FPK finite-difference solvers.

The generic EDP state of the mean-field game is
``S_k(t) = (h(t), q_k(t))``; both PDEs (Eqs. (15) and (20)) act on the
rectangle ``[h_min, h_max] x [0, Q_k]``.  :class:`StateGrid` owns the
axes, spacings, meshes, and quadrature weights every solver shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class StateGrid:
    """Tensor grid over ``(t, h, q)``.

    Grid fields are indexed ``field[h_index, q_index]`` and time paths
    ``path[t_index, h_index, q_index]``.

    Parameters
    ----------
    t:
        Time axis, shape ``(n_t + 1,)``, strictly increasing from 0.
    h:
        Fading axis, shape ``(n_h,)``.
    q:
        Remaining-space axis, shape ``(n_q,)``, spanning ``[0, Q_k]``.
    """

    t: np.ndarray
    h: np.ndarray
    q: np.ndarray

    def __post_init__(self) -> None:
        for name, axis in (("t", self.t), ("h", self.h), ("q", self.q)):
            axis = np.asarray(axis, dtype=float)
            if axis.ndim != 1 or axis.shape[0] < 2:
                raise ValueError(f"axis {name} must be 1-D with >= 2 points")
            if np.any(np.diff(axis) <= 0):
                raise ValueError(f"axis {name} must be strictly increasing")
            object.__setattr__(self, name, axis)
        if not np.allclose(np.diff(self.t), self.dt):
            raise ValueError("time axis must be uniform")
        if not np.allclose(np.diff(self.h), self.dh):
            raise ValueError("h axis must be uniform")
        if not np.allclose(np.diff(self.q), self.dq):
            raise ValueError("q axis must be uniform")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def regular(
        cls,
        horizon: float,
        n_time_steps: int,
        h_bounds: Tuple[float, float],
        n_h: int,
        q_max: float,
        n_q: int,
    ) -> "StateGrid":
        """Uniform grid over ``[0, T] x h_bounds x [0, q_max]``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if q_max <= 0:
            raise ValueError(f"q_max must be positive, got {q_max}")
        h_lo, h_hi = h_bounds
        if h_hi <= h_lo:
            raise ValueError(f"empty h range [{h_lo}, {h_hi}]")
        return cls(
            t=np.linspace(0.0, horizon, n_time_steps + 1),
            h=np.linspace(h_lo, h_hi, n_h),
            q=np.linspace(0.0, q_max, n_q),
        )

    # ------------------------------------------------------------------
    # Shape and spacing
    # ------------------------------------------------------------------
    @property
    def n_t(self) -> int:
        """Number of time steps (time axis has ``n_t + 1`` points)."""
        return self.t.shape[0] - 1

    @property
    def n_h(self) -> int:
        return self.h.shape[0]

    @property
    def n_q(self) -> int:
        return self.q.shape[0]

    @property
    def dt(self) -> float:
        return float(self.t[1] - self.t[0])

    @property
    def dh(self) -> float:
        return float(self.h[1] - self.h[0])

    @property
    def dq(self) -> float:
        return float(self.q[1] - self.q[0])

    @property
    def shape(self) -> Tuple[int, int]:
        """Spatial field shape ``(n_h, n_q)``."""
        return (self.n_h, self.n_q)

    @property
    def path_shape(self) -> Tuple[int, int, int]:
        """Time-path shape ``(n_t + 1, n_h, n_q)``."""
        return (self.n_t + 1, self.n_h, self.n_q)

    # ------------------------------------------------------------------
    # Meshes
    # ------------------------------------------------------------------
    def h_mesh(self) -> np.ndarray:
        """``h`` broadcast over the spatial shape (column-constant)."""
        return np.broadcast_to(self.h[:, None], self.shape)

    def q_mesh(self) -> np.ndarray:
        """``q`` broadcast over the spatial shape (row-constant)."""
        return np.broadcast_to(self.q[None, :], self.shape)

    # ------------------------------------------------------------------
    # Quadrature
    # ------------------------------------------------------------------
    def cell_weights(self) -> np.ndarray:
        """Trapezoid quadrature weights over the ``(h, q)`` rectangle."""
        wh = np.full(self.n_h, self.dh)
        wh[0] = wh[-1] = 0.5 * self.dh
        wq = np.full(self.n_q, self.dq)
        wq[0] = wq[-1] = 0.5 * self.dq
        return np.outer(wh, wq)

    def integrate(self, grid_field: np.ndarray) -> float:
        """``\\int\\int field dh dq`` by the trapezoid rule."""
        grid_field = np.asarray(grid_field, dtype=float)
        if grid_field.shape != self.shape:
            raise ValueError(
                f"field shape {grid_field.shape} does not match grid {self.shape}"
            )
        return float((grid_field * self.cell_weights()).sum())

    def normalize(self, density: np.ndarray, telemetry=None) -> np.ndarray:
        """Rescale a non-negative field to unit mass.

        ``telemetry`` (a :class:`repro.obs.telemetry.SolverTelemetry`,
        duck-typed to keep this module dependency-free) receives a
        ``diag.density.zero_mass`` event before the zero-mass
        ``ValueError`` is raised, so a dying FPK sweep leaves its cause
        in the event stream.
        """
        density = np.asarray(density, dtype=float)
        if np.any(density < -1e-12):
            raise ValueError("density must be non-negative")
        density = np.maximum(density, 0.0)
        mass = self.integrate(density)
        if mass <= 0:
            if telemetry is not None and getattr(telemetry, "enabled", False):
                telemetry.diag(
                    "density.zero_mass",
                    "error",
                    value=float(mass),
                    message="density has zero mass; cannot normalise",
                )
            raise ValueError("density has zero mass; cannot normalise")
        return density / mass

    def expectation(self, density: np.ndarray, grid_field: np.ndarray) -> float:
        """``E_density[field]`` with both arguments on the grid."""
        return self.integrate(np.asarray(density) * np.asarray(grid_field))

    def marginal_q(self, density: np.ndarray) -> np.ndarray:
        """Marginal density over ``q`` (integrating out ``h``)."""
        density = np.asarray(density, dtype=float)
        if density.shape != self.shape:
            raise ValueError(
                f"density shape {density.shape} does not match grid {self.shape}"
            )
        wh = np.full(self.n_h, self.dh)
        wh[0] = wh[-1] = 0.5 * self.dh
        return (density * wh[:, None]).sum(axis=0)

    def marginal_h(self, density: np.ndarray) -> np.ndarray:
        """Marginal density over ``h`` (integrating out ``q``)."""
        density = np.asarray(density, dtype=float)
        if density.shape != self.shape:
            raise ValueError(
                f"density shape {density.shape} does not match grid {self.shape}"
            )
        wq = np.full(self.n_q, self.dq)
        wq[0] = wq[-1] = 0.5 * self.dq
        return (density * wq[None, :]).sum(axis=1)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def nearest_time_index(self, t: float) -> int:
        """Index of the reporting time closest to ``t``."""
        return int(np.argmin(np.abs(self.t - t)))

    def locate(self, h: float, q: float) -> Tuple[int, int]:
        """Nearest grid indices for a state ``(h, q)``."""
        return (
            int(np.clip(np.rint((h - self.h[0]) / self.dh), 0, self.n_h - 1)),
            int(np.clip(np.rint((q - self.q[0]) / self.dq), 0, self.n_q - 1)),
        )

    def interp_weights(self, h: float, q: float) -> Tuple[int, int, float, float]:
        """Lower-corner indices and fractional offsets for bilinear lookup."""
        fh = np.clip((h - self.h[0]) / self.dh, 0.0, self.n_h - 1 - 1e-12)
        fq = np.clip((q - self.q[0]) / self.dq, 0.0, self.n_q - 1 - 1e-12)
        ih, iq = int(fh), int(fq)
        return ih, iq, float(fh - ih), float(fq - iq)


@dataclass(frozen=True)
class BatchGrid:
    """A stack of per-content :class:`StateGrid` lanes.

    The batched solvers carry the content axis as a leading numpy
    dimension: spatial fields are shaped ``(B, n_h, n_q)`` and time
    paths ``(B, n_t + 1, n_h, n_q)``, one lane per content.  All lanes
    share the time and fading axes (the wireless channel is common to
    every content); each lane owns its cache axis ``[0, Q_k]`` because
    content sizes differ.

    Every reduction (:meth:`integrate`, :meth:`normalize`) is
    elementwise along the batch axis, so lane ``b`` behaves
    bit-identically to the same operation on :meth:`lane`\\ ``(b)``.

    Attributes
    ----------
    t:
        Shared time axis, shape ``(n_t + 1,)``.
    h:
        Shared fading axis, shape ``(n_h,)``.
    q:
        Per-lane cache axes, shape ``(B, n_q)``.
    """

    t: np.ndarray
    h: np.ndarray
    q: np.ndarray

    def __post_init__(self) -> None:
        t = np.asarray(self.t, dtype=float)
        h = np.asarray(self.h, dtype=float)
        q = np.asarray(self.q, dtype=float)
        if t.ndim != 1 or t.shape[0] < 2:
            raise ValueError("axis t must be 1-D with >= 2 points")
        if h.ndim != 1 or h.shape[0] < 2:
            raise ValueError("axis h must be 1-D with >= 2 points")
        if q.ndim != 2 or q.shape[0] < 1 or q.shape[1] < 2:
            raise ValueError(
                f"q must be (n_lanes, n_q) with n_q >= 2, got shape {q.shape}"
            )
        if np.any(np.diff(q, axis=1) <= 0):
            raise ValueError("every lane's q axis must be strictly increasing")
        object.__setattr__(self, "t", t)
        object.__setattr__(self, "h", h)
        object.__setattr__(self, "q", q)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_grids(cls, grids: Sequence[StateGrid]) -> "BatchGrid":
        """Stack per-content grids that share their ``t`` and ``h`` axes."""
        grids = list(grids)
        if not grids:
            raise ValueError("cannot batch zero grids")
        first = grids[0]
        for i, grid in enumerate(grids[1:], start=1):
            if not np.array_equal(grid.t, first.t):
                raise ValueError(f"lane {i} has a different time axis")
            if not np.array_equal(grid.h, first.h):
                raise ValueError(f"lane {i} has a different fading axis")
            if grid.n_q != first.n_q:
                raise ValueError(
                    f"lane {i} has n_q={grid.n_q}, lane 0 has n_q={first.n_q}"
                )
        return cls(t=first.t, h=first.h, q=np.stack([g.q for g in grids]))

    def lane(self, index: int) -> StateGrid:
        """The scalar :class:`StateGrid` of one content lane."""
        return StateGrid(t=self.t, h=self.h, q=self.q[index])

    def select(self, lanes: Sequence[int]) -> "BatchGrid":
        """A sub-batch restricted to the given lane indices."""
        return BatchGrid(t=self.t, h=self.h, q=self.q[np.asarray(lanes)])

    # ------------------------------------------------------------------
    # Shape and spacing
    # ------------------------------------------------------------------
    @property
    def n_lanes(self) -> int:
        return self.q.shape[0]

    @property
    def n_t(self) -> int:
        return self.t.shape[0] - 1

    @property
    def n_h(self) -> int:
        return self.h.shape[0]

    @property
    def n_q(self) -> int:
        return self.q.shape[1]

    @property
    def dt(self) -> float:
        return float(self.t[1] - self.t[0])

    @property
    def dh(self) -> float:
        return float(self.h[1] - self.h[0])

    @property
    def dq(self) -> np.ndarray:
        """Per-lane cache spacing, shape ``(B,)``."""
        return self.q[:, 1] - self.q[:, 0]

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Batched spatial field shape ``(B, n_h, n_q)``."""
        return (self.n_lanes, self.n_h, self.n_q)

    @property
    def path_shape(self) -> Tuple[int, int, int, int]:
        """Batched time-path shape ``(B, n_t + 1, n_h, n_q)``."""
        return (self.n_lanes, self.n_t + 1, self.n_h, self.n_q)

    # ------------------------------------------------------------------
    # Meshes and quadrature
    # ------------------------------------------------------------------
    def q_mesh(self) -> np.ndarray:
        """Per-lane ``q`` broadcast over the batched spatial shape."""
        return np.broadcast_to(self.q[:, None, :], self.shape)

    def h_mesh(self) -> np.ndarray:
        """Shared ``h`` broadcast over the batched spatial shape."""
        return np.broadcast_to(self.h[None, :, None], self.shape)

    def cell_weights(self) -> np.ndarray:
        """Per-lane trapezoid weights, shape ``(B, n_h, n_q)``.

        Lane ``b`` equals ``lane(b).cell_weights()`` bit-for-bit: the
        shared ``wh`` factor multiplies each lane's own ``wq``.
        """
        wh = np.full(self.n_h, self.dh)
        wh[0] = wh[-1] = 0.5 * self.dh
        dq = self.dq
        wq = np.broadcast_to(dq[:, None], (self.n_lanes, self.n_q)).copy()
        wq[:, 0] = 0.5 * dq
        wq[:, -1] = 0.5 * dq
        return wh[None, :, None] * wq[:, None, :]

    def integrate(self, fields: np.ndarray) -> np.ndarray:
        """Per-lane ``\\int\\int field dh dq``, shape ``(B,)``."""
        fields = np.asarray(fields, dtype=float)
        if fields.shape != self.shape:
            raise ValueError(
                f"fields shape {fields.shape} does not match batch {self.shape}"
            )
        return (fields * self.cell_weights()).sum(axis=(1, 2))

    def normalize(
        self,
        density: np.ndarray,
        telemetry=None,
        content_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Rescale every lane to unit mass.

        A zero-mass lane raises :class:`ValueError` naming the offending
        content; with enabled telemetry a ``diag.density.zero_mass``
        event carrying ``content=<index>`` is emitted first, so a
        strict-numerics abort identifies the lane that died.
        """
        density = np.asarray(density, dtype=float)
        if np.any(density < -1e-12):
            raise ValueError("density must be non-negative")
        density = np.maximum(density, 0.0)
        mass = self.integrate(density)
        if np.any(mass <= 0):
            bad = int(np.flatnonzero(mass <= 0)[0])
            content = int(content_ids[bad]) if content_ids is not None else bad
            message = (
                f"content {content}: density has zero mass; cannot normalise"
            )
            if telemetry is not None and getattr(telemetry, "enabled", False):
                telemetry.diag(
                    "density.zero_mass",
                    "error",
                    value=float(mass[bad]),
                    message=message,
                    content=content,
                )
            raise ValueError(message)
        return density / mass[:, None, None]
