"""Semi-Lagrangian solver backend for the coupled HJB-FPK system.

An alternative to the finite-difference solvers of
:mod:`repro.core.hjb` / :mod:`repro.core.fpk`.  Semi-Lagrangian schemes
integrate along characteristics:

* **HJB (backward).**  For each grid node and each candidate control
  ``x`` the scheme evaluates

      V(t, S) = max_x [ dt * U(x, S) + E[ V(t + dt, S + b(x) dt + noise) ] ]

  where the expectation over the Brownian increments uses the standard
  two-point quadrature ``(+sigma sqrt(dt), -sigma sqrt(dt))`` per
  dimension and bilinear interpolation of ``V(t + dt)``.  The scheme is
  monotone and **unconditionally stable** — no CFL sub-stepping — at
  the cost of a discrete control search.
* **FPK (forward).**  The adjoint operation: each cell's probability
  mass moves to its forward foot point (drift under the current policy
  plus the same two-point noise quadrature) and is deposited with
  bilinear weights, which conserves mass exactly.

The backend cross-validates the production Godunov/donor-cell solvers:
``tests/core/test_semilagrangian.py`` asserts both backends reach the
same equilibrium, and :class:`SLBestResponseIterator` exposes the same
interface as :class:`repro.core.best_response.BestResponseIterator`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.equilibrium import ConvergenceReport, EquilibriumResult, IterationRecord
from repro.core.best_response import build_grid
from repro.core.fpk import initial_density
from repro.core.grid import StateGrid
from repro.core.mean_field import MeanFieldEstimator, MeanFieldPath
from repro.core.parameters import MFGCPConfig
from repro.core.policy import CachingPolicy


def bilinear_interpolate(
    field: np.ndarray, grid: StateGrid, h_pts: np.ndarray, q_pts: np.ndarray
) -> np.ndarray:
    """Bilinear interpolation of a grid field at arbitrary points.

    Points outside the grid are clamped to the boundary (consistent
    with the reflecting state boundaries of the model).
    """
    field = np.asarray(field, dtype=float)
    if field.shape != grid.shape:
        raise ValueError(f"field shape {field.shape} != grid {grid.shape}")
    fh = np.clip((h_pts - grid.h[0]) / grid.dh, 0.0, grid.n_h - 1 - 1e-12)
    fq = np.clip((q_pts - grid.q[0]) / grid.dq, 0.0, grid.n_q - 1 - 1e-12)
    ih = fh.astype(int)
    iq = fq.astype(int)
    rh = fh - ih
    rq = fq - iq
    ih1 = np.minimum(ih + 1, grid.n_h - 1)
    iq1 = np.minimum(iq + 1, grid.n_q - 1)
    top = field[ih, iq] * (1.0 - rh) + field[ih1, iq] * rh
    bot = field[ih, iq1] * (1.0 - rh) + field[ih1, iq1] * rh
    return top * (1.0 - rq) + bot * rq


def bilinear_deposit(
    mass: np.ndarray, grid: StateGrid, h_pts: np.ndarray, q_pts: np.ndarray
) -> np.ndarray:
    """Scatter mass to grid nodes with bilinear weights (conservative).

    The adjoint of :func:`bilinear_interpolate`: total deposited mass
    equals total input mass exactly.
    """
    mass = np.asarray(mass, dtype=float).ravel()
    fh = np.clip((np.asarray(h_pts).ravel() - grid.h[0]) / grid.dh, 0.0, grid.n_h - 1 - 1e-12)
    fq = np.clip((np.asarray(q_pts).ravel() - grid.q[0]) / grid.dq, 0.0, grid.n_q - 1 - 1e-12)
    ih = fh.astype(int)
    iq = fq.astype(int)
    rh = fh - ih
    rq = fq - iq
    ih1 = np.minimum(ih + 1, grid.n_h - 1)
    iq1 = np.minimum(iq + 1, grid.n_q - 1)
    out = np.zeros(grid.shape)
    np.add.at(out, (ih, iq), mass * (1 - rh) * (1 - rq))
    np.add.at(out, (ih1, iq), mass * rh * (1 - rq))
    np.add.at(out, (ih, iq1), mass * (1 - rh) * rq)
    np.add.at(out, (ih1, iq1), mass * rh * rq)
    return out


class SLHJBSolver:
    """Semi-Lagrangian backward HJB solver (Eq. (20)).

    Parameters
    ----------
    n_control_levels:
        Size of the discrete control search grid over [0, 1].
    """

    def __init__(
        self, config: MFGCPConfig, grid: StateGrid, n_control_levels: int = 17
    ) -> None:
        if n_control_levels < 2:
            raise ValueError(
                f"need at least 2 control levels, got {n_control_levels}"
            )
        self.config = config
        self.grid = grid
        self.controls = np.linspace(0.0, 1.0, n_control_levels)
        self._utility = config.utility_model()
        ch = config.channel
        self._drift_h = 0.5 * ch.reversion * (ch.mean - grid.h)[:, None]
        self._rate_of_h = np.asarray(ch.rate_of_fading(grid.h), dtype=float)[:, None]
        self._sigma_h = ch.volatility
        self._sigma_q = config.caching.noise

    def _expectation(self, value_next: np.ndarray, h_foot: np.ndarray, q_foot: np.ndarray, dt: float) -> np.ndarray:
        """Two-point-per-dimension quadrature of E[V(S_foot + noise)]."""
        grid = self.grid
        dh = self._sigma_h * np.sqrt(dt)
        dq = self._sigma_q * np.sqrt(dt)
        total = np.zeros(grid.shape)
        for sh in (-1.0, 1.0):
            for sq in (-1.0, 1.0):
                total += bilinear_interpolate(
                    value_next, grid, h_foot + sh * dh, q_foot + sq * dq
                )
        return 0.25 * total

    def solve(
        self,
        mean_field: MeanFieldPath,
        terminal_value: Optional[np.ndarray] = None,
    ) -> "HJBSolutionLike":
        """Backward sweep; same contract as ``HJBSolver.solve``."""
        from repro.core.hjb import HJBSolution

        grid = self.grid
        cfg = self.config
        dt = grid.dt
        h_mesh = np.broadcast_to(grid.h[:, None], grid.shape)
        q_mesh = grid.q_mesh()
        h_foot = h_mesh + self._drift_h * dt

        value_path = np.empty(grid.path_shape)
        policy_path = np.empty(grid.path_shape)
        value = (
            np.zeros(grid.shape)
            if terminal_value is None
            else np.asarray(terminal_value, dtype=float).copy()
        )
        if value.shape != grid.shape:
            raise ValueError(f"terminal value shape {value.shape} != grid {grid.shape}")
        value_path[grid.n_t] = value
        policy_path[grid.n_t] = 0.0

        for ti in range(grid.n_t - 1, -1, -1):
            ctx = mean_field.context(ti)
            best_value = np.full(grid.shape, -np.inf)
            best_control = np.zeros(grid.shape)
            for x in self.controls:
                drift_q = float(cfg.drift_rate(np.array(x)))
                q_foot = np.clip(q_mesh + drift_q * dt, 0.0, cfg.content_size)
                candidate = dt * self._utility.total(
                    x, q_mesh, self._rate_of_h, ctx
                ) + self._expectation(value, h_foot, q_foot, dt)
                better = candidate > best_value
                best_value = np.where(better, candidate, best_value)
                best_control = np.where(better, x, best_control)
            value = best_value
            value_path[ti] = value
            policy_path[ti] = best_control

        return HJBSolution(
            grid=grid,
            value=value_path,
            policy=CachingPolicy(grid=grid, table=policy_path),
        )


class SLFPKSolver:
    """Semi-Lagrangian forward FPK solver (Eq. (15)), mass-conserving."""

    def __init__(self, config: MFGCPConfig, grid: StateGrid) -> None:
        self.config = config
        self.grid = grid
        ch = config.channel
        self._drift_h = 0.5 * ch.reversion * (ch.mean - grid.h)[:, None]
        self._sigma_h = ch.volatility
        self._sigma_q = config.caching.noise

    def solve(
        self,
        policy_table: np.ndarray,
        density0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Forward sweep; same contract as ``FPKSolver.solve``."""
        grid = self.grid
        cfg = self.config
        policy_table = np.asarray(policy_table, dtype=float)
        if policy_table.shape != grid.path_shape:
            raise ValueError(
                f"policy table shape {policy_table.shape} != grid {grid.path_shape}"
            )
        density = (
            initial_density(grid, cfg) if density0 is None
            else grid.normalize(np.asarray(density0, dtype=float))
        )
        dt = grid.dt
        h_mesh = np.broadcast_to(grid.h[:, None], grid.shape)
        q_mesh = grid.q_mesh()
        cell = grid.cell_weights()
        dh = self._sigma_h * np.sqrt(dt)
        dq = self._sigma_q * np.sqrt(dt)

        path = np.empty(grid.path_shape)
        path[0] = density
        for ti in range(grid.n_t):
            drift_q = cfg.drift_rate(policy_table[ti])
            h_foot = h_mesh + self._drift_h * dt
            q_foot = np.clip(q_mesh + drift_q * dt, 0.0, cfg.content_size)
            mass = density * cell
            new_mass = np.zeros(grid.shape)
            for sh in (-1.0, 1.0):
                for sq in (-1.0, 1.0):
                    new_mass += bilinear_deposit(
                        0.25 * mass, grid, h_foot + sh * dh, q_foot + sq * dq
                    )
            density = grid.normalize(new_mass / cell)
            path[ti + 1] = density
        return path


class SLBestResponseIterator:
    """Algorithm 2 on the semi-Lagrangian backend.

    Mirrors :class:`repro.core.best_response.BestResponseIterator` with
    the SL solvers substituted; used for cross-validation and for
    configurations whose CFL limits would make the explicit
    finite-difference solvers expensive.
    """

    def __init__(
        self,
        config: MFGCPConfig,
        grid: Optional[StateGrid] = None,
        n_control_levels: int = 17,
    ) -> None:
        self.config = config
        self.grid = grid if grid is not None else build_grid(config)
        self.hjb = SLHJBSolver(config, self.grid, n_control_levels)
        self.fpk = SLFPKSolver(config, self.grid)
        self.estimator = MeanFieldEstimator(config, self.grid)

    def solve(
        self,
        density0: Optional[np.ndarray] = None,
        initial_policy_level: float = 0.5,
    ) -> EquilibriumResult:
        """Run the damped fixed-point loop to an MFG equilibrium."""
        cfg = self.config
        grid = self.grid
        if density0 is None:
            density0 = initial_density(grid, cfg)
        if not 0.0 <= initial_policy_level <= 1.0:
            raise ValueError(
                f"policy level must lie in [0, 1], got {initial_policy_level}"
            )

        policy_table = np.full(grid.path_shape, float(initial_policy_level))
        density_path = self.fpk.solve(policy_table, density0)
        mean_field = self.estimator.estimate(density_path, policy_table)

        history = []
        converged = False
        policy_change = np.inf
        solution = None
        for iteration in range(1, cfg.max_iterations + 1):
            solution = self.hjb.solve(mean_field)
            new_table = solution.policy.table
            policy_change = float(np.max(np.abs(new_table - policy_table)))
            policy_table = (
                (1.0 - cfg.damping) * policy_table + cfg.damping * new_table
            )
            density_path = self.fpk.solve(policy_table, density0)
            new_mean_field = self.estimator.estimate(density_path, policy_table)
            mf_change = mean_field.distance(new_mean_field)
            mean_field = new_mean_field
            history.append(
                IterationRecord(
                    iteration=iteration,
                    policy_change=policy_change,
                    mean_field_change=mf_change,
                    mean_price=float(mean_field.price.mean()),
                    mean_control=float(mean_field.mean_control.mean()),
                )
            )
            # The discrete control grid quantises the best response, so
            # convergence is declared at the control-grid resolution.
            resolution = 1.0 / (len(self.hjb.controls) - 1)
            if policy_change <= max(cfg.tolerance, 1.01 * cfg.damping * resolution):
                converged = True
                break

        assert solution is not None
        report = ConvergenceReport(
            converged=converged,
            n_iterations=len(history),
            final_policy_change=policy_change,
            history=history,
        )
        return EquilibriumResult(
            config=cfg,
            grid=grid,
            value=solution.value,
            policy=CachingPolicy(grid=grid, table=policy_table),
            density=density_path,
            mean_field=mean_field,
            report=report,
        )
