"""Stationary (infinite-horizon, discounted) mean-field equilibrium.

The paper solves a finite optimization epoch ``[0, T]`` with terminal
value ``V(T) = 0``, which makes the caching policy decay to zero near
the horizon (Figs. 5, 11).  Operators running the market continuously
care about the *stationary* regime instead: the discounted HJB

    rho V(S) = max_x [ U(x, S; market) + b(x, S) . grad V
                       + (1/2) sigma^2 : hess V ]

coupled with the stationary FPK equation (the invariant density of the
controlled diffusion) and time-constant market quantities.  This
module solves that system by

* value iteration — artificial-time marching of the discounted HJB,
  reusing the monotone Godunov machinery of
  :class:`repro.core.hjb.HJBSolver`;
* power iteration — repeated conservative FPK steps until the density
  stops moving;
* a damped fixed point over the stationary market scalars (price,
  peer state, sharing benefit), mirroring Alg. 2.

The result has no terminal artifact: the equilibrium policy keeps a
strictly positive caching rate wherever the finite-horizon policy is
interior at mid-epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.best_response import build_grid
from repro.core.fpk import FPKSolver, initial_density
from repro.core.grid import StateGrid
from repro.core.hjb import HJBSolver
from repro.core.parameters import MFGCPConfig
from repro.economics.sharing import mean_field_sharing_benefit
from repro.economics.utility import MarketContext


@dataclass(frozen=True)
class StationaryResult:
    """The stationary mean-field equilibrium.

    Attributes
    ----------
    grid:
        The state grid.
    value:
        Stationary discounted value function ``V(h, q)``.
    policy:
        Stationary caching policy ``x*(h, q)``.
    density:
        The invariant population density.
    price, mean_q, sharing_benefit, mean_control:
        The stationary market scalars.
    converged:
        Whether the outer market fixed point met its tolerance.
    n_iterations:
        Outer iterations used.
    """

    config: MFGCPConfig
    discount: float
    grid: StateGrid
    value: np.ndarray
    policy: np.ndarray
    density: np.ndarray
    price: float
    mean_q: float
    sharing_benefit: float
    mean_control: float
    converged: bool
    n_iterations: int

    def utility_rate(self) -> float:
        """Population-average stationary Eq. (10) utility rate."""
        cfg = self.config
        utility = cfg.utility_model()
        rate_of_h = np.asarray(
            cfg.channel.rate_of_fading(self.grid.h), dtype=float
        )[:, None]
        ctx = MarketContext(
            n_requests=cfg.n_requests,
            price=self.price,
            q_other=self.mean_q,
            sharing_benefit=self.sharing_benefit,
        )
        total = utility.total(self.policy, self.grid.q_mesh(), rate_of_h, ctx)
        return float(
            (total * self.density * self.grid.cell_weights()).sum()
        )


class StationarySolver:
    """Discounted stationary MFG solver.

    Parameters
    ----------
    config:
        Model parameters (the horizon fields are ignored except as the
        artificial-time step source).
    discount:
        Discount rate ``rho > 0``; smaller values weigh the long run
        more heavily (and slow the value iteration).
    """

    def __init__(
        self,
        config: MFGCPConfig,
        discount: float = 1.0,
        grid: Optional[StateGrid] = None,
    ) -> None:
        if discount <= 0:
            raise ValueError(f"discount must be positive, got {discount}")
        self.config = config
        self.discount = float(discount)
        self.grid = grid if grid is not None else build_grid(config)
        self._hjb = HJBSolver(config, self.grid)
        self._fpk = FPKSolver(config, self.grid)
        self._dt = self.grid.dt / self._hjb.substeps_per_interval()

    # ------------------------------------------------------------------
    # Inner solves
    # ------------------------------------------------------------------
    def value_iteration(
        self,
        ctx: MarketContext,
        value0: Optional[np.ndarray] = None,
        tol: float = 1e-4,
        max_steps: int = 20000,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Artificial-time marching of the discounted HJB to steady state.

        Returns the stationary value sheet and its Godunov policy.
        Convergence is measured by the residual ``|dV| / dt`` relative
        to the value scale.
        """
        value = (
            np.zeros(self.grid.shape) if value0 is None else value0.copy()
        )
        dt = self._dt
        for _ in range(max_steps):
            rhs, control = self._hjb._step_rhs(value, ctx)
            update = dt * (rhs - self.discount * value)
            value = value + update
            residual = float(np.max(np.abs(update))) / dt
            if residual < tol * (1.0 + float(np.max(np.abs(value)))):
                return value, control
        raise RuntimeError(
            f"value iteration did not converge in {max_steps} steps "
            f"(residual {residual:.3e})"
        )

    def stationary_density(
        self,
        policy: np.ndarray,
        density0: Optional[np.ndarray] = None,
        tol: float = 1e-6,
        max_steps: int = 20000,
    ) -> np.ndarray:
        """Power iteration of the conservative FPK step to its fixed point.

        Convergence is measured relative to the density scale — the
        clip-and-renormalise step can leave a tiny persistent limit
        cycle well below any physically meaningful amplitude.
        """
        density = (
            initial_density(self.grid, self.config)
            if density0 is None
            else self.grid.normalize(density0)
        )
        drift_q = self.config.drift_rate(policy)
        dt = self.grid.dt / self._fpk.substeps_per_interval()
        for _ in range(max_steps):
            new = self._fpk._step(density, drift_q, dt)
            change = float(np.max(np.abs(new - density)))
            density = new
            if change < tol * (1.0 + float(density.max())):
                return density
        raise RuntimeError(
            f"stationary density iteration did not converge in {max_steps} "
            f"steps (change {change:.3e})"
        )

    # ------------------------------------------------------------------
    # Market fixed point
    # ------------------------------------------------------------------
    def _market_from(self, density: np.ndarray, policy: np.ndarray) -> MarketContext:
        cfg = self.config
        weights = self.grid.cell_weights()
        q_mesh = self.grid.q_mesh()
        mean_control = float((density * policy * weights).sum())
        mean_q = float((density * q_mesh * weights).sum())
        price = float(cfg.pricing_model().mean_field(cfg.content_size, mean_control))
        threshold = cfg.alpha * cfg.content_size
        low = (q_mesh <= threshold).astype(float)
        mass_low = float(np.clip((density * low * weights).sum(), 0.0, 1.0))
        partial_low = float((density * q_mesh * low * weights).sum())
        partial_high = float((density * q_mesh * (1 - low) * weights).sum())
        if cfg.include_sharing:
            benefit = float(
                mean_field_sharing_benefit(
                    cfg.sharing_price,
                    abs(partial_low - partial_high),
                    cfg.n_edps,
                    (1.0 - mass_low) ** 2 * cfg.n_edps,
                    mass_low * cfg.n_edps,
                )
            )
        else:
            benefit = 0.0
        return MarketContext(
            n_requests=cfg.n_requests,
            price=price,
            q_other=mean_q,
            sharing_benefit=benefit,
        )

    def solve(
        self,
        max_iterations: Optional[int] = None,
        tolerance: Optional[float] = None,
    ) -> StationaryResult:
        """Run the damped market fixed point to the stationary equilibrium."""
        cfg = self.config
        max_iterations = (
            cfg.max_iterations if max_iterations is None else int(max_iterations)
        )
        tolerance = cfg.tolerance if tolerance is None else float(tolerance)

        policy = np.full(self.grid.shape, 0.5)
        density = self.stationary_density(policy)
        ctx = self._market_from(density, policy)

        value = None
        converged = False
        policy_change = np.inf
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            value, new_policy = self.value_iteration(ctx, value0=value)
            policy_change = float(np.max(np.abs(new_policy - policy)))
            policy = (1.0 - cfg.damping) * policy + cfg.damping * new_policy
            density = self.stationary_density(policy, density0=density)
            ctx = self._market_from(density, policy)
            if policy_change < tolerance:
                converged = True
                break

        assert value is not None
        return StationaryResult(
            config=cfg,
            discount=self.discount,
            grid=self.grid,
            value=value,
            policy=np.clip(policy, 0.0, 1.0),
            density=density,
            price=ctx.price,
            mean_q=ctx.q_other,
            sharing_benefit=ctx.sharing_benefit,
            mean_control=float(
                (density * policy * self.grid.cell_weights()).sum()
            ),
            converged=converged,
            n_iterations=iteration,
        )
