"""Finite-difference operators for the HJB/FPK solvers.

Section V-A: "we employ the finite difference method to numerically
solve the coupled HJB and FPK equations."  Two flavours are needed:

* **Non-conservative** operators for the HJB equation (Eq. (20)):
  upwind first derivatives selected by the sign of the local drift and
  central second derivatives, with one-sided (Neumann-like) closures at
  the boundary.
* **Conservative** operators for the FPK equation (Eq. (15)): the
  advection term is written as a flux divergence with donor-cell
  upwinding and *zero-flux* boundaries, and the diffusion term likewise
  as the divergence of ``D * grad(rho)`` with zero boundary flux — this
  keeps total probability mass exactly conserved, which the property
  tests assert.

All operators act on 2-D fields shaped ``(n_h, n_q)``; ``axis=0`` is
the fading dimension and ``axis=1`` the cache dimension.

**Batched variants.**  The ``batched_*`` functions apply the same
stencils to a stack of fields shaped ``(B, n_h, n_q)`` — one lane per
content — in a single numpy call.  ``axis`` still names the *spatial*
axis (0 = fading, 1 = cache); the leading batch axis is never mixed.
``spacing`` may be a scalar (shared grid step) or a per-lane array of
shape ``(B,)`` / ``(B, 1, 1)`` (each content's cache axis spans its own
``[0, Q_k]``).  Every batched stencil is elementwise along the batch
axis, so lane ``b`` of the output is bit-identical to running the 2-D
operator on lane ``b`` alone — the equivalence tests assert exactly
that.
"""

from __future__ import annotations

import numpy as np


def _check_2d(name: str, arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got ndim={arr.ndim}")
    return arr


def _check_batched(name: str, arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr, dtype=float)
    if arr.ndim != 3:
        raise ValueError(
            f"{name} must be 3-D (batch, n_h, n_q), got ndim={arr.ndim}"
        )
    return arr


def _batched_spacing(spacing, n_lanes: int):
    """Validate a shared or per-lane spacing; returns a broadcastable value.

    Scalars pass through; per-lane arrays of shape ``(B,)`` or
    ``(B, 1, 1)`` are reshaped to ``(B, 1, 1)`` so they broadcast
    against ``(B, n_h, n_q)`` fields.
    """
    arr = np.asarray(spacing, dtype=float)
    if arr.ndim == 0:
        if arr <= 0:
            raise ValueError(f"spacing must be positive, got {float(arr)}")
        return float(arr)
    if arr.size != n_lanes:
        raise ValueError(
            f"per-lane spacing needs {n_lanes} entries, got shape {arr.shape}"
        )
    arr = arr.reshape(n_lanes, 1, 1)
    if np.any(arr <= 0):
        raise ValueError("per-lane spacings must all be positive")
    return arr


def _to_last_axis(field: np.ndarray, axis: int) -> np.ndarray:
    """View with the requested spatial axis moved last (batch axis fixed)."""
    if axis == 0:
        return np.swapaxes(field, 1, 2)
    if axis == 1:
        return field
    raise ValueError(f"axis must be 0 or 1, got {axis}")


def upwind_gradient(field: np.ndarray, spacing: float, velocity: np.ndarray, axis: int) -> np.ndarray:
    """First derivative with upwinding chosen by the drift sign.

    For positive velocity information flows from lower indices, so the
    backward difference is used; for negative velocity the forward
    difference.  Boundary rows fall back to the available one-sided
    difference.
    """
    field = _check_2d("field", field)
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    velocity = np.broadcast_to(np.asarray(velocity, dtype=float), field.shape)

    forward = np.empty_like(field)
    backward = np.empty_like(field)
    if axis == 0:
        forward[:-1, :] = (field[1:, :] - field[:-1, :]) / spacing
        forward[-1, :] = forward[-2, :]
        backward[1:, :] = (field[1:, :] - field[:-1, :]) / spacing
        backward[0, :] = backward[1, :]
    elif axis == 1:
        forward[:, :-1] = (field[:, 1:] - field[:, :-1]) / spacing
        forward[:, -1] = forward[:, -2]
        backward[:, 1:] = (field[:, 1:] - field[:, :-1]) / spacing
        backward[:, 0] = backward[:, 1]
    else:
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    return np.where(velocity > 0, backward, forward)


def central_gradient(field: np.ndarray, spacing: float, axis: int) -> np.ndarray:
    """Central first derivative with one-sided boundary closures."""
    field = _check_2d("field", field)
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    grad = np.empty_like(field)
    if axis == 0:
        grad[1:-1, :] = (field[2:, :] - field[:-2, :]) / (2.0 * spacing)
        grad[0, :] = (field[1, :] - field[0, :]) / spacing
        grad[-1, :] = (field[-1, :] - field[-2, :]) / spacing
    elif axis == 1:
        grad[:, 1:-1] = (field[:, 2:] - field[:, :-2]) / (2.0 * spacing)
        grad[:, 0] = (field[:, 1] - field[:, 0]) / spacing
        grad[:, -1] = (field[:, -1] - field[:, -2]) / spacing
    else:
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    return grad


def second_derivative(field: np.ndarray, spacing: float, axis: int) -> np.ndarray:
    """Central second derivative with reflected (Neumann) boundaries."""
    field = _check_2d("field", field)
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    lap = np.empty_like(field)
    s2 = spacing * spacing
    if axis == 0:
        lap[1:-1, :] = (field[2:, :] - 2.0 * field[1:-1, :] + field[:-2, :]) / s2
        lap[0, :] = 2.0 * (field[1, :] - field[0, :]) / s2
        lap[-1, :] = 2.0 * (field[-2, :] - field[-1, :]) / s2
    elif axis == 1:
        lap[:, 1:-1] = (field[:, 2:] - 2.0 * field[:, 1:-1] + field[:, :-2]) / s2
        lap[:, 0] = 2.0 * (field[:, 1] - field[:, 0]) / s2
        lap[:, -1] = 2.0 * (field[:, -2] - field[:, -1]) / s2
    else:
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    return lap


def conservative_advection(density: np.ndarray, velocity: np.ndarray, spacing: float, axis: int) -> np.ndarray:
    """``-d(v * rho)/dx`` via donor-cell fluxes with zero-flux boundaries.

    The interface flux between cells ``i`` and ``i+1`` is
    ``F = v_f^+ rho_i + v_f^- rho_{i+1}`` with ``v_f`` the interface
    velocity average; the boundary fluxes are forced to zero so the
    scheme conserves mass exactly (sum over cells of the returned
    update is zero).
    """
    density = _check_2d("density", density)
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    velocity = np.broadcast_to(np.asarray(velocity, dtype=float), density.shape)
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    if axis == 1:
        density_t = density
        velocity_t = velocity
    else:
        density_t = density.T
        velocity_t = velocity.T

    # Interface velocities between consecutive cells along the last axis.
    v_face = 0.5 * (velocity_t[:, :-1] + velocity_t[:, 1:])
    flux = np.maximum(v_face, 0.0) * density_t[:, :-1] + np.minimum(v_face, 0.0) * density_t[:, 1:]
    # Zero-flux boundaries: pad with zeros at both ends.
    flux_full = np.zeros((density_t.shape[0], density_t.shape[1] + 1))
    flux_full[:, 1:-1] = flux
    update = -(flux_full[:, 1:] - flux_full[:, :-1]) / spacing
    return update if axis == 1 else update.T


def conservative_diffusion(density: np.ndarray, diffusivity: float, spacing: float, axis: int) -> np.ndarray:
    """``d/dx ( D d(rho)/dx )`` with zero-flux boundaries (conservative)."""
    density = _check_2d("density", density)
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    if diffusivity < 0:
        raise ValueError(f"diffusivity must be non-negative, got {diffusivity}")
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    density_t = density if axis == 1 else density.T
    grad = (density_t[:, 1:] - density_t[:, :-1]) / spacing
    flux_full = np.zeros((density_t.shape[0], density_t.shape[1] + 1))
    flux_full[:, 1:-1] = diffusivity * grad
    update = (flux_full[:, 1:] - flux_full[:, :-1]) / spacing
    return update if axis == 1 else update.T


def batched_upwind_gradient(
    field: np.ndarray, spacing, velocity: np.ndarray, axis: int
) -> np.ndarray:
    """Batched :func:`upwind_gradient` over ``(B, n_h, n_q)`` lanes.

    ``velocity`` broadcasts against the field (per-lane drift tables or
    a shared ``(n_h, 1)`` profile alike); ``spacing`` may be per lane.
    """
    field = _check_batched("field", field)
    spacing = _batched_spacing(spacing, field.shape[0])
    velocity = np.broadcast_to(np.asarray(velocity, dtype=float), field.shape)

    f = _to_last_axis(field, axis)
    v = _to_last_axis(velocity, axis)
    forward = np.empty_like(f)
    backward = np.empty_like(f)
    diff = (f[:, :, 1:] - f[:, :, :-1]) / spacing
    forward[:, :, :-1] = diff
    forward[:, :, -1] = forward[:, :, -2]
    backward[:, :, 1:] = diff
    backward[:, :, 0] = backward[:, :, 1]
    grad = np.where(v > 0, backward, forward)
    return _to_last_axis(grad, axis)


def batched_central_gradient(field: np.ndarray, spacing, axis: int) -> np.ndarray:
    """Batched :func:`central_gradient` over ``(B, n_h, n_q)`` lanes."""
    field = _check_batched("field", field)
    spacing = _batched_spacing(spacing, field.shape[0])
    f = _to_last_axis(field, axis)
    grad = np.empty_like(f)
    grad[:, :, 1:-1] = (f[:, :, 2:] - f[:, :, :-2]) / (2.0 * spacing)
    grad[:, :, :1] = (f[:, :, 1:2] - f[:, :, 0:1]) / spacing
    grad[:, :, -1:] = (f[:, :, -1:] - f[:, :, -2:-1]) / spacing
    return _to_last_axis(grad, axis)


def batched_second_derivative(field: np.ndarray, spacing, axis: int) -> np.ndarray:
    """Batched :func:`second_derivative` over ``(B, n_h, n_q)`` lanes."""
    field = _check_batched("field", field)
    spacing = _batched_spacing(spacing, field.shape[0])
    f = _to_last_axis(field, axis)
    s2 = spacing * spacing
    lap = np.empty_like(f)
    lap[:, :, 1:-1] = (f[:, :, 2:] - 2.0 * f[:, :, 1:-1] + f[:, :, :-2]) / s2
    lap[:, :, :1] = 2.0 * (f[:, :, 1:2] - f[:, :, 0:1]) / s2
    lap[:, :, -1:] = 2.0 * (f[:, :, -2:-1] - f[:, :, -1:]) / s2
    return _to_last_axis(lap, axis)


def batched_conservative_advection(
    density: np.ndarray, velocity: np.ndarray, spacing, axis: int
) -> np.ndarray:
    """Batched :func:`conservative_advection` over ``(B, n_h, n_q)`` lanes.

    Donor-cell fluxes with zero-flux boundaries per lane; the per-lane
    column sums of the update remain exactly zero, so each lane's total
    mass is conserved just like the scalar scheme.
    """
    density = _check_batched("density", density)
    spacing = _batched_spacing(spacing, density.shape[0])
    velocity = np.broadcast_to(np.asarray(velocity, dtype=float), density.shape)

    d = _to_last_axis(density, axis)
    v = _to_last_axis(velocity, axis)
    v_face = 0.5 * (v[:, :, :-1] + v[:, :, 1:])
    flux = (
        np.maximum(v_face, 0.0) * d[:, :, :-1]
        + np.minimum(v_face, 0.0) * d[:, :, 1:]
    )
    flux_full = np.zeros(d.shape[:-1] + (d.shape[-1] + 1,))
    flux_full[:, :, 1:-1] = flux
    update = -(flux_full[:, :, 1:] - flux_full[:, :, :-1]) / spacing
    return _to_last_axis(update, axis)


def batched_conservative_diffusion(
    density: np.ndarray, diffusivity: float, spacing, axis: int
) -> np.ndarray:
    """Batched :func:`conservative_diffusion` over ``(B, n_h, n_q)`` lanes."""
    density = _check_batched("density", density)
    spacing = _batched_spacing(spacing, density.shape[0])
    if diffusivity < 0:
        raise ValueError(f"diffusivity must be non-negative, got {diffusivity}")
    d = _to_last_axis(density, axis)
    grad = (d[:, :, 1:] - d[:, :, :-1]) / spacing
    flux_full = np.zeros(d.shape[:-1] + (d.shape[-1] + 1,))
    flux_full[:, :, 1:-1] = diffusivity * grad
    update = (flux_full[:, :, 1:] - flux_full[:, :, :-1]) / spacing
    return _to_last_axis(update, axis)


def stable_time_step(
    max_drift_h: float,
    max_drift_q: float,
    dh: float,
    dq: float,
    diff_h: float,
    diff_q: float,
    safety: float = 0.45,
) -> float:
    """CFL-limited explicit time step for the advection-diffusion system.

    Combines the advection limits ``dx / |b|`` and the diffusion limits
    ``dx^2 / (2 D)`` per axis; the most restrictive wins, scaled by the
    safety factor.
    """
    if dh <= 0 or dq <= 0:
        raise ValueError("grid spacings must be positive")
    if not 0.0 < safety <= 1.0:
        raise ValueError(f"safety must lie in (0, 1], got {safety}")
    limits = []
    if max_drift_h > 0:
        limits.append(dh / max_drift_h)
    if max_drift_q > 0:
        limits.append(dq / max_drift_q)
    if diff_h > 0:
        limits.append(dh * dh / (2.0 * diff_h))
    if diff_q > 0:
        limits.append(dq * dq / (2.0 * diff_q))
    if not limits:
        return np.inf
    return safety * min(limits)
