"""Forward FPK solver for the population density, Eq. (15).

When every EDP follows the solved optimal strategy, the mean-field
density ``lambda(t, h, q)`` evolves by the Fokker-Planck-Kolmogorov
equation

    d_t lambda + d_h( b_h lambda ) + d_q( b_q(x*) lambda )
        - (1/2) rho_h^2 d_hh lambda - (1/2) rho_q^2 d_qq lambda = 0

with ``b_h = (1/2) varsigma_h (upsilon_h - h)`` and ``b_q`` the Eq. (4)
drift under the current policy.  The solver uses conservative
donor-cell advection and zero-flux diffusion so total probability mass
is preserved exactly; the reflecting boundary in ``q`` mirrors the
physical clamp of the remaining space to ``[0, Q_k]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.stats import norm

from repro.core.grid import StateGrid
from repro.core.operators import (
    conservative_advection,
    conservative_diffusion,
    stable_time_step,
)
from repro.core.parameters import MFGCPConfig


def initial_density(
    grid: StateGrid,
    config: MFGCPConfig,
    mean_q: Optional[float] = None,
    std_q: Optional[float] = None,
) -> np.ndarray:
    """The initial mean-field density ``lambda(0, h, q)``.

    The paper draws the initial cache state from a normal distribution
    (default ``N(0.7 Q, (0.1 Q)^2)``); the fading coordinate starts in
    the OU stationary law.  Both marginals are truncated to the grid
    and the product is normalised to unit mass.
    """
    mq, sq = config.initial_density_moments()
    mean_q = mq if mean_q is None else float(mean_q)
    std_q = sq if std_q is None else float(std_q)
    if std_q <= 0:
        raise ValueError(f"std_q must be positive, got {std_q}")

    ou_mean, ou_std = config.ou_process().stationary_moments()
    if ou_std <= 0:
        # Deterministic channel: a sharp peak at the mean.
        h_density = np.zeros(grid.n_h)
        h_density[grid.locate(ou_mean, 0.0)[0]] = 1.0
    else:
        h_density = norm.pdf(grid.h, loc=ou_mean, scale=ou_std)
    q_density = norm.pdf(grid.q, loc=mean_q, scale=std_q)
    density = np.outer(h_density, q_density)
    return grid.normalize(density)


class FPKSolver:
    """Explicit conservative finite-difference solver for Eq. (15).

    ``telemetry`` is optional and only consulted on failure paths (the
    zero-mass guard in :meth:`StateGrid.normalize`); passing it lets a
    dying forward sweep record a ``diag.density.zero_mass`` event
    before raising.
    """

    def __init__(
        self, config: MFGCPConfig, grid: StateGrid, telemetry=None
    ) -> None:
        self.config = config
        self.grid = grid
        self.telemetry = telemetry
        ch = config.channel
        self._drift_h = 0.5 * ch.reversion * (ch.mean - grid.h)[:, None]
        self._diff_h = 0.5 * ch.volatility**2
        self._diff_q = 0.5 * config.caching.noise**2

    def stable_step(self) -> float:
        """The CFL-stable explicit time step for this configuration."""
        cfg = self.config
        max_bh = float(np.max(np.abs(self._drift_h)))
        drift0 = float(np.abs(cfg.drift_rate(np.array(0.0))))
        drift1 = float(np.abs(cfg.drift_rate(np.array(1.0))))
        max_bq = max(drift0, drift1)
        return stable_time_step(
            max_bh, max_bq, self.grid.dh, self.grid.dq, self._diff_h, self._diff_q
        )

    def substeps_per_interval(self) -> int:
        """Number of CFL substeps per reporting interval."""
        return max(1, int(np.ceil(self.grid.dt / self.stable_step())))

    def _step(self, density: np.ndarray, drift_q: np.ndarray, dt: float) -> np.ndarray:
        """One explicit conservative step of Eq. (15)."""
        grid = self.grid
        update = (
            conservative_advection(density, self._drift_h, grid.dh, axis=0)
            + conservative_advection(density, drift_q, grid.dq, axis=1)
            + conservative_diffusion(density, self._diff_h, grid.dh, axis=0)
            + conservative_diffusion(density, self._diff_q, grid.dq, axis=1)
        )
        new = density + dt * update
        # Donor-cell + explicit diffusion can undershoot by rounding at
        # steep fronts; clip and renormalise to keep a probability law.
        new = np.maximum(new, 0.0)
        return grid.normalize(new, telemetry=self.telemetry)

    def solve(
        self,
        policy_table: np.ndarray,
        density0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Forward sweep from ``lambda(0)`` under the given policy.

        Parameters
        ----------
        policy_table:
            ``x*(t, h, q)`` of shape ``grid.path_shape`` — each
            reporting interval uses its left-endpoint policy sheet.
        density0:
            Initial density; defaults to :func:`initial_density`.

        Returns
        -------
        numpy.ndarray
            Density path of shape ``grid.path_shape`` with unit mass at
            every reporting time.
        """
        grid = self.grid
        policy_table = np.asarray(policy_table, dtype=float)
        if policy_table.shape != grid.path_shape:
            raise ValueError(
                f"policy table shape {policy_table.shape} != grid "
                f"{grid.path_shape}"
            )
        if density0 is None:
            density = initial_density(grid, self.config)
        else:
            density = grid.normalize(
                np.asarray(density0, dtype=float), telemetry=self.telemetry
            )

        path = np.empty(grid.path_shape)
        path[0] = density
        n_sub = self.substeps_per_interval()
        dt_sub = grid.dt / n_sub
        for ti in range(grid.n_t):
            drift_q = self.config.drift_rate(policy_table[ti])
            for _ in range(n_sub):
                density = self._step(density, drift_q, dt_sub)
            path[ti + 1] = density
        return path
