"""Forward FPK solver for the population density, Eq. (15).

When every EDP follows the solved optimal strategy, the mean-field
density ``lambda(t, h, q)`` evolves by the Fokker-Planck-Kolmogorov
equation

    d_t lambda + d_h( b_h lambda ) + d_q( b_q(x*) lambda )
        - (1/2) rho_h^2 d_hh lambda - (1/2) rho_q^2 d_qq lambda = 0

with ``b_h = (1/2) varsigma_h (upsilon_h - h)`` and ``b_q`` the Eq. (4)
drift under the current policy.  The solver uses conservative
donor-cell advection and zero-flux diffusion so total probability mass
is preserved exactly; the reflecting boundary in ``q`` mirrors the
physical clamp of the remaining space to ``[0, Q_k]``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.stats import norm

from repro.core.grid import BatchGrid, StateGrid
from repro.core.operators import (
    batched_conservative_advection,
    batched_conservative_diffusion,
    conservative_advection,
    conservative_diffusion,
    stable_time_step,
)
from repro.core.parameters import MFGCPConfig


def initial_density(
    grid: StateGrid,
    config: MFGCPConfig,
    mean_q: Optional[float] = None,
    std_q: Optional[float] = None,
) -> np.ndarray:
    """The initial mean-field density ``lambda(0, h, q)``.

    The paper draws the initial cache state from a normal distribution
    (default ``N(0.7 Q, (0.1 Q)^2)``); the fading coordinate starts in
    the OU stationary law.  Both marginals are truncated to the grid
    and the product is normalised to unit mass.
    """
    mq, sq = config.initial_density_moments()
    mean_q = mq if mean_q is None else float(mean_q)
    std_q = sq if std_q is None else float(std_q)
    if std_q <= 0:
        raise ValueError(f"std_q must be positive, got {std_q}")

    ou_mean, ou_std = config.ou_process().stationary_moments()
    if ou_std <= 0:
        # Deterministic channel: a sharp peak at the mean.
        h_density = np.zeros(grid.n_h)
        h_density[grid.locate(ou_mean, 0.0)[0]] = 1.0
    else:
        h_density = norm.pdf(grid.h, loc=ou_mean, scale=ou_std)
    q_density = norm.pdf(grid.q, loc=mean_q, scale=std_q)
    density = np.outer(h_density, q_density)
    return grid.normalize(density)


class FPKSolver:
    """Explicit conservative finite-difference solver for Eq. (15).

    ``telemetry`` is optional and only consulted on failure paths (the
    zero-mass guard in :meth:`StateGrid.normalize`); passing it lets a
    dying forward sweep record a ``diag.density.zero_mass`` event
    before raising.
    """

    def __init__(
        self, config: MFGCPConfig, grid: StateGrid, telemetry=None
    ) -> None:
        self.config = config
        self.grid = grid
        self.telemetry = telemetry
        ch = config.channel
        self._drift_h = 0.5 * ch.reversion * (ch.mean - grid.h)[:, None]
        self._diff_h = 0.5 * ch.volatility**2
        self._diff_q = 0.5 * config.caching.noise**2

    def stable_step(self) -> float:
        """The CFL-stable explicit time step for this configuration."""
        cfg = self.config
        max_bh = float(np.max(np.abs(self._drift_h)))
        drift0 = float(np.abs(cfg.drift_rate(np.array(0.0))))
        drift1 = float(np.abs(cfg.drift_rate(np.array(1.0))))
        max_bq = max(drift0, drift1)
        return stable_time_step(
            max_bh, max_bq, self.grid.dh, self.grid.dq, self._diff_h, self._diff_q
        )

    def substeps_per_interval(self) -> int:
        """Number of CFL substeps per reporting interval."""
        return max(1, int(np.ceil(self.grid.dt / self.stable_step())))

    def _step(self, density: np.ndarray, drift_q: np.ndarray, dt: float) -> np.ndarray:
        """One explicit conservative step of Eq. (15)."""
        grid = self.grid
        update = (
            conservative_advection(density, self._drift_h, grid.dh, axis=0)
            + conservative_advection(density, drift_q, grid.dq, axis=1)
            + conservative_diffusion(density, self._diff_h, grid.dh, axis=0)
            + conservative_diffusion(density, self._diff_q, grid.dq, axis=1)
        )
        new = density + dt * update
        # Donor-cell + explicit diffusion can undershoot by rounding at
        # steep fronts; clip and renormalise to keep a probability law.
        new = np.maximum(new, 0.0)
        return grid.normalize(new, telemetry=self.telemetry)

    def solve(
        self,
        policy_table: np.ndarray,
        density0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Forward sweep from ``lambda(0)`` under the given policy.

        Parameters
        ----------
        policy_table:
            ``x*(t, h, q)`` of shape ``grid.path_shape`` — each
            reporting interval uses its left-endpoint policy sheet.
        density0:
            Initial density; defaults to :func:`initial_density`.

        Returns
        -------
        numpy.ndarray
            Density path of shape ``grid.path_shape`` with unit mass at
            every reporting time.
        """
        grid = self.grid
        policy_table = np.asarray(policy_table, dtype=float)
        if policy_table.shape != grid.path_shape:
            raise ValueError(
                f"policy table shape {policy_table.shape} != grid "
                f"{grid.path_shape}"
            )
        if density0 is None:
            density = initial_density(grid, self.config)
        else:
            density = grid.normalize(
                np.asarray(density0, dtype=float), telemetry=self.telemetry
            )

        path = np.empty(grid.path_shape)
        path[0] = density
        n_sub = self.substeps_per_interval()
        dt_sub = grid.dt / n_sub
        for ti in range(grid.n_t):
            drift_q = self.config.drift_rate(policy_table[ti])
            for _ in range(n_sub):
                density = self._step(density, drift_q, dt_sub)
            path[ti + 1] = density
        return path


def batched_initial_density(
    grid: BatchGrid, configs: Sequence[MFGCPConfig]
) -> np.ndarray:
    """Per-lane :func:`initial_density`, stacked to ``(B, n_h, n_q)``.

    Each lane's marginals come from its own config (``N(0.7 Q_k,
    (0.1 Q_k)^2)`` over that lane's cache axis), so lane ``b`` is
    bit-identical to ``initial_density(grid.lane(b), configs[b])``.
    """
    if len(configs) != grid.n_lanes:
        raise ValueError(f"{len(configs)} configs for {grid.n_lanes} lanes")
    return np.stack(
        [
            initial_density(grid.lane(b), cfg)
            for b, cfg in enumerate(configs)
        ]
    )


class BatchedFPKSolver:
    """One vectorized forward sweep over a batch of content lanes.

    Mirrors :class:`FPKSolver` with the content axis leading: the
    donor-cell advection, zero-flux diffusion, positivity clip, and
    per-substep renormalisation all act elementwise along the batch, so
    every lane's density path matches its scalar solve bit-for-bit.
    ``content_ids`` names the lanes in zero-mass diagnostics so a
    strict-numerics abort identifies the offending content.
    """

    def __init__(
        self,
        configs: Sequence[MFGCPConfig],
        grid: BatchGrid,
        telemetry=None,
        content_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.configs = list(configs)
        self.grid = grid
        self.telemetry = telemetry
        if len(self.configs) != grid.n_lanes:
            raise ValueError(
                f"{len(self.configs)} configs for {grid.n_lanes} grid lanes"
            )
        self.content_ids = (
            list(range(grid.n_lanes))
            if content_ids is None
            else [int(k) for k in content_ids]
        )
        self.lane_solvers = [
            FPKSolver(cfg, grid.lane(b), telemetry=telemetry)
            for b, cfg in enumerate(self.configs)
        ]
        first = self.lane_solvers[0]
        self._drift_h = first._drift_h  # shared (n_h, 1) channel drift
        self._diff_h = first._diff_h
        self._diff_q = first._diff_q
        # Per-lane pieces of drift_rate(x) = Q_k * (-w1 x - w2 pi + w3 xi^L),
        # precomputed with the scalar operation order so the batched
        # drift matches MFGCPConfig.drift_rate bit-for-bit.
        drift = self.configs[0].caching_drift()
        self._w1 = drift.w1
        self._w2_pop = np.array(
            [drift.w2 * cfg.popularity for cfg in self.configs]
        )
        self._w3_xi = np.array(
            [
                drift.w3 * np.power(drift.xi, cfg.timeliness)
                for cfg in self.configs
            ]
        )
        self._q_size = np.array([cfg.content_size for cfg in self.configs])
        self._n_sub = np.array(
            [s.substeps_per_interval() for s in self.lane_solvers], dtype=int
        )

    def _drift_q(self, policy_sheets: np.ndarray, lanes: np.ndarray) -> np.ndarray:
        """Per-lane Eq. (4) drift under the interval's policy sheets."""
        size_col = self._q_size[lanes][:, None, None]
        w2_pop_col = self._w2_pop[lanes][:, None, None]
        w3_xi_col = self._w3_xi[lanes][:, None, None]
        return size_col * (-self._w1 * policy_sheets - w2_pop_col + w3_xi_col)

    def _step(
        self,
        density: np.ndarray,
        drift_q: np.ndarray,
        dt_col: np.ndarray,
        dq_col: np.ndarray,
        subgrid: BatchGrid,
        content_ids: Sequence[int],
    ) -> np.ndarray:
        """One explicit conservative step for every lane in the batch."""
        grid = self.grid
        update = (
            batched_conservative_advection(density, self._drift_h, grid.dh, axis=0)
            + batched_conservative_advection(density, drift_q, dq_col, axis=1)
            + batched_conservative_diffusion(density, self._diff_h, grid.dh, axis=0)
            + batched_conservative_diffusion(density, self._diff_q, dq_col, axis=1)
        )
        new = density + dt_col * update
        new = np.maximum(new, 0.0)
        return subgrid.normalize(
            new, telemetry=self.telemetry, content_ids=content_ids
        )

    def solve(
        self,
        policy_tables: np.ndarray,
        density0: Optional[np.ndarray] = None,
        lanes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Forward sweep advancing every requested lane simultaneously.

        Parameters
        ----------
        policy_tables:
            ``x*(t, h, q)`` per lane, shape ``(b, n_t + 1, n_h, n_q)``.
        density0:
            Initial densities ``(b, n_h, n_q)``; defaults to the
            per-lane :func:`initial_density`.
        lanes:
            Lane indices into the batch (default: all).

        Returns
        -------
        numpy.ndarray
            Density paths, shape ``(b, n_t + 1, n_h, n_q)``.
        """
        grid = self.grid
        lanes = (
            np.arange(grid.n_lanes) if lanes is None else np.asarray(lanes, int)
        )
        b = lanes.size
        expected = (b, grid.n_t + 1, grid.n_h, grid.n_q)
        policy_tables = np.asarray(policy_tables, dtype=float)
        if policy_tables.shape != expected:
            raise ValueError(
                f"policy tables shape {policy_tables.shape} != batch {expected}"
            )
        subgrid = grid.select(lanes)
        ids = [self.content_ids[int(i)] for i in lanes]
        if density0 is None:
            density = batched_initial_density(
                subgrid, [self.configs[int(i)] for i in lanes]
            )
        else:
            density = subgrid.normalize(
                np.asarray(density0, dtype=float),
                telemetry=self.telemetry,
                content_ids=ids,
            )

        dq_col = grid.dq[lanes][:, None, None]
        n_sub = self._n_sub[lanes]
        max_sub = int(n_sub.max())
        dt_col = (grid.dt / n_sub)[:, None, None]
        uniform = bool(np.all(n_sub == n_sub[0]))
        path = np.empty((b, grid.n_t + 1, grid.n_h, grid.n_q))
        path[:, 0] = density
        for ti in range(grid.n_t):
            drift_q = self._drift_q(policy_tables[:, ti], lanes)
            for s in range(max_sub):
                if uniform:
                    density = self._step(
                        density, drift_q, dt_col, dq_col, subgrid, ids
                    )
                else:
                    idx = np.flatnonzero(s < n_sub)
                    density[idx] = self._step(
                        density[idx],
                        drift_q[idx],
                        dt_col[idx],
                        dq_col[idx],
                        subgrid.select(idx),
                        [ids[int(i)] for i in idx],
                    )
            path[:, ti + 1] = density
        return path
