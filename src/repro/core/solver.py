"""MFG-CP framework driver, Algorithm 1.

:class:`MFGCPSolver` runs the full joint caching-and-pricing framework:
for each optimization epoch it records the requesters' demands, selects
the content set ``K'`` that needs caching, refreshes popularity
(Def. 1 / Eq. (3)) and timeliness (Def. 2), and invokes the iterative
best-response scheme (Alg. 2) per content to obtain the equilibrium
caching strategy and pricing policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.content.catalog import ContentCatalog
from repro.content.popularity import PopularityTracker, ZipfPopularity
from repro.content.requests import RequestProcess
from repro.content.timeliness import TimelinessModel, TimelinessTracker
from repro.core.best_response import BatchedBestResponseIterator, BestResponseIterator
from repro.core.equilibrium import EquilibriumResult
from repro.core.knapsack import capacity_constrained_placement
from repro.core.parameters import MFGCPConfig
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry
from repro.runtime import (
    Executor,
    ExecutionPlan,
    as_executor,
    live_progress,
    partition_batches,
)


def _solve_content_item(
    config: MFGCPConfig, telemetry: SolverTelemetry = NULL_TELEMETRY
) -> EquilibriumResult:
    """Work-item body for one per-content equilibrium solve.

    Module-level so it pickles to process-pool workers; the item owns
    its specialised config and rebuilds the iterator locally (bound
    methods holding live trackers do not cross process boundaries).
    """
    with telemetry.span("content"):
        return BestResponseIterator(config, telemetry=telemetry).solve()


def _solve_content_batch_item(
    content_ids: Sequence[int],
    configs: Sequence[MFGCPConfig],
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> List[EquilibriumResult]:
    """Work-item body for one batched shard of content solves.

    ``content_ids`` is the shard's *sorted* content-index tuple and the
    item's first positional argument, so the checkpoint
    :func:`~repro.runtime.checkpoint.item_key` hashes it — a batched
    run's items can never collide with a per-content run's (whose first
    argument is a config, not an index tuple) nor with a differently
    sharded batched run.  Returns one equilibrium per content, in
    ``content_ids`` order.
    """
    with telemetry.span("content"):
        return BatchedBestResponseIterator(
            configs, content_ids=content_ids, telemetry=telemetry
        ).solve()


@dataclass(frozen=True)
class EpochResult:
    """One optimization epoch of Alg. 1.

    Attributes
    ----------
    epoch:
        Epoch index ``sigma``.
    active_contents:
        The content set ``K'`` actually optimised this epoch.
    equilibria:
        Per-content equilibrium results.
    popularity:
        The popularity vector used this epoch.
    timeliness:
        The timeliness vector used this epoch.
    """

    epoch: int
    active_contents: List[int]
    equilibria: Dict[int, EquilibriumResult]
    popularity: np.ndarray
    timeliness: np.ndarray

    def total_utility(self) -> float:
        """Accumulated utility summed over the optimised contents."""
        return sum(
            res.accumulated_utility()["total"] for res in self.equilibria.values()
        )

    def desired_occupancy(self) -> Dict[int, float]:
        """Cache MB each content's equilibrium strategy would occupy.

        The occupancy is the equilibrium cached amount
        ``Q_k - E[q_k(T)]`` (at least 1 MB so the knapsack item is
        well-posed).
        """
        return {
            k: max(res.config.content_size - float(res.mean_field.mean_q[-1]), 1.0)
            for k, res in self.equilibria.items()
        }

    def content_values(self) -> Dict[int, float]:
        """Per-content utility used as the knapsack value."""
        return {
            k: max(res.accumulated_utility()["total"], 0.0)
            for k, res in self.equilibria.items()
        }

    def capacity_allocation(self, capacity: float) -> Dict[int, float]:
        """Section IV-C remark: the final capacity-feasible placement.

        When the summed equilibrium occupancies exceed a per-EDP cache
        capacity, the fractional knapsack scales them; otherwise the
        equilibrium allocation passes through unchanged.
        """
        return capacity_constrained_placement(
            self.desired_occupancy(), self.content_values(), capacity
        )


class MFGCPSolver:
    """Top-level entry point for the MFG-CP framework.

    For single-content studies (most of the paper's figures) call
    :meth:`solve`; for the full multi-content Alg. 1 loop driven by a
    request trace call :meth:`run_epochs`.

    Parameters
    ----------
    executor:
        Backend for the per-content fan-out of :meth:`run_epochs`
        (the solves decouple through the mean field, so they run
        embarrassingly parallel).  Accepts an
        :class:`~repro.runtime.Executor`, a spec string such as
        ``"process:4"``, or ``None`` for the serial default.  Results
        are bit-identical across backends.
    """

    def __init__(
        self,
        config: MFGCPConfig,
        telemetry: Optional[SolverTelemetry] = None,
        executor: Optional["Executor | str"] = None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.executor: Executor = as_executor(executor)

    # ------------------------------------------------------------------
    # Single-content solve (the generic-player problem)
    # ------------------------------------------------------------------
    def solve(
        self,
        density0: Optional[np.ndarray] = None,
        initial_policy_level: float = 0.5,
    ) -> EquilibriumResult:
        """Solve the mean-field equilibrium for the configured content."""
        iterator = BestResponseIterator(self.config, telemetry=self.telemetry)
        return iterator.solve(
            density0=density0, initial_policy_level=initial_policy_level
        )

    # ------------------------------------------------------------------
    # Multi-content Alg. 1 loop
    # ------------------------------------------------------------------
    def per_content_config(
        self,
        content_size: float,
        popularity: float,
        timeliness: float,
        n_requests: float,
    ) -> MFGCPConfig:
        """The base config specialised for one content's demand."""
        return replace(
            self.config,
            content_size=float(content_size),
            popularity=float(np.clip(popularity, 0.0, 1.0)),
            timeliness=float(timeliness),
            n_requests=float(n_requests),
        )

    def run_epochs(
        self,
        catalog: ContentCatalog,
        request_process: RequestProcess,
        n_epochs: int = 1,
        popularity_tracker: Optional[PopularityTracker] = None,
        timeliness_tracker: Optional[TimelinessTracker] = None,
        max_active_contents: Optional[int] = None,
        solver_batching: bool = False,
        batch_size: int = 32,
    ) -> List[EpochResult]:
        """Algorithm 1: epoch loop over the content catalog.

        Each epoch records one batch of requests per content (lines
        4-5), refreshes popularity and timeliness (line 8), and solves
        the per-content equilibrium (line 9).  Contents with no
        requests are skipped, matching the ``K'`` selection rule.

        Parameters
        ----------
        max_active_contents:
            Optional cap on ``|K'|`` (most popular first) — the paper
            notes the Zipf law keeps the effective content set small.
        solver_batching:
            Solve the epoch's contents through the batched tensor
            pipeline: the active set shards into index groups of at
            most ``batch_size`` contents, and each shard is one work
            item advancing all its lanes through shared
            ``(B, n_h, n_q)`` HJB/FPK sweeps.  Equilibria are
            bit-identical to the per-content path; only the work-item
            grain (and hence the telemetry lane labels and checkpoint
            item keys) changes.
        batch_size:
            Maximum lane count per batched shard — bounds the
            ``B * n_h * n_q`` working set.  Ignored unless
            ``solver_batching`` is set.
        """
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be positive, got {n_epochs}")
        if solver_batching and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_active_contents is not None and max_active_contents < 1:
            raise ValueError(
                f"max_active_contents must be positive, got {max_active_contents}"
            )
        n_contents = len(catalog)
        if request_process.n_contents != n_contents:
            raise ValueError(
                f"request process covers {request_process.n_contents} contents, "
                f"catalog has {n_contents}"
            )
        if popularity_tracker is None:
            popularity_tracker = PopularityTracker(
                prior=ZipfPopularity(n_contents=n_contents)
            )
        if timeliness_tracker is None:
            timeliness_tracker = TimelinessTracker(
                model=request_process.timeliness_model, n_contents=n_contents
            )

        tele = self.telemetry
        results: List[EpochResult] = []
        for epoch in range(n_epochs):
            with tele.span("epoch") as epoch_span:
                # Lines 4-5: record the epoch's requests and pick K'.
                with tele.span("requests"):
                    batch = request_process.sample(
                        popularity_tracker.current, self.config.horizon
                    )
                    popularity = popularity_tracker.observe(batch.counts)
                    for k in range(n_contents):
                        timeliness_tracker.observe(k, batch.timeliness[k])
                    timeliness = timeliness_tracker.current

                active = [k for k in range(n_contents) if batch.counts[k] > 0]
                active.sort(key=lambda k: -popularity[k])
                if max_active_contents is not None:
                    active = active[:max_active_contents]

                # Lines 6-10: per-content mean-field best response.
                # The equilibria decouple through the mean field, so
                # the solves fan out as one execution plan; the
                # configured backend (serial or process pool) returns
                # outcomes in content order either way.  With
                # ``solver_batching`` each work item is one shard of
                # contents solved through shared batched sweeps; the
                # seed lineage and ordered telemetry merge are
                # unchanged, only the item grain widens.
                configs = {
                    k: self.per_content_config(
                        content_size=catalog[k].size_mb,
                        popularity=popularity[k],
                        timeliness=timeliness[k],
                        n_requests=float(batch.counts[k]) / self.config.horizon,
                    )
                    for k in active
                }
                if solver_batching:
                    # Shard content *ids* sorted ascending so the item
                    # key hashes a canonical tuple (checkpoint resume
                    # is insensitive to the popularity ordering).
                    shards = [
                        tuple(sorted(active[i] for i in group))
                        for group in partition_batches(len(active), batch_size)
                    ]
                    plan = ExecutionPlan.map(
                        _solve_content_batch_item,
                        [
                            (shard, tuple(configs[k] for k in shard))
                            for shard in shards
                        ],
                        labels=[
                            f"batch:{shard[0]}-{shard[-1]}" for shard in shards
                        ],
                        accepts_telemetry=True,
                    )
                else:
                    shards = [(k,) for k in active]
                    plan = ExecutionPlan.map(
                        _solve_content_item,
                        [(configs[k],) for k in active],
                        labels=[f"content:{k}" for k in active],
                        accepts_telemetry=True,
                    )
                if tele.live is not None:
                    tele.live.set_phase(
                        f"epoch:{epoch}", total_items=len(plan)
                    )
                outcomes = self.executor.execute(
                    plan,
                    capture=tele.enabled,
                    profile=tele.profile,
                    strict_numerics=tele.strict_numerics,
                    progress=live_progress(plan, tele),
                )
                equilibria: Dict[int, EquilibriumResult] = {}
                unconverged: List[int] = []
                dropped: List[int] = []
                for shard, outcome in zip(shards, outcomes):
                    tele.absorb(outcome.telemetry, lane=plan[outcome.index].label)
                    if outcome.result is None:
                        # A skip/degrade fault policy exhausted this
                        # item's retries; the epoch carries on with
                        # the survivors (graceful degradation).  A
                        # batched item drops its whole shard.
                        dropped.extend(int(k) for k in shard)
                        continue
                    shard_results = (
                        outcome.result if solver_batching else [outcome.result]
                    )
                    solve_s = (
                        outcome.telemetry.span_seconds("content")
                        if outcome.telemetry is not None
                        else 0.0
                    )
                    for k, result in zip(shard, shard_results):
                        equilibria[k] = result
                        if not result.report.converged:
                            unconverged.append(int(k))
                        if tele.enabled:
                            tele.inc("epochs.content_solves")
                            tele.event(
                                "content_solve",
                                epoch=epoch,
                                content=int(k),
                                popularity=float(popularity[k]),
                                n_iterations=result.report.n_iterations,
                                converged=result.report.converged,
                                solve_s=solve_s,
                            )
                if dropped and tele.enabled:
                    tele.diag(
                        "epoch.content_dropped",
                        "warning",
                        value=float(len(dropped)),
                        message=(
                            f"{len(dropped)} of {len(active)} content solves "
                            "were dropped by the fault policy after "
                            "exhausting retries"
                        ),
                        epoch=epoch,
                        contents=dropped,
                    )
                if unconverged and tele.enabled:
                    tele.diag(
                        "epoch.unconverged",
                        "warning",
                        value=float(len(unconverged)),
                        message=(
                            f"{len(unconverged)} of {len(active)} content "
                            "solves hit max_iterations without converging"
                        ),
                        epoch=epoch,
                        contents=unconverged,
                    )

            if tele.enabled:
                tele.inc("epochs.completed")
                tele.event(
                    "epoch",
                    epoch=epoch,
                    n_active=len(active),
                    epoch_s=epoch_span.duration,
                )
            results.append(
                EpochResult(
                    epoch=epoch,
                    active_contents=active,
                    equilibria=equilibria,
                    popularity=popularity.copy(),
                    timeliness=timeliness.copy(),
                )
            )
        return results
