"""MFG-CP core: the paper's primary contribution (Sections III-IV).

The coupled backward HJB / forward FPK system, the mean-field
estimator, the iterative best-response learning scheme (Alg. 2), the
epoch-level framework driver (Alg. 1), and the capacity-constrained
knapsack extension.
"""

from repro.core.parameters import MFGCPConfig, PaperParameters, ChannelParameters, CachingParameters
from repro.core.grid import BatchGrid, StateGrid
from repro.core.policy import CachingPolicy, optimal_control
from repro.core.hjb import BatchedHJBSolver, HJBSolver, HJBSolution
from repro.core.fpk import BatchedFPKSolver, FPKSolver, batched_initial_density, initial_density
from repro.core.mean_field import MeanFieldEstimator, MeanFieldPath
from repro.core.best_response import (
    BatchedBestResponseIterator,
    BestResponseIterator,
    IterationRecord,
)
from repro.core.solver import MFGCPSolver
from repro.core.equilibrium import EquilibriumResult, ConvergenceReport
from repro.core.knapsack import KnapsackItem, solve_fractional_knapsack, solve_01_knapsack, capacity_constrained_placement
from repro.core.semilagrangian import (
    SLBestResponseIterator,
    SLFPKSolver,
    SLHJBSolver,
)
from repro.core.multi_population import (
    MultiPopulationIterator,
    MultiPopulationResult,
)
from repro.core.stationary import StationaryResult, StationarySolver
from repro.core.theory import (
    Lemma1Report,
    Lemma2Report,
    Theorem2Report,
    verify_lemma1,
    verify_lemma2,
    verify_theorem2,
)

__all__ = [
    "MFGCPConfig",
    "PaperParameters",
    "ChannelParameters",
    "CachingParameters",
    "StateGrid",
    "BatchGrid",
    "CachingPolicy",
    "optimal_control",
    "HJBSolver",
    "HJBSolution",
    "BatchedHJBSolver",
    "FPKSolver",
    "initial_density",
    "BatchedFPKSolver",
    "batched_initial_density",
    "MeanFieldEstimator",
    "MeanFieldPath",
    "BestResponseIterator",
    "BatchedBestResponseIterator",
    "IterationRecord",
    "MFGCPSolver",
    "EquilibriumResult",
    "ConvergenceReport",
    "KnapsackItem",
    "solve_fractional_knapsack",
    "solve_01_knapsack",
    "capacity_constrained_placement",
    "Lemma1Report",
    "Lemma2Report",
    "Theorem2Report",
    "verify_lemma1",
    "verify_lemma2",
    "verify_theorem2",
    "SLBestResponseIterator",
    "SLFPKSolver",
    "SLHJBSolver",
    "MultiPopulationIterator",
    "MultiPopulationResult",
    "StationaryResult",
    "StationarySolver",
]
