"""Equilibrium result containers and convergence diagnostics.

:class:`EquilibriumResult` bundles everything the iterative scheme
produces for one content — value function, policy, mean-field density
path, market paths, iteration history — and derives the population
statistics the evaluation section plots (mean remaining space, utility
decomposition over time, accumulated totals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.grid import StateGrid

# numpy 2.0 renamed trapz to trapezoid; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz
from repro.core.mean_field import MeanFieldPath
from repro.core.parameters import MFGCPConfig
from repro.core.policy import CachingPolicy


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration diagnostics of the Alg. 2 fixed-point loop."""

    iteration: int
    policy_change: float
    mean_field_change: float
    mean_price: float
    mean_control: float

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError(f"iteration must be non-negative, got {self.iteration}")
        if self.policy_change < 0:
            raise ValueError("policy_change must be non-negative")


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of the fixed-point iteration (Theorem 2 diagnostics)."""

    converged: bool
    n_iterations: int
    final_policy_change: float
    history: List[IterationRecord] = field(default_factory=list)

    @property
    def contraction_ratios(self) -> np.ndarray:
        """Successive ratios of policy changes.

        Theorem 2 argues each iteration is a contraction mapping; the
        ratios should settle below 1 when the argument holds for the
        configured parameters.
        """
        changes = np.array([r.policy_change for r in self.history])
        if changes.size < 2:
            return np.array([])
        prev = changes[:-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(prev > 0, changes[1:] / prev, np.nan)
        return ratios

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "NOT converged"
        return (
            f"{status} after {self.n_iterations} iterations "
            f"(final policy change {self.final_policy_change:.3e})"
        )


@dataclass(frozen=True)
class EquilibriumResult:
    """The solved mean-field equilibrium for one content.

    Attributes
    ----------
    config:
        The configuration used.
    grid:
        The state grid.
    value:
        ``V(t, h, q)`` path from the final HJB sweep.
    policy:
        The equilibrium caching policy ``x*(t, h, q)``.
    density:
        The equilibrium mean-field density path ``lambda(t, h, q)``.
    mean_field:
        Market paths (price, peer state, sharing benefit, ...).
    report:
        Fixed-point convergence diagnostics.
    """

    config: MFGCPConfig
    grid: StateGrid
    value: np.ndarray
    policy: CachingPolicy
    density: np.ndarray
    mean_field: MeanFieldPath
    report: ConvergenceReport

    # ------------------------------------------------------------------
    # Distribution statistics (Figs. 4, 6, 7)
    # ------------------------------------------------------------------
    def marginal_q_path(self) -> np.ndarray:
        """Marginal density over ``q`` at every reporting time.

        Shape ``(n_t + 1, n_q)`` — the Fig. 4 surface / Fig. 6 heat map.
        """
        return np.stack([self.grid.marginal_q(sheet) for sheet in self.density])

    def mean_remaining_space(self) -> np.ndarray:
        """Population-average remaining space per reporting time."""
        return self.mean_field.mean_q.copy()

    def density_at(self, t: float) -> np.ndarray:
        """The density sheet nearest to time ``t``."""
        return self.density[self.grid.nearest_time_index(t)].copy()

    # ------------------------------------------------------------------
    # Utility decomposition (Figs. 8-14)
    # ------------------------------------------------------------------
    def population_utility_path(self) -> Dict[str, np.ndarray]:
        """Population-average Eq. (10) terms at every reporting time.

        Returns a dict with keys ``trading_income``, ``sharing_benefit``,
        ``placement_cost``, ``staleness_cost``, ``sharing_cost`` and
        ``total``, each of shape ``(n_t + 1,)``.
        """
        cfg = self.config
        utility = cfg.utility_model()
        rate_of_h = np.asarray(
            cfg.channel.rate_of_fading(self.grid.h), dtype=float
        )[:, None]
        q_mesh = self.grid.q_mesh()
        weights = self.grid.cell_weights()

        names = (
            "trading_income",
            "sharing_benefit",
            "placement_cost",
            "staleness_cost",
            "sharing_cost",
        )
        paths: Dict[str, np.ndarray] = {
            name: np.empty(self.grid.n_t + 1) for name in names
        }
        paths["total"] = np.empty(self.grid.n_t + 1)
        for ti in range(self.grid.n_t + 1):
            ctx = self.mean_field.context(ti)
            breakdown = utility.evaluate(
                self.policy.table[ti], q_mesh, rate_of_h, ctx
            )
            dens = self.density[ti]
            for name in names:
                paths[name][ti] = float(
                    (getattr(breakdown, name) * dens * weights).sum()
                )
            paths["total"][ti] = float((breakdown.total * dens * weights).sum())
        return paths

    def accumulated_utility(self) -> Dict[str, float]:
        """Time-integrated Eq. (10) terms over the horizon.

        These are the paper's "accumulative utility / trading income"
        of Fig. 12 and the bar heights of Fig. 14.
        """
        paths = self.population_utility_path()
        return {
            name: float(_trapezoid(series, self.grid.t))
            for name, series in paths.items()
        }

    def state_utility_path(self, q0: float, h0: float = None) -> np.ndarray:
        """Accumulated optimal utility from a specific starting state.

        ``V(0, h0, q0)`` measures the total; this method returns the
        *remaining* value ``V(t, h0, q_t)`` along the deterministic
        mean drift from ``q0`` — the Fig. 9 convergence curves.
        """
        h0 = self.config.channel.mean if h0 is None else float(h0)
        q = float(q0)
        series = np.empty(self.grid.n_t + 1)
        for ti, t in enumerate(self.grid.t):
            ih, iq = self.grid.locate(h0, q)
            series[ti] = float(self.value[ti, ih, iq])
            if ti < self.grid.n_t:
                x = self.policy(t, h0, q)
                drift = float(self.config.drift_rate(np.array(x)))
                q = float(
                    np.clip(q + drift * self.grid.dt, 0.0, self.config.content_size)
                )
        return series

    def state_utility_rate_path(self, q0: float, h0: float = None) -> np.ndarray:
        """Instantaneous Eq. (10) utility along the mean path from ``q0``.

        Follows the deterministic mean drift under the equilibrium
        policy from the initial state and evaluates the running utility
        at each reporting time — the Fig. 9 "utility of an EDP" curves.
        """
        cfg = self.config
        h0 = cfg.channel.mean if h0 is None else float(h0)
        utility = cfg.utility_model()
        rate = float(cfg.channel.rate_of_fading(np.array(h0)))
        q = float(q0)
        series = np.empty(self.grid.n_t + 1)
        for ti, t in enumerate(self.grid.t):
            x = self.policy(t, h0, q)
            ctx = self.mean_field.context(ti)
            series[ti] = float(utility.total(x, q, rate, ctx))
            if ti < self.grid.n_t:
                drift = float(cfg.drift_rate(np.array(x)))
                q = float(np.clip(q + drift * self.grid.dt, 0.0, cfg.content_size))
        return series

    def mean_state_trajectory(self, q0: float, h0: float = None) -> np.ndarray:
        """Deterministic mean trajectory of ``q`` from ``q0`` under x*."""
        h0 = self.config.channel.mean if h0 is None else float(h0)
        q = float(q0)
        series = np.empty(self.grid.n_t + 1)
        series[0] = q
        for ti, t in enumerate(self.grid.t[:-1]):
            x = self.policy(t, h0, q)
            drift = float(self.config.drift_rate(np.array(x)))
            q = float(np.clip(q + drift * self.grid.dt, 0.0, self.config.content_size))
            series[ti + 1] = q
        return series
