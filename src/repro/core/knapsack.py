"""Capacity-constrained placement: the knapsack extension.

Section IV-C's Remark: when an EDP's total cache capacity is below the
sum of the per-content MFG-CP allocations, the final strategy is
derived by solving a knapsack over contents — each content's *weight*
is the storage its MFG-CP strategy would occupy and its *value* is the
content's marginal contribution to the EDP's utility (e.g. the solved
``V(0)`` or accumulated utility).

Both the fractional relaxation (caching rates are continuous, so this
is the natural fit and is solved exactly by the greedy density rule)
and the classical 0/1 dynamic program (for all-or-nothing placement)
are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class KnapsackItem:
    """One content in the capacity-constrained placement problem.

    Attributes
    ----------
    content_id:
        Catalog index ``k``.
    weight:
        Storage the MFG-CP allocation would occupy (MB).
    value:
        Utility contribution of caching the content fully.
    """

    content_id: int
    weight: float
    value: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.value < 0:
            raise ValueError(f"value must be non-negative, got {self.value}")

    @property
    def density(self) -> float:
        """Value per MB — the greedy selection key."""
        return self.value / self.weight


def solve_fractional_knapsack(
    items: Sequence[KnapsackItem], capacity: float
) -> Dict[int, float]:
    """Exact greedy solution of the fractional knapsack.

    Returns the caching fraction per content id in ``[0, 1]``.  Because
    MFG-CP caching rates are continuous, fractional placement is
    feasible, and sorting by value density is provably optimal.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    _check_unique_ids(items)
    fractions = {item.content_id: 0.0 for item in items}
    remaining = capacity
    for item in sorted(items, key=lambda it: -it.density):
        if remaining <= 0:
            break
        take = min(item.weight, remaining)
        fractions[item.content_id] = take / item.weight
        remaining -= take
    return fractions


def solve_01_knapsack(
    items: Sequence[KnapsackItem], capacity: float, resolution: float = 1.0
) -> Tuple[List[int], float]:
    """0/1 knapsack by dynamic programming over discretised capacity.

    Parameters
    ----------
    resolution:
        Capacity discretisation step in MB (weights are rounded up to
        this step, keeping the solution feasible).

    Returns
    -------
    tuple
        The selected content ids (sorted) and the total value achieved.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    _check_unique_ids(items)

    n_slots = int(np.floor(capacity / resolution))
    if n_slots == 0 or not items:
        return [], 0.0
    weights = [max(1, int(np.ceil(item.weight / resolution))) for item in items]

    best = np.zeros(n_slots + 1)
    chosen = [[False] * (n_slots + 1) for _ in items]
    for idx, item in enumerate(items):
        w = weights[idx]
        if w > n_slots:
            continue
        # Traverse capacities downward so each item is used at most once.
        for cap in range(n_slots, w - 1, -1):
            candidate = best[cap - w] + item.value
            if candidate > best[cap]:
                best[cap] = candidate
                chosen[idx][cap] = True

    # Backtrack.
    selected: List[int] = []
    cap = n_slots
    for idx in range(len(items) - 1, -1, -1):
        if chosen[idx][cap]:
            selected.append(items[idx].content_id)
            cap -= weights[idx]
    selected.sort()
    return selected, float(best[n_slots])


def capacity_constrained_placement(
    allocations: Dict[int, float],
    values: Dict[int, float],
    capacity: float,
) -> Dict[int, float]:
    """Scale per-content MFG-CP allocations to a capacity budget.

    Parameters
    ----------
    allocations:
        MB of storage each content's MFG-CP strategy would occupy.
    values:
        The per-content utility (e.g. ``V(0)`` from the solved
        equilibrium); contents absent from ``values`` default to 0.
    capacity:
        The EDP's total cache capacity (MB).

    Returns
    -------
    dict
        MB actually granted per content; equals ``allocations`` when it
        already fits, otherwise the fractional-knapsack optimum.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    total = sum(allocations.values())
    if total <= capacity:
        return dict(allocations)
    items = [
        KnapsackItem(content_id=k, weight=w, value=max(values.get(k, 0.0), 0.0))
        for k, w in allocations.items()
        if w > 0
    ]
    fractions = solve_fractional_knapsack(items, capacity)
    return {k: fractions.get(k, 0.0) * w for k, w in allocations.items()}


def _check_unique_ids(items: Sequence[KnapsackItem]) -> None:
    ids = [item.content_id for item in items]
    if len(set(ids)) != len(ids):
        raise ValueError("knapsack items must have unique content ids")
