"""Multi-population mean-field game: heterogeneous EDP classes.

The paper's system model names heterogeneous EDP hardware explicitly —
"small-cell/femtocell base stations and smartphones" — but its
mean-field reduction assumes exchangeable (symmetric) EDPs.  The
standard extension covers finitely many *classes*: within a class EDPs
are exchangeable, so each class ``c`` gets its own generic player
(HJB) and density (FPK), while the market quantities couple them:

* the Eq. (17) trading price responds to the classes' combined supply,

      p(t) = p_hat - eta1 Q * sum_c  w_c E_{lambda_c}[x_c*],

  with ``w_c`` the class population shares;
* the representative peer state and sharing statistics are the
  population-weighted mixtures of the class densities.

:class:`MultiPopulationIterator` runs the damped best-response loop
jointly: every iteration solves one HJB per class against the shared
market, then one FPK per class, then re-mixes the market.  With a
single class it reduces exactly to
:class:`repro.core.best_response.BestResponseIterator`.

Class configurations may differ in anything that does *not* change the
market definition itself: radio parameters (base stations see better
channels than phones), cost coefficients (``w4``, ``w5``, ``eta2``),
caching dynamics, initial distributions.  Market parameters
(``p_hat``, ``eta1``, ``sharing_price``, ``alpha``, ``content_size``,
horizon and demand) must agree across classes — a shared market needs
a shared definition — and are validated at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.best_response import build_grid
from repro.core.equilibrium import ConvergenceReport, EquilibriumResult, IterationRecord
from repro.core.fpk import FPKSolver, initial_density
from repro.core.grid import StateGrid
from repro.core.hjb import HJBSolver
from repro.core.mean_field import MeanFieldEstimator, MeanFieldPath
from repro.core.parameters import MFGCPConfig
from repro.core.policy import CachingPolicy

_SHARED_MARKET_FIELDS = (
    "horizon",
    "n_time_steps",
    "content_size",
    "p_hat",
    "eta1",
    "sharing_price",
    "alpha",
    "n_edps",
    "n_requests",
    "demand_decay",
)


@dataclass(frozen=True)
class MultiPopulationResult:
    """Per-class equilibria plus the shared market paths."""

    class_results: Tuple[EquilibriumResult, ...]
    weights: np.ndarray
    market: MeanFieldPath
    report: ConvergenceReport

    @property
    def n_classes(self) -> int:
        return len(self.class_results)

    def class_utility(self, c: int) -> float:
        """Accumulated utility of class ``c``'s generic player."""
        return self.class_results[c].accumulated_utility()["total"]

    def population_utility(self) -> float:
        """Population-weighted mean accumulated utility."""
        return float(
            sum(
                w * self.class_utility(c)
                for c, w in enumerate(self.weights)
            )
        )


class MultiPopulationIterator:
    """Damped joint best response over EDP classes.

    Parameters
    ----------
    configs:
        One configuration per class; market-defining fields must agree
        (see the module docstring).
    weights:
        Population shares per class; must be positive and sum to 1.
    """

    def __init__(
        self,
        configs: Sequence[MFGCPConfig],
        weights: Sequence[float],
    ) -> None:
        if not configs:
            raise ValueError("need at least one class configuration")
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.shape != (len(configs),):
            raise ValueError(
                f"{len(configs)} classes but {self.weights.shape} weights"
            )
        if np.any(self.weights <= 0) or not np.isclose(self.weights.sum(), 1.0):
            raise ValueError(
                f"weights must be positive and sum to 1, got {self.weights}"
            )
        base = configs[0]
        for c, cfg in enumerate(configs[1:], start=1):
            for name in _SHARED_MARKET_FIELDS:
                if getattr(cfg, name) != getattr(base, name):
                    raise ValueError(
                        f"class {c} disagrees with class 0 on shared market "
                        f"field {name!r}: {getattr(cfg, name)} vs "
                        f"{getattr(base, name)}"
                    )
        self.configs = list(configs)
        # A single grid shared by all classes: h bounds must cover every
        # class's OU support.
        los, his = [], []
        for cfg in self.configs:
            lo, hi = cfg.ou_process().stationary_interval()
            los.append(max(lo, 1e-6))
            his.append(hi)
        self.grid = StateGrid.regular(
            horizon=base.horizon,
            n_time_steps=base.n_time_steps,
            h_bounds=(min(los), max(max(his), min(los) + 0.1)),
            n_h=base.n_h,
            q_max=base.content_size,
            n_q=base.n_q,
        )
        self.hjb = [HJBSolver(cfg, self.grid) for cfg in self.configs]
        self.fpk = [FPKSolver(cfg, self.grid) for cfg in self.configs]
        self.estimators = [
            MeanFieldEstimator(cfg, self.grid) for cfg in self.configs
        ]

    # ------------------------------------------------------------------
    # Market mixing
    # ------------------------------------------------------------------
    def _mix_market(self, class_paths: List[MeanFieldPath]) -> MeanFieldPath:
        """Population-weighted mixture of the class mean fields.

        Mixture rules: the mean control, mean state, transfer size and
        sharer statistics are weighted averages (they are integrals
        against the mixture density); the price is re-derived from the
        mixed control via Eq. (17); the sharing benefit is recomputed
        from the mixed statistics.
        """
        from repro.economics.sharing import mean_field_sharing_benefit

        base = self.configs[0]
        w = self.weights
        mean_control = sum(w[c] * p.mean_control for c, p in enumerate(class_paths))
        mean_q = sum(w[c] * p.mean_q for c, p in enumerate(class_paths))
        mean_transfer = sum(
            w[c] * p.mean_transfer for c, p in enumerate(class_paths)
        )
        qualified = np.clip(
            sum(w[c] * p.qualified_fraction for c, p in enumerate(class_paths)),
            0.0,
            1.0,
        )
        case3 = (1.0 - qualified) ** 2
        price = base.pricing_model().mean_field(base.content_size, mean_control)
        if base.include_sharing:
            benefit = mean_field_sharing_benefit(
                base.sharing_price,
                mean_transfer,
                base.n_edps,
                case3 * base.n_edps,
                qualified * base.n_edps,
            )
        else:
            benefit = np.zeros_like(mean_q)
        return MeanFieldPath(
            grid=self.grid,
            n_requests=base.n_requests_at(self.grid.t),
            mean_control=np.asarray(mean_control, dtype=float),
            price=np.asarray(price, dtype=float),
            mean_q=np.asarray(mean_q, dtype=float),
            mean_transfer=np.asarray(mean_transfer, dtype=float),
            sharing_benefit=np.asarray(benefit, dtype=float),
            qualified_fraction=qualified,
            case3_fraction=case3,
        )

    # ------------------------------------------------------------------
    # Fixed point
    # ------------------------------------------------------------------
    def solve(self, initial_policy_level: float = 0.5) -> MultiPopulationResult:
        """Run the joint damped best-response loop to equilibrium."""
        if not 0.0 <= initial_policy_level <= 1.0:
            raise ValueError(
                f"policy level must lie in [0, 1], got {initial_policy_level}"
            )
        base = self.configs[0]
        n_classes = len(self.configs)
        densities0 = [initial_density(self.grid, cfg) for cfg in self.configs]
        policies = [
            np.full(self.grid.path_shape, float(initial_policy_level))
            for _ in range(n_classes)
        ]
        density_paths = [
            self.fpk[c].solve(policies[c], densities0[c]) for c in range(n_classes)
        ]
        class_paths = [
            self.estimators[c].estimate(density_paths[c], policies[c])
            for c in range(n_classes)
        ]
        market = self._mix_market(class_paths)

        history: List[IterationRecord] = []
        converged = False
        policy_change = np.inf
        solutions = None
        for iteration in range(1, base.max_iterations + 1):
            solutions = [self.hjb[c].solve(market) for c in range(n_classes)]
            policy_change = max(
                float(np.max(np.abs(solutions[c].policy.table - policies[c])))
                for c in range(n_classes)
            )
            for c in range(n_classes):
                policies[c] = (
                    (1.0 - base.damping) * policies[c]
                    + base.damping * solutions[c].policy.table
                )
                density_paths[c] = self.fpk[c].solve(policies[c], densities0[c])
                class_paths[c] = self.estimators[c].estimate(
                    density_paths[c], policies[c]
                )
            new_market = self._mix_market(class_paths)
            mf_change = market.distance(new_market)
            market = new_market
            history.append(
                IterationRecord(
                    iteration=iteration,
                    policy_change=policy_change,
                    mean_field_change=mf_change,
                    mean_price=float(market.price.mean()),
                    mean_control=float(market.mean_control.mean()),
                )
            )
            if policy_change < base.tolerance:
                converged = True
                break

        assert solutions is not None
        report = ConvergenceReport(
            converged=converged,
            n_iterations=len(history),
            final_policy_change=policy_change,
            history=history,
        )
        class_results = tuple(
            EquilibriumResult(
                config=self.configs[c],
                grid=self.grid,
                value=solutions[c].value,
                policy=CachingPolicy(grid=self.grid, table=policies[c]),
                density=density_paths[c],
                # Each class's generic player faces the SHARED market.
                mean_field=market,
                report=report,
            )
            for c in range(n_classes)
        )
        return MultiPopulationResult(
            class_results=class_results,
            weights=self.weights,
            market=market,
            report=report,
        )
