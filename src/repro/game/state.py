"""Population state of the finite M-player game.

Each EDP ``i`` carries the 2-tuple state of Section III-B,
``S_i(t) = (h_i(t), q_i(t))``, stored as flat arrays over the
population for vectorised SDE stepping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.parameters import MFGCPConfig


@dataclass
class PopulationState:
    """Mutable per-EDP state arrays.

    Attributes
    ----------
    fading:
        Channel fading coefficients ``h_i``, shape ``(M,)``.
    remaining:
        Remaining cache spaces ``q_i`` in MB, shape ``(M,)``.
    """

    fading: np.ndarray
    remaining: np.ndarray

    def __post_init__(self) -> None:
        self.fading = np.asarray(self.fading, dtype=float).copy()
        self.remaining = np.asarray(self.remaining, dtype=float).copy()
        if self.fading.shape != self.remaining.shape or self.fading.ndim != 1:
            raise ValueError(
                f"fading {self.fading.shape} and remaining {self.remaining.shape} "
                "must be matching 1-D arrays"
            )

    @property
    def n_edps(self) -> int:
        """Population size ``M``."""
        return self.fading.shape[0]

    def copy(self) -> "PopulationState":
        """An independent copy of the state."""
        return PopulationState(fading=self.fading, remaining=self.remaining)

    @classmethod
    def initial(
        cls,
        config: MFGCPConfig,
        rng: np.random.Generator,
        n_edps: Optional[int] = None,
        mean_q: Optional[float] = None,
        std_q: Optional[float] = None,
    ) -> "PopulationState":
        """Draw the paper's initial population.

        Cache states follow the configured truncated normal; fading
        starts in the OU stationary law.
        """
        m = config.n_edps if n_edps is None else int(n_edps)
        if m < 1:
            raise ValueError(f"need at least one EDP, got {m}")
        mq, sq = config.initial_density_moments()
        mean_q = mq if mean_q is None else float(mean_q)
        std_q = sq if std_q is None else float(std_q)
        remaining = np.clip(
            rng.normal(mean_q, std_q, size=m), 0.0, config.content_size
        )
        ou_mean, ou_std = config.ou_process().stationary_moments()
        fading = rng.normal(ou_mean, max(ou_std, 1e-12), size=m)
        return cls(fading=fading, remaining=remaining)

    def empirical_density_q(self, bins: np.ndarray) -> np.ndarray:
        """Histogram density of remaining space over given bin edges.

        Used to compare the finite population against the FPK density.
        """
        bins = np.asarray(bins, dtype=float)
        if bins.ndim != 1 or bins.shape[0] < 2:
            raise ValueError("bins must be a 1-D array of at least 2 edges")
        counts, _ = np.histogram(self.remaining, bins=bins)
        widths = np.diff(bins)
        total = counts.sum()
        if total == 0:
            return np.zeros_like(widths)
        return counts / (total * widths)
