"""Finite-population stochastic differential game (Section III-B).

The simulator plays the *original* M-player game that MFG-CP
approximates: every EDP carries its own fading and cache-state SDEs,
prices follow the finite-population Eq. (5), peer sharing pairs real
EDPs, and utilities are measured with the full Eq. (10).  It is used
to evaluate MFG-CP against the baselines (Figs. 12-14, Table II) and
to validate the mean-field approximation and the approximate Nash
property (:mod:`repro.game.nash`).
"""

from repro.game.state import PopulationState
from repro.game.player import EDPGroup
from repro.game.market import MarketStep, clear_market, finite_prices, match_sharing
from repro.game.simulator import GameSimulator, SimulationReport
from repro.game.multi_content import MultiContentGameSimulator, MultiContentReport
from repro.game.nash import DeviationProbe, exploitability

__all__ = [
    "PopulationState",
    "EDPGroup",
    "MarketStep",
    "clear_market",
    "finite_prices",
    "match_sharing",
    "GameSimulator",
    "SimulationReport",
    "MultiContentGameSimulator",
    "MultiContentReport",
    "DeviationProbe",
    "exploitability",
]
