"""Finite-population stochastic differential game simulator (Alg. 1).

Plays the original M-player game of Section III-B for one content:

* every EDP's fading follows the OU law of Eq. (1) (exact transitions)
  and its cache state the SDE of Eq. (4) (Euler-Maruyama, reflected
  into ``[0, Q_k]``);
* trading prices follow the finite-population Eq. (5) — each EDP's
  price reacts to the *actual* strategies of its ``M - 1`` competitors;
* peer sharing pairs each EDP with a randomly assigned peer (the paper:
  "the center will randomly assign a suitable EDP"), with real money
  flowing from case-2 buyers to their sharers;
* utilities are measured with the full Eq. (10) for every scheme, so
  comparisons across schemes (Figs. 12-14) are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import CachingScheme
from repro.core.parameters import MFGCPConfig
from repro.game.market import clear_market
from repro.game.player import EDPGroup, build_groups
from repro.game.state import PopulationState
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry

TERM_NAMES = (
    "trading_income",
    "sharing_benefit",
    "placement_cost",
    "staleness_cost",
    "sharing_cost",
)


@dataclass(frozen=True)
class SimulationReport:
    """Everything a finite-population run produced.

    Attributes
    ----------
    config:
        The configuration simulated.
    times:
        Reporting time axis, shape ``(n_steps + 1,)``.
    scheme_names:
        Per-EDP scheme label, shape ``(M,)`` (numpy array of str).
    per_edp:
        Accumulated Eq. (10) terms per EDP: dict of term name to
        ``(M,)`` arrays; ``total`` included.
    series:
        Population time series: ``mean_remaining``, ``mean_control``,
        ``mean_price``, ``utility_rate`` and the response-case
        occupancies ``case1_fraction`` / ``case2_fraction`` /
        ``case3_fraction`` — each ``(n_steps + 1,)`` (the last decision
        step's values are repeated at ``T``).
    group_series:
        Per-scheme mean remaining-space series.
    final_state:
        The population state at the horizon.
    tracked_remaining:
        Per-step cache states of the tracked EDPs, shape
        ``(n_steps + 1, n_tracked)``; ``None`` when no EDPs were
        tracked.
    """

    config: MFGCPConfig
    times: np.ndarray
    scheme_names: np.ndarray
    per_edp: Dict[str, np.ndarray]
    series: Dict[str, np.ndarray]
    group_series: Dict[str, np.ndarray]
    final_state: PopulationState
    tracked_remaining: Optional[np.ndarray] = None

    def schemes(self) -> List[str]:
        """Distinct scheme names, in first-appearance order."""
        seen: List[str] = []
        for name in self.scheme_names:
            if name not in seen:
                seen.append(str(name))
        return seen

    def mask(self, scheme_name: str) -> np.ndarray:
        """Boolean mask of the EDPs controlled by a scheme."""
        mask = self.scheme_names == scheme_name
        if not mask.any():
            raise KeyError(f"no EDPs ran scheme {scheme_name!r}")
        return mask

    def scheme_summary(self, scheme_name: str) -> Dict[str, float]:
        """Mean accumulated Eq. (10) terms over one scheme's EDPs."""
        mask = self.mask(scheme_name)
        return {
            name: float(values[mask].mean()) for name, values in self.per_edp.items()
        }

    def total_utility(self, scheme_name: str) -> float:
        """Mean accumulated utility of a scheme's EDPs."""
        return self.scheme_summary(scheme_name)["total"]

    def comparison_rows(self) -> List[Tuple[str, float, float, float]]:
        """(scheme, utility, trading income, staleness cost) rows."""
        rows = []
        for name in self.schemes():
            summary = self.scheme_summary(name)
            rows.append(
                (
                    name,
                    summary["total"],
                    summary["trading_income"],
                    summary["staleness_cost"],
                )
            )
        return rows


class GameSimulator:
    """The M-player game bound to one configuration.

    Parameters
    ----------
    config:
        Model parameters (content, economics, SDEs, horizon).
    assignments:
        ``(scheme, count)`` pairs partitioning the population.  A
        single pair gives the paper's homogeneous per-scheme runs.
    rng:
        Random generator; all stochasticity (initial states, noise,
        peer assignment, request counts) flows through it.
    stochastic_requests:
        When True, per-step request counts are Poisson draws around the
        configured rate; when False (default) the deterministic rate is
        used, matching the mean-field solver's assumption.
    track_indices:
        Optional EDP indices whose cache-state trajectories are
        recorded per step (the finite-sample counterpart of the Fig. 9
        curves).
    topology:
        Optional :class:`repro.network.topology.NetworkTopology` with
        exactly ``M`` EDPs.  When given, each EDP's wireless delivery
        rate uses its *own* mean distance to the requesters it serves
        (instead of the configured representative distance), so densely
        loaded or remote EDPs pay realistic delay penalties.
    telemetry:
        Optional :class:`repro.obs.SolverTelemetry` observer.  The
        simulator records prepare/run spans, per-step counters, and
        binds the observer to every scheme (so MFG-CP's one-off
        equilibrium solve shows up in the same span tree).
    """

    def __init__(
        self,
        config: MFGCPConfig,
        assignments: Sequence[Tuple[CachingScheme, int]],
        rng: Optional[np.random.Generator] = None,
        stochastic_requests: bool = False,
        track_indices: Optional[Sequence[int]] = None,
        topology=None,
        telemetry: Optional[SolverTelemetry] = None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.rng = rng if rng is not None else np.random.default_rng()
        self.groups, self.n_edps = build_groups(assignments)
        self.stochastic_requests = stochastic_requests
        self._distances = (
            None if topology is None else self._per_edp_distances(topology)
        )
        if track_indices is not None:
            tracked = np.asarray(track_indices, dtype=int)
            if tracked.size and (tracked.min() < 0 or tracked.max() >= self.n_edps):
                raise ValueError(
                    f"track_indices must lie in [0, {self.n_edps}), got {tracked}"
                )
            self.track_indices: Optional[np.ndarray] = tracked
        else:
            self.track_indices = None
        self._prepared = False

    def prepare(self) -> None:
        """Run every scheme's one-off setup (MFG solves happen here)."""
        with self.telemetry.span("sim_prepare"):
            for group in self.groups:
                if self.telemetry.enabled:
                    group.scheme.bind_telemetry(self.telemetry)
                group.scheme.prepare(self.config, self.rng)
        self._prepared = True

    # ------------------------------------------------------------------
    # Per-step market mechanics
    # ------------------------------------------------------------------
    def _decide_all(self, t: float, state: PopulationState) -> np.ndarray:
        controls = np.zeros(self.n_edps)
        for group in self.groups:
            decision = group.scheme.decide(
                t, state.fading[group.indices], state.remaining[group.indices]
            )
            controls[group.indices] = decision.caching_rates
        return controls

    def _per_edp_distances(self, topology) -> np.ndarray:
        """Mean serving distance per EDP from an explicit topology."""
        if topology.config.n_edps != self.n_edps:
            raise ValueError(
                f"topology has {topology.config.n_edps} EDPs, the simulation "
                f"has {self.n_edps}"
            )
        distances = np.full(self.n_edps, topology.mean_association_distance())
        if distances[0] <= 0.0:
            distances[:] = self.config.channel.mean_distance
        pairwise = topology.edp_requester_distances()
        for edp, requesters in topology.served_requesters().items():
            if requesters:
                distances[edp] = float(pairwise[edp, requesters].mean())
        return distances

    def _wireless_rates(self, fading: np.ndarray) -> np.ndarray:
        """Per-EDP representative delivery rates for the current fading."""
        ch = self.config.channel
        if self._distances is None:
            return np.asarray(ch.rate_of_fading(fading), dtype=float)
        return np.asarray(
            ch.rate_model().effective_rate_of_fading(
                fading,
                self._distances,
                ch.transmission_power,
                ch.path_loss_exponent,
                ch.mean_interference,
            ),
            dtype=float,
        )

    def _sharing_mask(self) -> np.ndarray:
        mask = np.zeros(self.n_edps, dtype=bool)
        for group in self.groups:
            mask[group.indices] = group.scheme.participates_in_sharing
        return mask

    def run(self, state0: Optional[PopulationState] = None) -> SimulationReport:
        """Simulate the full horizon and report utilities.

        Parameters
        ----------
        state0:
            Initial population state; defaults to the configured
            truncated-normal cache states and stationary fading.
        """
        if not self._prepared:
            self.prepare()
        cfg = self.config
        rng = self.rng
        tele = self.telemetry
        run_span = tele.span("sim_run")
        run_span.__enter__()
        state = (
            PopulationState.initial(cfg, rng, n_edps=self.n_edps)
            if state0 is None
            else state0.copy()
        )
        if state.n_edps != self.n_edps:
            raise ValueError(
                f"initial state has {state.n_edps} EDPs, expected {self.n_edps}"
            )

        times = cfg.time_axis()
        n_steps = cfg.n_time_steps
        dt = times[1] - times[0]
        sharing_mask = self._sharing_mask()
        ou = cfg.ou_process(rng)
        drift = cfg.caching_drift()

        acc = {name: np.zeros(self.n_edps) for name in TERM_NAMES}
        series = {
            name: np.zeros(n_steps + 1)
            for name in (
                "mean_remaining",
                "mean_control",
                "mean_price",
                "utility_rate",
                "case1_fraction",
                "case2_fraction",
                "case3_fraction",
            )
        }
        tracked_path = (
            np.zeros((n_steps + 1, self.track_indices.size))
            if self.track_indices is not None
            else None
        )
        group_series = {
            group.scheme.name: np.zeros(n_steps + 1) for group in self.groups
        }

        scheme_names = np.empty(self.n_edps, dtype=object)
        for group in self.groups:
            scheme_names[group.indices] = group.scheme.name

        state_flagged = False
        for step in range(n_steps + 1):
            t = times[step]
            controls = self._decide_all(t, state)
            rate_now = float(cfg.n_requests_at(t))
            if self.stochastic_requests:
                requests = rng.poisson(rate_now * dt, size=self.n_edps) / dt
            else:
                requests = np.full(self.n_edps, rate_now)

            q = state.remaining
            rate = self._wireless_rates(state.fading)
            market = clear_market(
                cfg,
                cfg.content_size,
                requests,
                q,
                controls,
                rate,
                sharing_mask,
                rng,
            )

            # Record series before the state moves.
            series["mean_remaining"][step] = float(q.mean())
            series["mean_control"][step] = float(controls.mean())
            series["mean_price"][step] = float(market.prices.mean())
            series["utility_rate"][step] = float(market.utility.mean())
            series["case1_fraction"][step] = float(market.case1.mean())
            series["case2_fraction"][step] = float(market.case2.mean())
            series["case3_fraction"][step] = float(market.case3.mean())
            if tracked_path is not None:
                tracked_path[step] = q[self.track_indices]
            for group in self.groups:
                group_series[group.scheme.name][step] = float(
                    q[group.indices].mean()
                )

            if tele.enabled:
                tele.inc("sim.steps")
                tele.inc("sim.edp_steps", float(self.n_edps))
                # Numerical-health guard: a NaN/Inf anywhere in the
                # population state poisons every later step.  Reported
                # once (the first bad step) to keep the stream small.
                if not state_flagged and not (
                    bool(np.isfinite(state.remaining).all())
                    and bool(np.isfinite(state.fading).all())
                    and bool(np.isfinite(market.prices).all())
                ):
                    state_flagged = True
                    tele.diag(
                        "sim.state_nonfinite",
                        "error",
                        value=float(step),
                        message="population state contains NaN/Inf",
                        step=int(step),
                        t=float(t),
                    )

            if step == n_steps:
                break

            # Accumulate the running terms over [t, t + dt].
            acc["trading_income"] += market.trading_income * dt
            acc["sharing_benefit"] += market.sharing_benefit * dt
            acc["placement_cost"] += market.placement_cost * dt
            acc["staleness_cost"] += market.staleness_cost * dt
            acc["sharing_cost"] += market.sharing_cost * dt

            # State transitions: Eq. (4) Euler-Maruyama + exact OU.
            drift_q = cfg.content_size * drift.rate(
                controls, cfg.popularity, cfg.timeliness
            )
            noise_q = rng.normal(0.0, cfg.caching.noise * np.sqrt(dt), self.n_edps)
            state.remaining = np.clip(
                q + drift_q * dt + noise_q, 0.0, cfg.content_size
            )
            mean_h, std_h = ou.transition_moments(state.fading, dt)
            state.fading = rng.normal(mean_h, std_h)

        per_edp: Dict[str, np.ndarray] = {k: v for k, v in acc.items()}
        per_edp["total"] = (
            acc["trading_income"]
            + acc["sharing_benefit"]
            - acc["placement_cost"]
            - acc["staleness_cost"]
            - acc["sharing_cost"]
        )
        run_span.__exit__(None, None, None)
        if tele.enabled:
            tele.event(
                "sim_end",
                n_edps=self.n_edps,
                n_steps=n_steps,
                schemes=[group.scheme.name for group in self.groups],
                run_s=run_span.duration,
            )
        return SimulationReport(
            config=cfg,
            times=times,
            scheme_names=scheme_names,
            per_edp=per_edp,
            series=series,
            group_series=group_series,
            final_state=state,
            tracked_remaining=tracked_path,
        )
