"""Approximate Nash equilibrium verification.

Theorem 2 proves the MFG has a unique equilibrium; in the *finite*
game the mean-field policy is only an epsilon-Nash strategy.  This
module measures the epsilon empirically: hold ``M - 1`` EDPs on the
equilibrium policy, let one tagged EDP deviate to alternative
strategies under common random numbers, and report the best deviation
gain (the exploitability).  A small, M-decreasing exploitability is
the finite-population signature of Def. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import CachingScheme, SchemeDecision
from repro.baselines.mfg_cp import MFGCPScheme
from repro.core.equilibrium import EquilibriumResult
from repro.core.parameters import MFGCPConfig
from repro.game.simulator import GameSimulator


class ConstantScheme(CachingScheme):
    """A fixed caching rate — the simplest deviation strategy."""

    participates_in_sharing = True

    def __init__(self, level: float) -> None:
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must lie in [0, 1], got {level}")
        self.level = float(level)
        self.name = f"const-{level:.2f}"

    def decide(self, t: float, fading: np.ndarray, remaining: np.ndarray) -> SchemeDecision:
        del t, fading
        return SchemeDecision(
            caching_rates=np.full(np.asarray(remaining).shape[0], self.level)
        )


@dataclass(frozen=True)
class DeviationProbe:
    """Result of probing one deviation strategy."""

    deviation_name: str
    equilibrium_utility: float
    deviation_utility: float

    @property
    def gain(self) -> float:
        """Utility gained by deviating (positive = profitable)."""
        return self.deviation_utility - self.equilibrium_utility


def exploitability(
    config: MFGCPConfig,
    equilibrium: EquilibriumResult,
    deviation_levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    n_edps: Optional[int] = None,
    seed: int = 0,
) -> List[DeviationProbe]:
    """Probe unilateral deviations against the equilibrium population.

    For each deviation level, two runs share the same seed (common
    random numbers): one with the tagged EDP on the equilibrium policy,
    one with it on the constant deviation.  The tagged EDP is always
    index 0 of a dedicated single-EDP group.

    Returns one :class:`DeviationProbe` per level; ``max(p.gain for p)``
    is the empirical exploitability epsilon.
    """
    m = config.n_edps if n_edps is None else int(n_edps)
    if m < 2:
        raise ValueError(f"need at least 2 EDPs to probe deviations, got {m}")

    def tagged_utility(tagged_scheme: CachingScheme) -> float:
        rng = np.random.default_rng(seed)
        sim = GameSimulator(
            config,
            assignments=[
                (tagged_scheme, 1),
                (MFGCPScheme(equilibrium=equilibrium), m - 1),
            ],
            rng=rng,
        )
        report = sim.run()
        return float(report.per_edp["total"][0])

    base_utility = tagged_utility(MFGCPScheme(equilibrium=equilibrium))
    probes = []
    for level in deviation_levels:
        probes.append(
            DeviationProbe(
                deviation_name=f"const-{level:.2f}",
                equilibrium_utility=base_utility,
                deviation_utility=tagged_utility(ConstantScheme(level)),
            )
        )
    return probes
