"""Scheme-controlled EDP groups.

A simulation run partitions the population into groups, each governed
by one :class:`repro.baselines.base.CachingScheme`.  Homogeneous runs
(the paper's per-scheme comparisons) use a single group; mixed runs
let schemes compete inside one market.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.baselines.base import CachingScheme


@dataclass
class EDPGroup:
    """A contiguous block of EDP indices controlled by one scheme.

    Attributes
    ----------
    scheme:
        The deciding scheme.
    indices:
        The EDP indices this scheme controls.
    """

    scheme: CachingScheme
    indices: np.ndarray

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=int)
        if self.indices.ndim != 1 or self.indices.size == 0:
            raise ValueError("a group needs at least one EDP index")

    @property
    def size(self) -> int:
        return self.indices.shape[0]


def build_groups(
    assignments: Sequence[Tuple[CachingScheme, int]],
) -> Tuple[List[EDPGroup], int]:
    """Lay out groups as contiguous index blocks.

    Parameters
    ----------
    assignments:
        ``(scheme, count)`` pairs; counts must be positive.

    Returns
    -------
    tuple
        The group list and the total population size.
    """
    if not assignments:
        raise ValueError("need at least one scheme assignment")
    groups: List[EDPGroup] = []
    offset = 0
    for scheme, count in assignments:
        if count < 1:
            raise ValueError(f"scheme {scheme.name!r} assigned {count} EDPs")
        groups.append(
            EDPGroup(scheme=scheme, indices=np.arange(offset, offset + count))
        )
        offset += count
    return groups, offset
