"""Multi-content game with per-EDP capacity coupling (Section IV-C).

The per-content game of :mod:`repro.game.simulator` treats contents
independently; the paper's Remark notes that a finite per-EDP cache
capacity couples them, and resolves the coupling with a knapsack over
contents.  This simulator plays the joint game:

* every EDP carries one remaining-space state per catalog content plus
  its fading state;
* each scheme decides per-content caching rates (model-based schemes
  solve one mean-field equilibrium per content during ``prepare``);
* when an EDP's desired caching would overflow its capacity, the
  fractional knapsack of :mod:`repro.core.knapsack` scales its rates —
  each content's value is its popularity-weighted demand, each weight
  the storage the rate would claim this step;
* per-content markets (pricing Eq. (5), sharing, staleness) then clear
  exactly as in the single-content game.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import CachingScheme
from repro.content.catalog import ContentCatalog
from repro.core.knapsack import KnapsackItem, solve_fractional_knapsack
from repro.core.parameters import MFGCPConfig
from repro.game.market import clear_market
from repro.game.player import build_groups
from repro.game.state import PopulationState

SchemeFactory = Callable[[], CachingScheme]


@dataclass(frozen=True)
class MultiContentReport:
    """Results of a capacity-coupled multi-content run.

    Attributes
    ----------
    times:
        Reporting time axis.
    per_edp_total:
        Accumulated Eq. (10) utility summed over contents, per EDP.
    per_content_utility:
        Accumulated population-mean utility per content.
    capacity_utilisation:
        Mean fraction of per-EDP capacity occupied, per reporting time
        (NaN-free; zero when capacity is unlimited).
    throttled_fraction:
        Fraction of EDPs whose decisions were knapsack-throttled, per
        reporting time.
    scheme_names:
        Per-EDP scheme label.
    """

    times: np.ndarray
    per_edp_total: np.ndarray
    per_content_utility: np.ndarray
    capacity_utilisation: np.ndarray
    throttled_fraction: np.ndarray
    scheme_names: np.ndarray

    def total_utility(self, scheme_name: Optional[str] = None) -> float:
        """Mean accumulated utility, optionally for one scheme."""
        if scheme_name is None:
            return float(self.per_edp_total.mean())
        mask = self.scheme_names == scheme_name
        if not mask.any():
            raise KeyError(f"no EDPs ran scheme {scheme_name!r}")
        return float(self.per_edp_total[mask].mean())


class MultiContentGameSimulator:
    """The joint K-content, M-player game under a cache-capacity budget.

    Parameters
    ----------
    config:
        Base configuration; per-content configurations are derived by
        substituting each content's size, popularity, and demand.
    catalog:
        The content catalog.
    popularity:
        Per-content popularity vector (a distribution over contents).
    assignments:
        ``(scheme_factory, count)`` pairs; a *factory* (not an
        instance) because each content needs its own prepared scheme.
    capacity:
        Per-EDP total cache capacity in MB; ``None`` disables the
        constraint (recovers independent per-content games).
    rng:
        Random generator.
    """

    def __init__(
        self,
        config: MFGCPConfig,
        catalog: ContentCatalog,
        popularity: Sequence[float],
        assignments: Sequence[Tuple[SchemeFactory, int]],
        capacity: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config
        self.catalog = catalog
        self.popularity = np.asarray(popularity, dtype=float)
        if self.popularity.shape != (len(catalog),):
            raise ValueError(
                f"popularity must have one entry per content, got "
                f"{self.popularity.shape} for {len(catalog)} contents"
            )
        if np.any(self.popularity < 0) or self.popularity.sum() <= 0:
            raise ValueError("popularity must be non-negative with positive mass")
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.rng = rng if rng is not None else np.random.default_rng()

        instantiated = [
            ([factory() for _ in range(len(catalog))], count)
            for factory, count in assignments
        ]
        # One group per assignment; group.scheme holds the per-content
        # scheme list via closure below.
        self._scheme_lists = [schemes for schemes, _ in instantiated]
        self.groups, self.n_edps = build_groups(
            [(schemes[0], count) for schemes, count in instantiated]
        )
        self._prepared = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def content_config(self, k: int) -> MFGCPConfig:
        """The per-content configuration of content ``k``."""
        self.catalog.validate_index(k)
        share = float(self.popularity[k] / self.popularity.sum())
        return replace(
            self.config,
            content_size=self.catalog[k].size_mb,
            popularity=float(np.clip(self.popularity[k], 0.0, 1.0)),
            n_requests=self.config.n_requests * share * len(self.catalog),
        )

    def prepare(self) -> None:
        """Prepare every (group, content) scheme instance."""
        for schemes in self._scheme_lists:
            for k, scheme in enumerate(schemes):
                scheme.prepare(self.content_config(k), self.rng)
        self._prepared = True

    # ------------------------------------------------------------------
    # Capacity projection
    # ------------------------------------------------------------------
    def _apply_capacity(
        self, controls: np.ndarray, remaining: np.ndarray, dt: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Project per-content controls onto the capacity budget.

        Returns the projected controls and a boolean mask of throttled
        EDPs.  For each overflowing EDP the fractional knapsack keeps
        the caching claims of the most valuable contents (value =
        popularity-weighted demand, the income driver).
        """
        if self.capacity is None:
            return controls, np.zeros(self.n_edps, dtype=bool)
        sizes = self.catalog.sizes
        cached = np.maximum(sizes[None, :] - remaining, 0.0)
        # Storage each content's caching would claim this step.
        drift = self.config.caching_drift()
        claims = np.maximum(
            -sizes[None, :]
            * drift.rate(controls, self.popularity[None, :], self.config.timeliness)
            * dt,
            0.0,
        )
        headroom = self.capacity - cached.sum(axis=1)
        overflow = claims.sum(axis=1) > np.maximum(headroom, 0.0)
        throttled = overflow.copy()
        projected = controls.copy()
        for i in np.flatnonzero(overflow):
            budget = max(float(headroom[i]), 0.0)
            items = [
                KnapsackItem(
                    content_id=k,
                    weight=float(claims[i, k]),
                    value=float(self.popularity[k] * sizes[k]),
                )
                for k in range(len(self.catalog))
                if claims[i, k] > 0
            ]
            if not items:
                continue
            fractions = solve_fractional_knapsack(items, budget)
            for item in items:
                projected[i, item.content_id] *= fractions[item.content_id]
        return projected, throttled

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> MultiContentReport:
        """Simulate the joint game over the horizon."""
        if not self._prepared:
            self.prepare()
        cfg = self.config
        rng = self.rng
        n_contents = len(self.catalog)
        sizes = self.catalog.sizes

        # Initial states: the configured law per content, shared fading.
        base_state = PopulationState.initial(cfg, rng, n_edps=self.n_edps)
        fading = base_state.fading
        remaining = np.empty((self.n_edps, n_contents))
        for k in range(n_contents):
            mean_frac, std_frac = cfg.initial_mean_fraction, cfg.initial_std_fraction
            remaining[:, k] = np.clip(
                rng.normal(mean_frac * sizes[k], std_frac * sizes[k], self.n_edps),
                0.0,
                sizes[k],
            )
        if self.capacity is not None:
            # Scale initial holdings into the budget if they overflow.
            cached = np.maximum(sizes[None, :] - remaining, 0.0)
            totals = cached.sum(axis=1)
            over = totals > self.capacity
            if over.any():
                scale = np.where(over, self.capacity / np.maximum(totals, 1e-12), 1.0)
                cached = cached * scale[:, None]
                remaining = sizes[None, :] - cached

        times = cfg.time_axis()
        n_steps = cfg.n_time_steps
        dt = times[1] - times[0]
        ou = cfg.ou_process(rng)
        drift = cfg.caching_drift()
        sharing_mask = np.zeros(self.n_edps, dtype=bool)
        for group, schemes in zip(self.groups, self._scheme_lists):
            sharing_mask[group.indices] = schemes[0].participates_in_sharing

        scheme_names = np.empty(self.n_edps, dtype=object)
        for group in self.groups:
            scheme_names[group.indices] = group.scheme.name

        per_edp_total = np.zeros(self.n_edps)
        per_content = np.zeros(n_contents)
        capacity_util = np.zeros(n_steps + 1)
        throttled_frac = np.zeros(n_steps + 1)

        for step in range(n_steps + 1):
            t = times[step]
            # Per-content decisions.
            controls = np.zeros((self.n_edps, n_contents))
            for group, schemes in zip(self.groups, self._scheme_lists):
                idx = group.indices
                for k in range(n_contents):
                    decision = schemes[k].decide(t, fading[idx], remaining[idx, k])
                    controls[idx, k] = decision.caching_rates
            controls, throttled = self._apply_capacity(controls, remaining, dt)
            throttled_frac[step] = float(throttled.mean())
            if self.capacity is not None:
                cached_now = np.maximum(sizes[None, :] - remaining, 0.0).sum(axis=1)
                capacity_util[step] = float((cached_now / self.capacity).mean())

            if step == n_steps:
                break

            rate = np.maximum(
                np.asarray(cfg.channel.rate_of_fading(fading), dtype=float), 1e-9
            )
            demand_scale = float(np.exp(-cfg.demand_decay * t))
            for k in range(n_contents):
                utility_k = self._content_market(
                    k, controls[:, k], remaining[:, k], rate,
                    sharing_mask, demand_scale,
                )
                per_edp_total += utility_k * dt
                per_content[k] += float(utility_k.mean()) * dt

            # State transitions.
            for k in range(n_contents):
                drift_q = sizes[k] * drift.rate(
                    controls[:, k], self.popularity[k], cfg.timeliness
                )
                noise = rng.normal(0.0, cfg.caching.noise * np.sqrt(dt), self.n_edps)
                remaining[:, k] = np.clip(
                    remaining[:, k] + drift_q * dt + noise, 0.0, sizes[k]
                )
            mean_h, std_h = ou.transition_moments(fading, dt)
            fading = rng.normal(mean_h, std_h)

        return MultiContentReport(
            times=times,
            per_edp_total=per_edp_total,
            per_content_utility=per_content,
            capacity_utilisation=capacity_util,
            throttled_fraction=throttled_frac,
            scheme_names=scheme_names,
        )

    # ------------------------------------------------------------------
    # One content's market for one step
    # ------------------------------------------------------------------
    def _content_market(
        self,
        k: int,
        controls: np.ndarray,
        remaining: np.ndarray,
        rate: np.ndarray,
        sharing_mask: np.ndarray,
        demand_scale: float,
    ) -> np.ndarray:
        """Instantaneous Eq. (10) utilities for content ``k``."""
        cfg = self.config
        size = self.catalog[k].size_mb
        share = float(self.popularity[k] / self.popularity.sum())
        requests = cfg.n_requests * share * len(self.catalog) * demand_scale
        step = clear_market(
            cfg, size, requests, remaining, controls, rate, sharing_mask, self.rng
        )
        return step.utility
