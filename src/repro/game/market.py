"""One decision step of the finite-population content market.

Both game simulators (:mod:`repro.game.simulator` per content,
:mod:`repro.game.multi_content` jointly over a catalog) clear the same
market each step:

1. finite-population prices, Eq. (5), one per EDP;
2. the centre's sharing assignment — case-2 buyers matched to
   qualified sharers, each sharer serving at most ``sharer_capacity``
   buyers, the rest falling back to the cloud (case 3);
3. the Eq. (10) money flows: trading income (Eq. (6)), placement cost
   (Eq. (8)), staleness cost (Eq. (9)), and the sharing
   benefit/cost transfers (Eq. (7)).

:func:`clear_market` implements the step once; the simulators own only
state evolution and bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.parameters import MFGCPConfig
from repro.economics.costs import placement_cost


@dataclass(frozen=True)
class MarketStep:
    """The cleared market for one decision step (all arrays ``(M,)``).

    Attributes
    ----------
    prices:
        Eq. (5) unit prices per EDP.
    case1, case2, case3:
        Response-case masks (each EDP in exactly one).
    trading_income, placement_cost, staleness_cost:
        Per-EDP money flow rates.
    sharing_benefit, sharing_cost:
        Peer-market transfers; population totals balance exactly.
    """

    prices: np.ndarray
    case1: np.ndarray
    case2: np.ndarray
    case3: np.ndarray
    trading_income: np.ndarray
    placement_cost: np.ndarray
    staleness_cost: np.ndarray
    sharing_benefit: np.ndarray
    sharing_cost: np.ndarray

    @property
    def utility(self) -> np.ndarray:
        """Per-EDP instantaneous Eq. (10) utility."""
        return (
            self.trading_income
            + self.sharing_benefit
            - self.placement_cost
            - self.staleness_cost
            - self.sharing_cost
        )


def finite_prices(
    config: MFGCPConfig, content_size: float, controls: np.ndarray
) -> np.ndarray:
    """Vectorised Eq. (5) prices for the whole population."""
    controls = np.asarray(controls, dtype=float)
    m = controls.shape[0]
    if m == 1:
        return np.array([config.p_hat])
    competitor_supply = controls.sum() - controls
    price = config.p_hat - config.eta1 * content_size * competitor_supply / (m - 1)
    return np.maximum(price, 0.0)


def match_sharing(
    config: MFGCPConfig,
    remaining: np.ndarray,
    sharing_mask: np.ndarray,
    threshold: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The centre's capacity-limited sharing assignment.

    The paper: "the center will randomly assign a suitable EDP to
    respond to the corresponding EDP's request" — buyers (EDPs lacking
    the content and participating in sharing) are matched to qualified
    sharers, each serving at most ``sharer_capacity`` buyers; unmatched
    buyers fall back to the cloud.

    Returns ``(case2_mask, buyer_indices, sharer_indices)`` with the
    last two aligned (buyer ``i`` buys from sharer ``i``).
    """
    remaining = np.asarray(remaining, dtype=float)
    n_edps = remaining.shape[0]
    own_has = remaining <= threshold
    pool = np.flatnonzero(own_has & sharing_mask)
    buyers = np.flatnonzero(~own_has & sharing_mask)
    case2 = np.zeros(n_edps, dtype=bool)
    if pool.size == 0 or buyers.size == 0:
        empty = np.empty(0, dtype=int)
        return case2, empty, empty
    n_served = min(buyers.size, config.sharer_capacity * pool.size)
    served = rng.permutation(buyers)[:n_served]
    # Round-robin over a shuffled pool keeps every sharer at or below
    # its per-step capacity.
    sharers = np.tile(rng.permutation(pool), config.sharer_capacity)[:n_served]
    case2[served] = True
    return case2, served, sharers


def clear_market(
    config: MFGCPConfig,
    content_size: float,
    requests: np.ndarray,
    remaining: np.ndarray,
    controls: np.ndarray,
    wireless_rate: np.ndarray,
    sharing_mask: np.ndarray,
    rng: np.random.Generator,
) -> MarketStep:
    """Clear one decision step of the market for one content.

    Parameters
    ----------
    config:
        Market parameters (prices, costs, alpha, sharer capacity).
    content_size:
        ``Q_k`` in MB (passed separately so the multi-content game can
        vary it per content).
    requests:
        Per-EDP request rates ``|I_k(t)|`` (scalar broadcastable).
    remaining:
        Per-EDP remaining space ``q_i``.
    controls:
        Per-EDP caching rates ``x_i``.
    wireless_rate:
        Per-EDP representative delivery rates ``H_i`` (must be > 0).
    sharing_mask:
        Which EDPs participate in paid peer sharing.
    rng:
        Generator used for the centre's sharing assignment.
    """
    remaining = np.asarray(remaining, dtype=float)
    controls = np.asarray(controls, dtype=float)
    n_edps = remaining.shape[0]
    requests = np.broadcast_to(np.asarray(requests, dtype=float), (n_edps,))
    wireless_rate = np.maximum(
        np.broadcast_to(np.asarray(wireless_rate, dtype=float), (n_edps,)), 1e-9
    )
    threshold = config.alpha * content_size

    prices = finite_prices(config, content_size, controls)
    case2, served, sharers = match_sharing(
        config, remaining, sharing_mask, threshold, rng
    )
    own_has = remaining <= threshold
    # Peer state enters income/staleness only under the case-2 mask;
    # default to own state elsewhere (multiplied by zero).
    q_peer = remaining.copy()
    if served.size:
        q_peer[served] = remaining[sharers]
    case1 = own_has
    case3 = (~own_has) & (~case2)

    sold = (
        case1 * (content_size - remaining)
        + case2 * (content_size - q_peer)
        + case3 * content_size
    )
    income = requests * prices * sold
    place = placement_cost(controls, config.w4, config.w5)
    stale = config.eta2 * (
        content_size * controls / config.backhaul_rate
        + requests
        * (
            case1 * (content_size - remaining) / wireless_rate
            + case2 * (content_size - q_peer) / wireless_rate
            + case3 * (remaining / config.backhaul_rate + content_size / wireless_rate)
        )
    )
    share_cost = np.zeros(n_edps)
    share_benefit = np.zeros(n_edps)
    if served.size:
        transfer = np.maximum(remaining[served] - remaining[sharers], 0.0)
        share_cost[served] = config.sharing_price * transfer
        np.add.at(share_benefit, sharers, config.sharing_price * transfer)

    return MarketStep(
        prices=prices,
        case1=case1,
        case2=case2,
        case3=case3,
        trading_income=income,
        placement_cost=np.asarray(place, dtype=float),
        staleness_cost=stale,
        sharing_benefit=share_benefit,
        sharing_cost=share_cost,
    )
