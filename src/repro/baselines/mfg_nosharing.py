"""The "MFG" baseline: MFG-CP without peer content sharing.

"The MFG scheme is a downgraded version of MFG-CP, in which the
content sharing is not considered" (§V-A, after [27]).  Its EDPs
optimise the same mean-field objective minus the sharing benefit and
sharing cost, and they do not take part in the peer-sharing market —
when they lack a content they download from the cloud centre (case 3)
even if a neighbour could have sold it to them.
"""

from __future__ import annotations

from repro.baselines.mfg_cp import MFGCPScheme
from repro.core.parameters import MFGCPConfig


class MFGNoSharingScheme(MFGCPScheme):
    """Mean-field caching control with the sharing economics removed."""

    name = "MFG"
    participates_in_sharing = False

    def _solver_config(self, config: MFGCPConfig) -> MFGCPConfig:
        return config.without_sharing()
