"""Common interface for content placement schemes.

A scheme decides the caching rate ``x_i(t) in [0, 1]`` for every EDP it
controls, given the EDP's local state.  The finite-population simulator
calls :meth:`CachingScheme.prepare` once before a run (this is where
MFG-CP pays its one-off equilibrium solve — the reason its per-epoch
cost is flat in ``M``, Table II) and :meth:`CachingScheme.decide` at
every decision step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.parameters import MFGCPConfig
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry


@dataclass(frozen=True)
class SchemeDecision:
    """The caching rates a scheme chose for its EDPs at one step."""

    caching_rates: np.ndarray

    def __post_init__(self) -> None:
        rates = np.asarray(self.caching_rates, dtype=float)
        if np.any(rates < -1e-9) or np.any(rates > 1.0 + 1e-9):
            raise ValueError("caching rates must lie in [0, 1]")
        object.__setattr__(self, "caching_rates", np.clip(rates, 0.0, 1.0))


class CachingScheme(abc.ABC):
    """Abstract content placement scheme.

    Attributes
    ----------
    name:
        Display name used by reports and benches.
    participates_in_sharing:
        Whether this scheme's EDPs take part in paid peer sharing.
        The "MFG" baseline sets this to False ("content sharing is not
        considered"), forcing its EDPs from case 2 into case 3.
    """

    name: str = "scheme"
    participates_in_sharing: bool = True
    telemetry: SolverTelemetry = NULL_TELEMETRY

    def bind_telemetry(self, telemetry: SolverTelemetry) -> None:
        """Attach an observer; the simulator binds its own on prepare."""
        self.telemetry = telemetry

    def record_decide(self, n_edps: int) -> None:
        """Count one ``decide`` call over ``n_edps`` EDPs (no-op when off)."""
        if self.telemetry.enabled:
            self.telemetry.inc(f"scheme.{self.name}.decide_calls")
            self.telemetry.inc(f"scheme.{self.name}.edp_decisions", float(n_edps))

    def prepare(self, config: MFGCPConfig, rng: np.random.Generator) -> None:
        """One-off setup before a simulation run.

        Default is a no-op; model-based schemes solve their control
        problem here.  ``prepare`` must be called before ``decide``.
        """
        del config, rng

    @abc.abstractmethod
    def decide(self, t: float, fading: np.ndarray, remaining: np.ndarray) -> SchemeDecision:
        """Caching rates for EDPs with states ``(fading_i, remaining_i)``.

        Parameters
        ----------
        t:
            Current simulation time.
        fading:
            Channel fading coefficients, shape ``(n,)``.
        remaining:
            Remaining cache spaces ``q_i`` in MB, shape ``(n,)``.
        """

    def describe(self) -> str:
        """Short human-readable description."""
        sharing = "shares" if self.participates_in_sharing else "no sharing"
        return f"{self.name} ({sharing})"
