"""Random Replacement (RR) baseline.

"The RR policy adopts random caching decisions" — each EDP draws an
independent uniform caching rate at every decision step.  The decision
loop is deliberately per-EDP (the paper's Table II attributes RR's
linear-in-``M`` runtime to "M iterations of random number generation
operations"), so the measured scaling matches the baseline as the
paper describes it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import CachingScheme, SchemeDecision
from repro.core.parameters import MFGCPConfig


class RandomReplacementScheme(CachingScheme):
    """Uniform-random caching rates, redrawn each decision step."""

    name = "RR"
    participates_in_sharing = True

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng

    def prepare(self, config: MFGCPConfig, rng: np.random.Generator) -> None:
        del config
        if self._rng is None:
            self._rng = rng

    def decide(self, t: float, fading: np.ndarray, remaining: np.ndarray) -> SchemeDecision:
        del t, fading
        if self._rng is None:
            raise RuntimeError("prepare() must be called before decide()")
        remaining = np.asarray(remaining, dtype=float)
        self.record_decide(remaining.shape[0])
        rates = np.empty(remaining.shape[0])
        # One draw per EDP, as in the paper's per-EDP decision loop.
        for i in range(remaining.shape[0]):
            rates[i] = self._rng.uniform(0.0, 1.0)
        return SchemeDecision(caching_rates=rates)
