"""Caching schemes: MFG-CP and the four comparison baselines (§V-A).

* :class:`MFGCPScheme` — the paper's proposal (equilibrium policy
  lookup from the solved coupled HJB-FPK system).
* :class:`MFGNoSharingScheme` — the downgraded "MFG" baseline without
  peer content sharing.
* :class:`UDCSScheme` — ultra-dense caching strategy: long-run cost
  minimisation, ignoring pricing and sharing.
* :class:`MostPopularScheme` — MPC: cache only currently most popular
  contents.
* :class:`RandomReplacementScheme` — RR: random caching decisions.
"""

from repro.baselines.base import CachingScheme, SchemeDecision
from repro.baselines.random_replacement import RandomReplacementScheme
from repro.baselines.most_popular import MostPopularScheme
from repro.baselines.mfg_cp import MFGCPScheme
from repro.baselines.mfg_nosharing import MFGNoSharingScheme
from repro.baselines.udcs import UDCSScheme

__all__ = [
    "CachingScheme",
    "SchemeDecision",
    "RandomReplacementScheme",
    "MostPopularScheme",
    "MFGCPScheme",
    "MFGNoSharingScheme",
    "UDCSScheme",
]
