"""The MFG-CP scheme: equilibrium feedback policy lookup.

``prepare`` runs the full iterative best-response solve (Alg. 2) once
— a cost independent of the population size ``M`` because the
mean-field game replaces per-EDP interactions with the population
density.  ``decide`` is then a vectorised table lookup per EDP, so the
per-epoch decision cost stays flat as ``M`` grows (Table II).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import CachingScheme, SchemeDecision
from repro.core.best_response import BestResponseIterator
from repro.core.equilibrium import EquilibriumResult
from repro.core.parameters import MFGCPConfig


class MFGCPScheme(CachingScheme):
    """The paper's joint caching-and-pricing framework.

    Parameters
    ----------
    equilibrium:
        Optionally inject a pre-solved equilibrium (lets benches share
        one solve across simulator runs); otherwise ``prepare`` solves.
    """

    name = "MFG-CP"
    participates_in_sharing = True

    def __init__(self, equilibrium: Optional[EquilibriumResult] = None) -> None:
        self._equilibrium = equilibrium

    @property
    def equilibrium(self) -> EquilibriumResult:
        """The solved equilibrium (after ``prepare``)."""
        if self._equilibrium is None:
            raise RuntimeError("prepare() must be called before using the equilibrium")
        return self._equilibrium

    def _solver_config(self, config: MFGCPConfig) -> MFGCPConfig:
        """The configuration handed to the equilibrium solver."""
        return config

    def prepare(self, config: MFGCPConfig, rng: np.random.Generator) -> None:
        del rng
        if self._equilibrium is None:
            with self.telemetry.span("prepare_equilibrium"):
                self._equilibrium = BestResponseIterator(
                    self._solver_config(config), telemetry=self.telemetry
                ).solve()

    def decide(self, t: float, fading: np.ndarray, remaining: np.ndarray) -> SchemeDecision:
        fading = np.asarray(fading, dtype=float)
        self.record_decide(fading.size)
        rates = self.equilibrium.policy.batch(
            t, fading, np.asarray(remaining, dtype=float)
        )
        return SchemeDecision(caching_rates=rates)
