"""Ultra-Dense Caching Strategy (UDCS) baseline.

"The UDCS approach takes into account the content overlap and
interference, without considering the pricing issue and content
sharing" and "focuses on minimizing the long-run average cost" (§V-A,
after [28]).  We implement it as the cost-minimising mean-field
control: the same HJB machinery solves the control problem with the
trading income and sharing terms removed from the objective
(``include_trading = include_sharing = False``), so the EDP balances
placement cost against staleness (delay) cost only.  Content overlap
and interference are captured through the shared population density
and the interference-aware rate model — but, exactly as the paper
notes, the resulting policy never reacts to prices, which is why its
utility barely moves across the popularity sweep of Fig. 13.
"""

from __future__ import annotations

from repro.baselines.mfg_cp import MFGCPScheme
from repro.core.parameters import MFGCPConfig
from dataclasses import replace


class UDCSScheme(MFGCPScheme):
    """Long-run average-cost minimisation, pricing- and sharing-blind."""

    name = "UDCS"
    participates_in_sharing = False

    def _solver_config(self, config: MFGCPConfig) -> MFGCPConfig:
        return replace(config, include_trading=False, include_sharing=False)
