"""Most Popular Caching (MPC) baseline.

"The MPC method only caches currently most popular contents" (after
[18], FGPC).  For the per-content game this means: cache at full rate
while the content's popularity clears a threshold and the EDP still
lacks the content; otherwise do not cache.  MPC ignores prices, peer
states and the market altogether.

The decision loop is per-EDP by construction (each EDP checks its own
remaining space against its popularity ranking), which is what makes
MPC's runtime grow with ``M`` in Table II.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CachingScheme, SchemeDecision
from repro.core.parameters import MFGCPConfig


class MostPopularScheme(CachingScheme):
    """Full-rate caching of popular contents, nothing else.

    Parameters
    ----------
    popularity_threshold:
        The content is considered "most popular" when its popularity
        ``Pi_k`` is at least this value.  With a Zipf prior over K=20
        contents the top handful clear 0.1.
    """

    name = "MPC"
    participates_in_sharing = True

    def __init__(self, popularity_threshold: float = 0.1) -> None:
        if not 0.0 <= popularity_threshold <= 1.0:
            raise ValueError(
                f"popularity_threshold must lie in [0, 1], got {popularity_threshold}"
            )
        self.popularity_threshold = popularity_threshold
        self._is_popular = False
        self._stop_threshold = 0.0

    def prepare(self, config: MFGCPConfig, rng: np.random.Generator) -> None:
        del rng
        self._is_popular = config.popularity >= self.popularity_threshold
        # Stop caching once the content counts as fully held (case 1).
        self._stop_threshold = config.alpha * config.content_size

    def decide(self, t: float, fading: np.ndarray, remaining: np.ndarray) -> SchemeDecision:
        del t, fading
        remaining = np.asarray(remaining, dtype=float)
        self.record_decide(remaining.shape[0])
        rates = np.empty(remaining.shape[0])
        # Per-EDP loop: each EDP inspects its own cache fill state.
        for i in range(remaining.shape[0]):
            if self._is_popular and remaining[i] > self._stop_threshold:
                rates[i] = 1.0
            else:
                rates[i] = 0.0
        return SchemeDecision(caching_rates=rates)
