"""Command-line interface for the MFG-CP reproduction.

Subcommands
-----------
``solve``
    Solve a single-content mean-field equilibrium and print the
    convergence report, market paths, and utility decomposition.
``simulate``
    Run the finite-population game for one or more schemes and print
    the comparison rows.
``experiment``
    Regenerate a paper figure/table by name (``fig3`` ... ``fig14``,
    ``table2``) through the experiment harness.
``report``
    Summarise a telemetry JSONL run: span tree, iteration table,
    numerical health, and top metrics (see ``docs/observability.md``).
``compare``
    Diff two telemetry runs (span timings, metrics, diagnostics) or
    two benchmark JSON files (``--bench``) with relative-regression
    thresholds; ``--fail-on-regression`` turns findings into exit 1.
``trace``
    Two modes: ``repro trace RUN.jsonl OUT.json`` exports a telemetry
    run as a Chrome trace-event file (open in chrome://tracing or
    Perfetto); ``repro trace --videos N --out CSV`` generates the
    legacy synthetic YouTube-trending trace CSV.
``serve``
    Replay a synthetic request trace against a population of EDP edge
    caches and report serving metrics (hit ratio, staleness-violation
    rate, latency, backhaul, trading revenue) per policy — the MFG
    equilibrium adapter alongside LRU/LFU/random/most-popular (see
    ``docs/serving.md``).
``serve-net``
    Replay a Zipf request trace through a hierarchical *cache network*
    (``--topology path:6 | tree:2x4 | ring:8 | mesh:12x3``): misses
    route hop by hop toward the origin and an on-path placement
    strategy (``lce``/``lcd``/``probcache``/``edge``/``mfg``) decides
    which nodes keep a copy, behind finite per-node admission queues
    (see docs/serving.md "Cache networks").
``env``
    Print the environment fingerprint (python/numpy/scipy versions,
    platform, git SHA + dirty flag) as JSON — the same facts every
    run manifest records.
``runs``
    Inspect the run-provenance registry: every ``solve`` /
    ``simulate`` / ``experiment`` / ``serve`` / ``serve-net`` run
    appends a RunManifest (config snapshot + hash, argv, environment,
    seed lineage, wall time, exit status, headline metrics) under
    ``.repro/runs/``.  ``runs list|show|diff|gc`` query and prune it;
    opt out per run with ``--no-registry`` or globally with
    ``REPRO_REGISTRY=0`` (see ``docs/observability.md``).
``trend``
    Fold append-only ``BENCH_*.json`` trajectories and the run
    registry into per-metric time series with sparkline/delta tables;
    ``--fail-on-regression`` gates on trajectory slope.
``verify``
    Evaluate the Lemma 1/2 hypotheses and the Theorem 2 contraction
    diagnostics for a configuration.

``solve``, ``simulate``, ``experiment`` and ``serve`` accept
``--telemetry PATH.jsonl`` to stream solver events (per-iteration
residuals, stage timings, step counters) to a JSON-lines file,
``--profile`` to add per-span resource fields (CPU, RSS, GC),
``--strict-numerics`` to abort on error-severity ``diag.*`` findings
(exit 3), plus ``--backend serial|process[:N]`` / ``--workers N`` to
pick the execution backend for the embarrassingly-parallel fan-outs
(results are bit-identical across backends; see ``docs/runtime.md``).

Fault tolerance (``docs/runtime.md``): ``--checkpoint-dir DIR``
persists every completed work item so an interrupted sweep can be
rerun with ``--resume`` (only the missing items execute; results and
merged telemetry match an uninterrupted run), ``--max-retries N``
retries failing items on a deterministic backoff schedule, and
``--inject-faults SPEC`` activates the :mod:`repro.testing.faults`
harness for debugging.  Exit codes: 1 — a work item failed after
exhausting its retries; 2 — usage errors, malformed specs, or a
missing/corrupt checkpoint manifest under ``--resume``; 3 —
``--strict-numerics`` abort.

Examples
--------
    python -m repro.cli solve --fast
    python -m repro.cli solve --fast --telemetry run.jsonl --strict-numerics
    python -m repro.cli report run.jsonl
    python -m repro.cli compare baseline.jsonl candidate.jsonl
    python -m repro.cli trace run.jsonl run.trace.json
    python -m repro.cli simulate --schemes MFG-CP,MFG --edps 60
    python -m repro.cli experiment fig14 --backend process:4
    python -m repro.cli trace --videos 500 --out /tmp/trace.csv
    python -m repro.cli serve --policy all --requests 20000 --edps 16
    python -m repro.cli serve --policy mfg --requests 1000000 --backend process:4
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis import experiments
from repro.analysis.reporting import format_table
from repro.content.trace import SyntheticYouTubeTrace
from repro.core.parameters import MFGCPConfig
from repro.core.solver import MFGCPSolver
from repro.core import theory
from repro.obs.compare import compare_bench, compare_runs
from repro.obs.events import read_events_tolerant
from repro.obs.report import load_run, render_report
from repro.obs.trace import write_chrome_trace
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    SolverTelemetry,
    StrictNumericsError,
)
from repro.runtime import (
    CheckpointError,
    CheckpointStore,
    Executor,
    FaultPolicy,
    ItemFailedError,
    ResumableExecutor,
    make_executor,
)
from repro.testing.faults import FaultSpecError, clear_faults, install_faults

EXPERIMENT_NAMES = (
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12", "fig13", "fig14", "table2",
)

#: Subcommands that execute a run and record a manifest in the
#: provenance registry (see :mod:`repro.obs.registry`).
RUN_COMMANDS = ("solve", "simulate", "experiment", "serve", "serve-net")

#: CLI argument names that shape *how* a run executes, not *what* it
#: computes — excluded from the manifest's config snapshot so backend
#: or observability flags never perturb the run identity.
_NON_CONFIG_ARGS = frozenset({
    "command", "backend", "workers", "checkpoint_dir", "resume",
    "max_retries", "inject_faults", "telemetry", "profile",
    "strict_numerics", "live_status", "live_every", "no_registry",
    "registry_dir", "out",
})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MFG-CP: joint mobile edge caching and pricing (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_config_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fast", action="store_true",
                       help="coarse grid (quick demo) instead of paper default")
        p.add_argument("--content-size", type=float, default=None,
                       help="content size Q_k in MB")
        p.add_argument("--eta1", type=float, default=None,
                       help="supply-to-money conversion eta1")
        p.add_argument("--popularity", type=float, default=None,
                       help="content popularity Pi_k in [0, 1]")
        p.add_argument("--no-sharing", action="store_true",
                       help="disable peer sharing (the MFG baseline model)")

    def add_telemetry_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--telemetry", metavar="PATH.jsonl", default=None,
                       help="stream solver telemetry events to a JSONL file "
                            "(summarise later with 'repro report')")
        p.add_argument("--profile", action="store_true",
                       help="add per-span resource profiling (process CPU, "
                            "RSS delta, GC collections) to the telemetry; "
                            "implies nothing when --telemetry is absent")
        p.add_argument("--strict-numerics", action="store_true",
                       help="abort (exit 3) on any error-severity diag.* "
                            "numerical-health finding; enables in-memory "
                            "telemetry when --telemetry is not given")
        p.add_argument("--live-status", metavar="STATUS.json", default=None,
                       help="write an atomic live run-status JSON snapshot "
                            "as work completes (phase, progress, throughput, "
                            "windowed serving stats, worker heartbeats); "
                            "follow it with 'repro watch STATUS.json'")
        p.add_argument("--live-every", type=int, default=None, metavar="N",
                       help="completed items between live-status rewrites "
                            "(default 16; phase changes always write)")
        p.add_argument("--no-registry", action="store_true",
                       help="skip recording this run's manifest in the "
                            "provenance registry (also: REPRO_REGISTRY=0)")
        p.add_argument("--registry-dir", default=None, metavar="DIR",
                       help="run-manifest registry root (default: "
                            "$REPRO_REGISTRY_DIR or .repro/runs)")

    def add_runtime_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", default="serial",
                       help="execution backend for fan-out work: 'serial' "
                            "(default) or 'process[:N]' for an N-worker "
                            "process pool")
        p.add_argument("--workers", type=int, default=None,
                       help="worker count for the process backend "
                            "(overrides a count embedded in --backend)")
        p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="persist every completed work item into DIR so "
                            "an interrupted run can be resumed; without "
                            "--resume an existing store is reset first")
        p.add_argument("--resume", action="store_true",
                       help="skip work items already completed in "
                            "--checkpoint-dir (exit 2 when the store's "
                            "manifest is missing or malformed)")
        p.add_argument("--max-retries", type=int, default=0, metavar="N",
                       help="retry a failing work item up to N times on a "
                            "deterministic exponential-backoff schedule "
                            "before giving up (exit 1)")
        p.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="debug: activate the deterministic fault harness "
                            "(e.g. 'raise:item=2' or 'kill:label=content:*'; "
                            "see repro.testing.faults)")

    def add_stream_args(p: argparse.ArgumentParser, zipf_alpha: bool = True) -> None:
        p.add_argument("--stream", default=None, metavar="KIND",
                       choices=("zipf", "shuffled-zipf", "diurnal",
                                "flash-crowd", "trace"),
                       help="replay from the chunked streaming request "
                            "pipeline instead of a materialised trace: "
                            "zipf, shuffled-zipf, diurnal, flash-crowd, or "
                            "trace (bounded memory; a new determinism "
                            "domain — see docs/serving.md)")
        p.add_argument("--stream-chunk", type=int, default=8, metavar="SLOTS",
                       help="slots per streamed chunk (0 = the whole replay "
                            "as one chunk; default 8; pure memory grain, "
                            "never affects results)")
        p.add_argument("--warmup-slots", type=int, default=0, metavar="N",
                       help="icarus-style warmup: the first N slots populate "
                            "caches but are excluded from every reported "
                            "counter (streamed replays only)")
        p.add_argument("--trace-file", default=None, metavar="CSV",
                       help="trending-trace CSV backing '--stream trace'")
        if zipf_alpha:
            p.add_argument("--zipf-alpha", type=float, default=1.0,
                           help="Zipf exponent of the streamed workload "
                                "(streamed replays only)")

    p_solve = sub.add_parser("solve", help="solve one mean-field equilibrium")
    add_config_args(p_solve)
    add_telemetry_arg(p_solve)
    add_runtime_args(p_solve)

    p_sim = sub.add_parser("simulate", help="finite-population scheme comparison")
    add_config_args(p_sim)
    add_telemetry_arg(p_sim)
    add_runtime_args(p_sim)
    p_sim.add_argument("--schemes", default="MFG-CP,MFG,UDCS,MPC,RR",
                       help="comma-separated scheme names")
    p_sim.add_argument("--edps", type=int, default=60, help="population size M")
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="replicate seeds per scheme (seed, seed+1, ...)")

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p_exp.add_argument("name", choices=EXPERIMENT_NAMES)
    add_telemetry_arg(p_exp)
    add_runtime_args(p_exp)

    p_report = sub.add_parser(
        "report", help="summarise a telemetry JSONL run"
    )
    p_report.add_argument("path", help="telemetry JSONL file to summarise")

    p_cmp = sub.add_parser(
        "compare", help="diff two telemetry runs or benchmark JSON files"
    )
    p_cmp.add_argument("baseline", help="baseline run (JSONL, or JSON with --bench)")
    p_cmp.add_argument("candidate", help="candidate run to compare against it")
    p_cmp.add_argument("--bench", action="store_true",
                       help="treat the inputs as benchmark JSON documents "
                            "(BENCH_*.json) instead of telemetry JSONL runs")
    p_cmp.add_argument("--span-threshold", type=float, default=0.2,
                       help="relative span-time growth that counts as a "
                            "regression (default 0.2 = +20%%)")
    p_cmp.add_argument("--metric-threshold", type=float, default=0.2,
                       help="relative metric change worth reporting "
                            "(default 0.2)")
    p_cmp.add_argument("--fail-on-regression", action="store_true",
                       help="exit 1 when any regression is flagged (default "
                            "is report-only, exit 0)")

    p_trace = sub.add_parser(
        "trace",
        help="export a telemetry run as a Chrome trace, or generate a "
             "synthetic trending trace CSV",
    )
    p_trace.add_argument("run", nargs="?", default=None,
                         help="telemetry JSONL run to export (Chrome trace "
                              "mode; also pass OUT.json)")
    p_trace.add_argument("out_json", nargs="?", default=None,
                         help="output Chrome trace-event JSON path")
    p_trace.add_argument("--videos", type=int, default=1000)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default=None,
                         help="output CSV path (synthetic-trace mode)")

    p_serve = sub.add_parser(
        "serve", help="replay a request trace against EDP edge caches"
    )
    p_serve.add_argument("--policy", default="mfg",
                         help="serving policy: one of mfg/lru/lfu/random/"
                              "most-popular, a comma list, or 'all' for the "
                              "full comparison table")
    p_serve.add_argument("--requests", type=float, default=100_000,
                         help="target total request volume across all EDPs "
                              "(sets the per-EDP arrival rate)")
    p_serve.add_argument("--edps", type=int, default=16,
                         help="population size M")
    p_serve.add_argument("--contents", type=int, default=12,
                         help="catalog size K")
    p_serve.add_argument("--workload", default="video_marketplace",
                         choices=("video_marketplace", "traffic_information",
                                  "news_cycle"),
                         help="canned workload scenario")
    p_serve.add_argument("--slots", type=int, default=25,
                         help="trace slots over the epoch")
    p_serve.add_argument("--capacity-fraction", type=float, default=0.3,
                         help="edge storage as a fraction of catalog volume")
    p_serve.add_argument("--seed", type=int, default=7,
                         help="root seed for every per-EDP request stream")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="replay shard count (default min(edps, 8); "
                              "never affects results)")
    p_serve.add_argument("--out", default=None,
                         help="directory for CSV/JSON export of the reports")
    p_serve.add_argument("--solver-batching", action="store_true",
                         help="solve the mfg policy's equilibria through the "
                              "batched tensor pipeline (one work item per "
                              "content shard; bit-identical results)")
    p_serve.add_argument("--batch-size", type=int, default=32, metavar="B",
                         help="max contents per batched shard "
                              "(with --solver-batching; default 32)")
    add_stream_args(p_serve)
    add_telemetry_arg(p_serve)
    add_runtime_args(p_serve)

    p_net = sub.add_parser(
        "serve-net",
        help="replay a request trace through a hierarchical cache network",
    )
    p_net.add_argument("--topology", default="tree:2x4",
                       help="network spec: path:N, tree:KxD (K-ary, depth D),"
                            " ring:N, or mesh:N[xK] (default tree:2x4, the "
                            "15-router binary tree)")
    p_net.add_argument("--strategy", default="all",
                       help="placement strategy: one of lce/lcd/probcache/"
                            "edge/mfg, a comma list, or 'all' for the full "
                            "comparison table")
    p_net.add_argument("--contents", type=int, default=12,
                       help="Zipf catalog size K")
    p_net.add_argument("--alpha", type=float, default=1.0,
                       help="Zipf exponent of the workload")
    p_net.add_argument("--rate", type=float, default=60.0,
                       help="request rate per receiver per time unit")
    p_net.add_argument("--slots", type=int, default=25,
                       help="trace slots over the epoch")
    p_net.add_argument("--replicas", type=int, default=4,
                       help="independent full-network replays averaged into "
                            "one report (also the parallel grain)")
    p_net.add_argument("--capacity-fraction", type=float, default=0.1,
                       help="per-node cache as a fraction of catalog volume")
    p_net.add_argument("--node-capacity", type=float, default=None,
                       metavar="MB",
                       help="absolute per-node cache size in MB (overrides "
                            "--capacity-fraction)")
    p_net.add_argument("--queue-capacity", type=int, default=8,
                       help="admission-queue depth per caching node")
    p_net.add_argument("--queue-rate", type=float, default=None,
                       help="admission-queue service rate (default: each "
                            "node's fair share of the total request rate)")
    p_net.add_argument("--seed", type=int, default=0,
                       help="root seed for every request stream")
    p_net.add_argument("--topology-seed", type=int, default=0,
                       help="seed for mesh placement geometry")
    p_net.add_argument("--shards", type=int, default=None,
                       help="replay shard count (default min(replicas, 8); "
                            "never affects results)")
    p_net.add_argument("--per-node", action="store_true",
                       help="also print the per-node breakdown table for "
                            "each strategy")
    p_net.add_argument("--out", default=None,
                       help="directory for CSV/JSON export of the reports")
    p_net.add_argument("--solver-batching", action="store_true",
                       help="solve the mfg strategy's equilibria through the "
                            "batched tensor pipeline (bit-identical results)")
    p_net.add_argument("--batch-size", type=int, default=32, metavar="B",
                       help="max contents per batched shard "
                            "(with --solver-batching; default 32)")
    add_stream_args(p_net, zipf_alpha=False)
    add_telemetry_arg(p_net)
    add_runtime_args(p_net)

    sub.add_parser(
        "env",
        help="print the environment fingerprint (python/numpy/platform/"
             "git) as JSON",
    )

    p_runs = sub.add_parser(
        "runs", help="inspect the run-provenance registry (.repro/runs)"
    )
    p_runs.add_argument("--registry-dir", default=None, metavar="DIR",
                        help="registry root (default: $REPRO_REGISTRY_DIR "
                             "or .repro/runs)")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    r_list = runs_sub.add_parser("list", help="list recorded runs, newest first")
    r_list.add_argument("--command", dest="filter_command", default=None,
                        help="only show runs of this subcommand")
    r_list.add_argument("--limit", type=int, default=None, metavar="N",
                        help="show at most the N newest runs")
    r_show = runs_sub.add_parser("show", help="show one run's manifest")
    r_show.add_argument("ref", help="seq number or run-id prefix (newest wins)")
    r_show.add_argument("--json", action="store_true",
                        help="print the raw manifest JSON")
    r_diff = runs_sub.add_parser(
        "diff", help="diff two runs' config and headline metrics"
    )
    r_diff.add_argument("baseline", help="seq number or run-id prefix")
    r_diff.add_argument("candidate", help="seq number or run-id prefix")
    r_diff.add_argument("--threshold", type=float, default=0.2,
                        help="relative metric change worth reporting "
                             "(default 0.2; config diffs are always exact)")
    r_diff.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when a timing-style headline metric "
                             "regressed past the threshold")
    r_gc = runs_sub.add_parser("gc", help="prune oldest manifests")
    r_gc.add_argument("--keep", type=int, required=True, metavar="N",
                      help="retain the N newest manifests (the newest "
                           "non-ok run is always kept)")

    p_trend = sub.add_parser(
        "trend",
        help="per-metric time series across BENCH trajectories and the "
             "run registry",
    )
    p_trend.add_argument("--bench", action="append", default=None,
                         metavar="PATH",
                         help="BENCH trajectory file (repeatable; default: "
                              "every BENCH_*.json in the current directory)")
    p_trend.add_argument("--registry-dir", default=None, metavar="DIR",
                         help="registry root (default: $REPRO_REGISTRY_DIR "
                              "or .repro/runs)")
    p_trend.add_argument("--no-registry", action="store_true",
                         help="skip the (report-only) registry series")
    p_trend.add_argument("--metric", default=None,
                         help="substring filter on metric names")
    p_trend.add_argument("--threshold", type=float, default=0.05,
                         help="relative drift vs the historical mean that "
                              "counts as a regression (default 0.05 = 5%%)")
    p_trend.add_argument("--fail-on-regression", action="store_true",
                         help="exit 1 when any gateable bench series "
                              "regressed (registry series never gate)")

    p_watch = sub.add_parser(
        "watch", help="render a live run-status file as a dashboard"
    )
    p_watch.add_argument("status", metavar="STATUS.json",
                         help="status file written by --live-status")
    p_watch.add_argument("--once", action="store_true",
                         help="print one frame and exit (scripting/CI); "
                              "exit 0 when the file parses, 2 otherwise")
    p_watch.add_argument("--interval", type=float, default=2.0,
                         help="refresh interval in seconds (default 2)")

    p_prom = sub.add_parser(
        "export-metrics",
        help="export a telemetry run's metrics as Prometheus text exposition",
    )
    p_prom.add_argument("run", metavar="RUN.jsonl",
                        help="telemetry JSONL run (finished or in-flight)")
    p_prom.add_argument("--format", default="prometheus",
                        choices=("prometheus",),
                        help="exposition format (only 'prometheus' for now)")
    p_prom.add_argument("--out", default=None,
                        help="write to a file instead of stdout")

    p_verify = sub.add_parser("verify", help="check Lemma 1/2 and Theorem 2 numerically")
    add_config_args(p_verify)

    p_export = sub.add_parser(
        "export", help="solve an equilibrium and dump CSV/JSON artifacts"
    )
    add_config_args(p_export)
    p_export.add_argument("--out", required=True, help="output directory")

    p_stat = sub.add_parser(
        "stationary", help="solve the infinite-horizon (discounted) equilibrium"
    )
    add_config_args(p_stat)
    p_stat.add_argument("--discount", type=float, default=1.0,
                        help="discount rate rho > 0")
    return parser


def _config_from_args(args: argparse.Namespace) -> MFGCPConfig:
    config = MFGCPConfig.fast() if args.fast else MFGCPConfig.paper_default()
    overrides = {}
    if args.content_size is not None:
        overrides["content_size"] = args.content_size
    if args.eta1 is not None:
        overrides["eta1"] = args.eta1
    if args.popularity is not None:
        overrides["popularity"] = args.popularity
    if args.no_sharing:
        overrides["include_sharing"] = False
    return replace(config, **overrides) if overrides else config


def _registry_enabled(args: argparse.Namespace) -> bool:
    """Whether this run should record a manifest.

    Precedence: ``--no-registry`` beats everything; otherwise the
    ``REPRO_REGISTRY`` environment switch (``0``/``false``/``no``/
    ``off`` disables); on by default.
    """
    if getattr(args, "no_registry", False):
        return False
    flag = os.environ.get("REPRO_REGISTRY", "").strip().lower()
    return flag not in ("0", "false", "no", "off")


def _config_snapshot(args: argparse.Namespace) -> dict:
    """The manifest's config snapshot: what the run *computed on*.

    Execution-shaping flags (backend, telemetry, registry, output
    paths) are excluded — two runs that differ only in worker count
    or observability are the same run.  For config-bearing commands
    the raw override flags collapse into the one resolved ``model``
    dict, so a ``--eta1`` change surfaces as exactly one config key.
    """
    snapshot = {
        key: value
        for key, value in sorted(vars(args).items())
        if not key.startswith("_") and key not in _NON_CONFIG_ARGS
    }
    if hasattr(args, "fast"):
        import dataclasses

        for key in ("fast", "content_size", "eta1", "popularity",
                    "no_sharing"):
            snapshot.pop(key, None)
        snapshot["model"] = dataclasses.asdict(_config_from_args(args))
    return snapshot


def _artifacts_from_args(args: argparse.Namespace) -> dict:
    """Paths this run wrote, worth finding again from the manifest."""
    artifacts = {}
    for key in ("telemetry", "live_status", "out", "checkpoint_dir"):
        value = getattr(args, key, None)
        if value:
            artifacts[key] = str(value)
    return artifacts


def _record_manifest(
    args: argparse.Namespace,
    raw_argv: List[str],
    collector,
    status: str,
    exit_code: Optional[int],
    started_at: str,
    wall_s: float,
) -> None:
    from repro.obs.registry import RunRegistry, build_manifest, headline_metrics

    telemetry = getattr(args, "_run_telemetry", None)
    metrics = {}
    if telemetry is not None and telemetry.enabled:
        metrics = headline_metrics(
            telemetry.metrics.snapshot(), wall_s if wall_s > 0 else None
        )
    manifest = build_manifest(
        command=args.command,
        argv=raw_argv,
        config=_config_snapshot(args),
        status=status,
        exit_code=exit_code,
        started_at=started_at,
        wall_s=wall_s,
        seeds=collector.summary(),
        artifacts=_artifacts_from_args(args),
        metrics=metrics,
    )
    path = RunRegistry(getattr(args, "registry_dir", None)).append(manifest)
    # Stderr, deliberately: run stdout is diffed byte-for-byte in the
    # determinism smoke jobs, and the manifest path varies per run.
    print(f"run manifest {manifest['run_id']} recorded -> {path}",
          file=sys.stderr)


def _with_run_manifest(handler, raw_argv: List[str]):
    """Wrap a run handler so it records a RunManifest on every exit.

    A pure side channel around the handler: the run's results, stdout,
    and telemetry stream are untouched (the normalized stream stays
    bit-identical serial vs ``process:N``).  Registry failures warn on
    stderr and never change the run's exit code.
    """

    def wrapped(args: argparse.Namespace) -> int:
        import time
        from datetime import datetime, timezone

        from repro.runtime import runinfo

        args._registry_active = True
        collector = runinfo.activate()
        started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
        t0 = time.perf_counter()
        status: str = "crashed"
        exit_code: Optional[int] = None
        try:
            code = handler(args)
            exit_code = code
            status = "ok" if code == 0 else "failed"
            return code
        except SystemExit as err:
            exit_code = err.code if isinstance(err.code, int) else 1
            status = "failed"
            raise
        finally:
            runinfo.deactivate()
            try:
                _record_manifest(
                    args, raw_argv, collector, status, exit_code,
                    started_at, time.perf_counter() - t0,
                )
            except Exception as err:
                print(f"warning: run manifest not recorded: {err}",
                      file=sys.stderr)

    return wrapped


def _telemetry_from_args(args: argparse.Namespace) -> SolverTelemetry:
    """The observer implied by ``--telemetry`` / ``--profile`` /
    ``--strict-numerics`` / ``--live-status``.

    ``--strict-numerics`` without ``--telemetry`` still needs enabled
    telemetry (the probes live behind it), so it gets an in-memory
    observer: fail-fast works, nothing is written.  ``--live-status``
    likewise upgrades the null default to an in-memory observer — the
    status writer needs an owner, and the shared NULL_TELEMETRY
    singleton must never carry one.  An active run-manifest recorder
    (see :func:`main`) upgrades too: the manifest's headline metrics
    are read from the metrics registry after the run, and the shared
    singleton must stay untouched.

    The chosen observer is stashed on ``args`` so the manifest
    recorder can read its final metrics without re-deriving it.
    """
    path = getattr(args, "telemetry", None)
    profile = bool(getattr(args, "profile", False))
    strict = bool(getattr(args, "strict_numerics", False))
    live_path = getattr(args, "live_status", None)
    if path is None:
        if strict or live_path is not None or getattr(
            args, "_registry_active", False
        ):
            telemetry = SolverTelemetry.in_memory(
                profile=profile, strict_numerics=strict
            )
        else:
            return NULL_TELEMETRY
    else:
        telemetry = SolverTelemetry.to_jsonl(
            path, profile=profile, strict_numerics=strict
        )
    if live_path is not None:
        from repro.obs.live import DEFAULT_WRITE_EVERY, LiveStatusWriter

        every = getattr(args, "live_every", None)
        telemetry.set_live(
            LiveStatusWriter(
                live_path, every=every if every else DEFAULT_WRITE_EVERY
            )
        )
    args._run_telemetry = telemetry
    return telemetry


def _executor_from_args(
    args: argparse.Namespace, telemetry: SolverTelemetry = NULL_TELEMETRY
) -> Executor:
    """The execution backend implied by ``--backend`` / ``--workers``,
    wrapped in a :class:`~repro.runtime.ResumableExecutor` when any of
    the fault-tolerance flags (``--checkpoint-dir`` / ``--resume`` /
    ``--max-retries`` / ``--inject-faults``) ask for one.

    All configuration mistakes here — an unknown backend, ``--resume``
    without a store, a missing or malformed checkpoint manifest, a
    negative retry budget — are usage errors: one-line message on
    stderr, exit code 2.
    """
    try:
        base = make_executor(
            getattr(args, "backend", "serial"),
            workers=getattr(args, "workers", None),
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        raise SystemExit(2)

    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = bool(getattr(args, "resume", False))
    max_retries = int(getattr(args, "max_retries", 0) or 0)
    injecting = getattr(args, "inject_faults", None) is not None
    if resume and checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        raise SystemExit(2)
    if checkpoint_dir is None and max_retries == 0 and not injecting:
        return base

    store = None
    if checkpoint_dir is not None:
        try:
            store = CheckpointStore(checkpoint_dir)
            if resume:
                # A resume against nothing (or against garbage) is a
                # mistake worth stopping for, not silently recomputing.
                store.validate_manifest()
            else:
                store.reset()
        except CheckpointError as err:
            print(f"error: {err}", file=sys.stderr)
            raise SystemExit(2)
    try:
        policy = FaultPolicy(max_retries=max_retries)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        raise SystemExit(2)
    return ResumableExecutor(
        base, store=store, policy=policy, telemetry=telemetry
    )


def _close_telemetry(args: argparse.Namespace, telemetry: SolverTelemetry) -> None:
    telemetry.close()
    if telemetry.enabled and getattr(args, "telemetry", None) is not None:
        print(f"telemetry written to {args.telemetry}")


def _strict_abort(
    args: argparse.Namespace, telemetry: SolverTelemetry, err: Exception
) -> int:
    """Finish a run killed by ``--strict-numerics`` (exit 3).

    The telemetry file is still closed properly — the triggering
    ``diag.*`` event is already in the stream, which is the point.
    """
    if telemetry.live is not None:
        telemetry.live.finish("failed")
    _close_telemetry(args, telemetry)
    print(f"error: {err}", file=sys.stderr)
    return 3


def _item_failed_abort(
    args: argparse.Namespace, telemetry: SolverTelemetry, err: ItemFailedError
) -> int:
    """Finish a run whose work item exhausted its retries (exit 1).

    The ``item.retry`` / ``item.failed`` bookkeeping is already in the
    telemetry stream, so the file still closes cleanly and ``repro
    report`` shows the full story.
    """
    if telemetry.live is not None:
        telemetry.live.finish("failed")
    _close_telemetry(args, telemetry)
    print(f"error: {err}", file=sys.stderr)
    return 1


def _cmd_solve(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    telemetry = _telemetry_from_args(args)
    executor = _executor_from_args(args, telemetry)
    try:
        result = MFGCPSolver(config, telemetry=telemetry, executor=executor).solve()
    except StrictNumericsError as err:
        return _strict_abort(args, telemetry, err)
    except ItemFailedError as err:
        return _item_failed_abort(args, telemetry, err)
    _close_telemetry(args, telemetry)
    print(result.report.describe())
    t = result.grid.t
    stride = max(1, len(t) // 8)
    print(format_table(
        ["t", "price", "E[x*]", "mean q (MB)"],
        [
            (f"{t[i]:.2f}", result.mean_field.price[i],
             result.mean_field.mean_control[i], result.mean_field.mean_q[i])
            for i in range(0, len(t), stride)
        ],
        title="Equilibrium market paths",
    ))
    print(format_table(
        ["term", "accumulated"],
        sorted(result.accumulated_utility().items()),
        title="Utility decomposition (Eq. 10 over the horizon)",
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    names = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not names:
        print("error: no schemes given", file=sys.stderr)
        return 2
    telemetry = _telemetry_from_args(args)
    executor = _executor_from_args(args, telemetry)
    seeds = tuple(args.seed + i for i in range(max(1, args.seeds)))
    rows = []
    try:
        for name in names:
            summary = experiments.run_scheme_summary(
                name, config, args.edps, seeds=seeds, telemetry=telemetry,
                executor=executor,
            )
            rows.append(
                (name, summary["total"], summary["trading_income"],
                 summary["staleness_cost"])
            )
    except StrictNumericsError as err:
        return _strict_abort(args, telemetry, err)
    except ItemFailedError as err:
        return _item_failed_abort(args, telemetry, err)
    _close_telemetry(args, telemetry)
    rows.sort(key=lambda r: -r[1])
    print(format_table(
        ["scheme", "utility", "trading income", "staleness cost"],
        rows,
        title=f"Finite-population comparison (M={args.edps})",
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    telemetry = _telemetry_from_args(args)
    executor = _executor_from_args(args, telemetry)
    try:
        with telemetry.span(f"experiment_{args.name}"):
            code = _run_experiment(args, telemetry, executor)
    except StrictNumericsError as err:
        return _strict_abort(args, telemetry, err)
    except ItemFailedError as err:
        return _item_failed_abort(args, telemetry, err)
    _close_telemetry(args, telemetry)
    return code


def _run_experiment(
    args: argparse.Namespace,
    telemetry: SolverTelemetry,
    executor: Executor,
) -> int:
    name = args.name
    if name == "fig3":
        data = experiments.fig3_channel_evolution()
        data.pop("time")
        rows = [
            (label, path[-1], float(np.std(path[len(path) // 2:])))
            for label, path in sorted(data.items())
        ]
        print(format_table(["series", "final value", "tail std"], rows,
                           title="Fig. 3 - OU channel evolution"))
        return 0
    if name in ("fig4", "fig5", "fig9"):
        result = experiments.solve_equilibrium(telemetry=telemetry)
        if name == "fig4":
            data = experiments.fig4_meanfield_evolution(result=result)
            rows = [
                (f"{data['time'][i]:.2f}", data["mean_q"][i])
                for i in range(0, len(data["time"]), max(1, len(data["time"]) // 8))
            ]
            print(format_table(["t", "mean remaining q (MB)"], rows,
                               title="Fig. 4 - mean-field evolution"))
        elif name == "fig5":
            data = experiments.fig5_policy_evolution(result=result)
            rows = list(zip(
                [f"{q:.0f}" for q in data["q"]],
                data["policy_q_profile_t0"],
                data["policy_q_profile_mid"],
            ))
            print(format_table(["q (MB)", "x*(t=0)", "x*(t=T/2)"], rows,
                               title="Fig. 5 - policy evolution"))
        else:
            data = experiments.fig9_convergence(result=result)
            rows = [
                (f"{q0:g}", series["caching_state"][-1], series["utility"][-1])
                for q0, series in sorted(data.items())
            ]
            print(format_table(["q(0)", "final q", "final utility"], rows,
                               title="Fig. 9 - convergence"))
        return 0
    if name in ("fig6", "fig7"):
        std = 0.1 if name == "fig6" else 0.05
        data = experiments.fig67_heatmap(
            initial_std_fraction=std, executor=executor, telemetry=telemetry
        )
        rows = [
            (f"{qk:.0f}", series["mean_q"][0], series["mean_q"][-1])
            for qk, series in sorted(data.items())
        ]
        print(format_table(["Q_k", "mean q(0)", "mean q(T)"], rows,
                           title=f"{name} - heat map sweep (std {std})"))
        return 0
    if name == "fig8":
        data = experiments.fig8_w5_sweep(executor=executor, telemetry=telemetry)
        rows = [
            (f"{w5:.0f}", series["mean_q"][-1],
             float(series["accumulated_staleness"][0]))
            for w5, series in sorted(data.items())
        ]
        print(format_table(["w5", "mean q(T)", "staleness"], rows,
                           title="Fig. 8 - w5 sweep"))
        return 0
    if name == "fig10":
        data = experiments.fig10_initial_distribution(
            executor=executor, telemetry=telemetry
        )
        rows = [
            (f"{mean:g}", series["utility"][-1],
             float(series["sharing_benefit"].mean()))
            for mean, series in sorted(data.items())
        ]
        print(format_table(["lambda(0) mean", "U(T)", "avg sharing benefit"],
                           rows, title="Fig. 10 - initial distribution"))
        return 0
    if name == "fig11":
        data = experiments.fig11_eta1_timeseries(
            executor=executor, telemetry=telemetry
        )
        rows = [
            (f"{eta1:g}", series["utility"][-1], series["trading_income"][0],
             series["trading_income"][-1])
            for eta1, series in sorted(data.items())
        ]
        print(format_table(["eta1", "U(T)", "income(0)", "income(T)"], rows,
                           title="Fig. 11 - eta1 sweep"))
        return 0
    if name == "fig12":
        rows = experiments.fig12_total_vs_eta1(
            executor=executor, telemetry=telemetry
        )
        print(format_table(
            ["eta1", "scheme", "utility", "income"],
            [(f"{e:g}", s, u, i) for e, s, u, i in rows],
            title="Fig. 12 - total utility vs eta1",
        ))
        return 0
    if name == "fig13":
        rows = experiments.fig13_popularity_sweep(
            executor=executor, telemetry=telemetry
        )
        print(format_table(
            ["popularity", "scheme", "utility", "staleness", "mean control"],
            [(f"{p:g}", s, u, c, m) for p, s, u, c, m in rows],
            title="Fig. 13 - popularity sweep",
        ))
        return 0
    if name == "fig14":
        rows = experiments.fig14_scheme_comparison(
            executor=executor, telemetry=telemetry
        )
        print(format_table(
            ["scheme", "utility", "income", "staleness"], rows,
            title="Fig. 14 - scheme comparison",
        ))
        return 0
    # table2
    rows = experiments.table2_computation_time(
        telemetry=telemetry if telemetry.enabled else None,
        executor=executor,
    )
    print(format_table(
        ["scheme", "M", "seconds"],
        [(s, m, sec) for s, m, sec in rows],
        title="Table II - computation time",
    ))
    return 0


def _load_run_checked(path: str):
    """``load_run`` with the CLI's one-line error contract.

    Missing file, unreadable file, or a file with zero parseable
    events (empty, or pure garbage after tolerant skipping) print a
    single-line error — never a traceback — and return ``None``; the
    caller turns that into exit code 2.
    """
    try:
        summary = load_run(path)
    except (OSError, ValueError) as err:
        print(f"error: cannot read telemetry run {path!r}: {err}",
              file=sys.stderr)
        return None
    if summary.n_events == 0:
        detail = (
            f"{summary.n_skipped} malformed line(s), no valid events"
            if summary.n_skipped
            else "file is empty"
        )
        print(f"error: telemetry run {path!r} has no events ({detail})",
              file=sys.stderr)
        return None
    return summary


def _print_pipe_safe(text: str) -> None:
    """Print report-style output that is routinely piped into
    `head`/`less`; exit quietly when the reader closes the pipe early.
    Re-points stdout at /dev/null so the interpreter's exit-time flush
    does not raise a second BrokenPipeError."""
    try:
        print(text)
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _cmd_report(args: argparse.Namespace) -> int:
    summary = _load_run_checked(args.path)
    if summary is None:
        return 2
    _print_pipe_safe(render_report(summary))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.bench:
        from repro.obs.trend import (
            BenchFormatError,
            latest_entry_metrics,
            load_bench_trajectory,
        )

        docs = []
        for path in (args.baseline, args.candidate):
            try:
                # Accepts both shapes: a legacy single-snapshot dict
                # and an append-only trajectory (the newest entry of
                # each side is what gets compared).
                docs.append(latest_entry_metrics(load_bench_trajectory(path)))
            except BenchFormatError as err:
                print(f"error: {err}", file=sys.stderr)
                return 2
        result = compare_bench(docs[0], docs[1], threshold=args.span_threshold)
    else:
        baseline = _load_run_checked(args.baseline)
        candidate = _load_run_checked(args.candidate)
        if baseline is None or candidate is None:
            return 2
        result = compare_runs(
            baseline,
            candidate,
            span_threshold=args.span_threshold,
            metric_threshold=args.metric_threshold,
        )
    print(result.render())
    if args.fail_on_regression and result.has_regressions:
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.run is not None:
        # Chrome trace-export mode: repro trace RUN.jsonl OUT.json
        if args.out_json is None:
            print("error: trace export needs both RUN.jsonl and OUT.json",
                  file=sys.stderr)
            return 2
        try:
            events, n_skipped = read_events_tolerant(args.run)
        except OSError as err:
            print(f"error: cannot read telemetry run {args.run!r}: {err}",
                  file=sys.stderr)
            return 2
        if not events:
            print(f"error: telemetry run {args.run!r} has no events",
                  file=sys.stderr)
            return 2
        stats = write_chrome_trace(events, args.out_json)
        suffix = f", {n_skipped} malformed line(s) skipped" if n_skipped else ""
        print(
            f"wrote {stats['spans']} span(s), {stats['diags']} diag marker(s) "
            f"across {stats['lanes']} lane(s) to {args.out_json}{suffix}"
        )
        print("open in chrome://tracing or https://ui.perfetto.dev")
        return 0

    if args.out is None:
        print("error: pass RUN.jsonl OUT.json to export a Chrome trace, or "
              "--out CSV for the synthetic trending trace", file=sys.stderr)
        return 2
    trace = SyntheticYouTubeTrace(
        n_videos=args.videos, rng=np.random.default_rng(args.seed)
    )
    records = trace.generate()
    with open(args.out, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["video_id", "category_id", "tags", "views", "likes",
             "comment_count", "description"]
        )
        for rec in records:
            writer.writerow(
                [rec.video_id, rec.category, "|".join(rec.tags), rec.views,
                 rec.likes, rec.comment_count, rec.description]
            )
    print(f"wrote {len(records)} records to {args.out}")
    return 0


def _cmd_env(args: argparse.Namespace) -> int:
    import json

    from repro.obs.registry import environment_fingerprint

    print(json.dumps(environment_fingerprint(), indent=2, sort_keys=True))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.registry import (
        RunRegistry,
        diff_manifests,
        render_diff,
        render_manifest,
        render_runs_table,
    )

    registry = RunRegistry(args.registry_dir)
    manifests, warnings = registry.load_all()
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)

    if args.runs_command == "list":
        if args.filter_command:
            manifests = [
                m for m in manifests
                if m.get("command") == args.filter_command
            ]
        if args.limit:
            manifests = manifests[-args.limit:]
        if not manifests:
            print(f"no run manifests recorded under {registry.root}")
            return 0
        _print_pipe_safe(render_runs_table(manifests))
        return 0

    if args.runs_command == "show":
        manifest = registry.find(args.ref)
        if manifest is None:
            print(f"error: no run matching {args.ref!r} in {registry.root}",
                  file=sys.stderr)
            return 2
        if args.json:
            import json

            print(json.dumps(manifest, indent=2, sort_keys=True))
        else:
            _print_pipe_safe(render_manifest(manifest))
        return 0

    if args.runs_command == "diff":
        baseline = registry.find(args.baseline)
        candidate = registry.find(args.candidate)
        for ref, manifest in ((args.baseline, baseline),
                              (args.candidate, candidate)):
            if manifest is None:
                print(f"error: no run matching {ref!r} in {registry.root}",
                      file=sys.stderr)
                return 2
        config_changes, comparison = diff_manifests(
            baseline, candidate, threshold=args.threshold
        )
        _print_pipe_safe(render_diff(baseline, candidate, config_changes, comparison))
        if args.fail_on_regression and comparison.has_regressions:
            return 1
        return 0

    # gc
    try:
        removed = registry.gc(args.keep)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(f"removed {len(removed)} manifest(s), "
          f"kept {len(manifests) - len(removed)}")
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    import glob

    from repro.obs.registry import RunRegistry
    from repro.obs.trend import (
        BenchFormatError,
        bench_series,
        find_regressions,
        load_bench_trajectory,
        registry_series,
        render_trend,
    )

    paths = args.bench if args.bench else sorted(glob.glob("BENCH_*.json"))
    series = []
    for path in paths:
        try:
            doc = load_bench_trajectory(path)
        except BenchFormatError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        series.extend(bench_series(doc, source=os.path.basename(path)))
    if not args.no_registry:
        registry = RunRegistry(args.registry_dir)
        manifests, warnings = registry.load_all()
        for warning in warnings:
            print(f"warning: {warning}", file=sys.stderr)
        series.extend(registry_series(manifests))
    if args.metric:
        series = [s for s in series if args.metric in s.metric]
    if not series:
        print("no trend series found (no BENCH_*.json trajectories or "
              "recorded runs)")
        return 0
    _print_pipe_safe(render_trend(series, threshold=args.threshold))
    if args.fail_on_regression and find_regressions(series, args.threshold):
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from repro.obs.live import read_status
    from repro.obs.watch import CLEAR_SCREEN, render_status

    class _NotAStatusFile(Exception):
        pass

    def _read():
        try:
            return read_status(args.status)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as err:
            # Torn writes cannot happen (atomic replace); a parse error
            # means the file is not a status file at all.
            print(f"error: cannot read status file {args.status!r}: {err}",
                  file=sys.stderr)
            raise _NotAStatusFile from err

    try:
        if args.once:
            status = _read()
            if status is None:
                print(f"error: status file {args.status!r} not found",
                      file=sys.stderr)
                return 2
            print(render_status(status))
            return 0

        interval = max(0.1, float(args.interval))
        while True:
            status = _read()
            if status is None:
                print(f"waiting for {args.status} ...")
            else:
                print(CLEAR_SCREEN + render_status(status))
                if status.get("state") != "running":
                    return 0
            _time.sleep(interval)
    except _NotAStatusFile:
        return 2
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_export_metrics(args: argparse.Namespace) -> int:
    from repro.obs.prometheus import render_prometheus

    summary = _load_run_checked(args.run)
    if summary is None:
        return 2
    text = render_prometheus(summary)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote Prometheus exposition to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serve stack is only needed by this command.
    from repro.content import workloads
    from repro.serve import POLICY_NAMES, ServingEngine, REPORT_HEADERS
    from repro.serve.report import comparison_rows, export_serving_reports

    spec = args.policy.strip().lower()
    names = list(POLICY_NAMES) if spec == "all" else [
        s.strip() for s in spec.split(",") if s.strip()
    ]
    if not names:
        print("error: no serving policy given", file=sys.stderr)
        return 2
    config = MFGCPConfig.fast()
    stream = None
    if args.stream is not None:
        # Streamed replay: the workload generator replaces the canned
        # scenario and fixes the trace geometry (--workload is unused).
        from repro.serve.stream import make_stream, stream_workload

        try:
            stream = make_stream(
                args.stream,
                n_edps=args.edps,
                n_slots=args.slots,
                dt=config.horizon / args.slots,
                rate_per_edp=args.requests / (config.horizon * args.edps),
                seed=args.seed,
                n_contents=args.contents,
                alpha=args.zipf_alpha,
                warmup_slots=args.warmup_slots,
                trace_path=args.trace_file,
            )
        except (OSError, ValueError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        workload = stream_workload(stream)
    elif args.workload == "video_marketplace":
        workload = workloads.video_marketplace(
            n_contents=args.contents, seed=args.seed
        )
    elif args.workload == "traffic_information":
        workload = workloads.traffic_information(
            n_roads=args.contents, seed=args.seed
        )
    else:
        workload, _ = workloads.news_cycle(
            n_contents=args.contents, seed=args.seed
        )

    telemetry = _telemetry_from_args(args)
    executor = _executor_from_args(args, telemetry)
    if stream is not None:
        stream_state_dir = None
        if getattr(args, "checkpoint_dir", None):
            from repro.runtime.checkpoint import stream_state_dir as _state_dir

            stream_state_dir = _state_dir(args.checkpoint_dir)
        mode_kwargs = dict(
            stream=stream,
            stream_chunk=args.stream_chunk,
            stream_state_dir=stream_state_dir,
        )
    else:
        mode_kwargs = dict(
            rate_per_edp=args.requests / (config.horizon * args.edps),
        )
    try:
        engine = ServingEngine(
            workload,
            args.edps,
            config=config,
            n_slots=args.slots,
            capacity_fraction=args.capacity_fraction,
            seed=args.seed,
            shards=args.shards,
            executor=executor,
            telemetry=telemetry,
            solver_batching=args.solver_batching,
            batch_size=args.batch_size,
            **mode_kwargs,
        )
        reports = engine.compare(names)
    except StrictNumericsError as err:
        return _strict_abort(args, telemetry, err)
    except ItemFailedError as err:
        return _item_failed_abort(args, telemetry, err)
    except ValueError as err:
        _close_telemetry(args, telemetry)
        print(f"error: {err}", file=sys.stderr)
        return 2
    _close_telemetry(args, telemetry)
    workload_label = (
        f"stream:{args.stream}" if args.stream is not None else args.workload
    )
    print(format_table(
        list(REPORT_HEADERS),
        comparison_rows(reports),
        title=(
            f"Serving comparison ({workload_label}, M={args.edps}, "
            f"{reports[0].requests} requests)"
        ),
    ))
    if args.out is not None:
        for path in export_serving_reports(reports, args.out):
            print(f"  wrote {path}")
    return 0


def _cmd_serve_net(args: argparse.Namespace) -> int:
    # Imported lazily: the network serve stack is only needed here.
    from repro.content.workloads import zipf_workload
    from repro.serve.net import (
        NET_REPORT_HEADERS,
        PER_NODE_HEADERS,
        STRATEGY_NAMES,
        NetworkReplayEngine,
        export_network_reports,
        network_comparison_rows,
        parse_topology,
    )

    spec = args.strategy.strip().lower()
    names = list(STRATEGY_NAMES) if spec == "all" else [
        s.strip() for s in spec.split(",") if s.strip()
    ]
    if not names:
        print("error: no placement strategy given", file=sys.stderr)
        return 2
    try:
        topology = parse_topology(args.topology, seed=args.topology_seed)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    config = MFGCPConfig.fast()
    stream = None
    if args.stream is not None:
        from repro.serve.stream import make_stream, stream_workload

        try:
            stream = make_stream(
                args.stream,
                n_edps=args.replicas * topology.n_receivers,
                n_slots=args.slots,
                dt=config.horizon / args.slots,
                rate_per_edp=args.rate,
                seed=args.seed,
                n_contents=args.contents,
                alpha=args.alpha,
                warmup_slots=args.warmup_slots,
                trace_path=args.trace_file,
            )
        except (OSError, ValueError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        workload = stream_workload(stream)
        mode_kwargs = dict(stream=stream, stream_chunk=args.stream_chunk)
    else:
        workload = zipf_workload(
            n_contents=args.contents,
            alpha=args.alpha,
            rate_per_edp=args.rate,
            seed=args.seed,
        )
        mode_kwargs = dict(rate_per_receiver=args.rate)

    telemetry = _telemetry_from_args(args)
    executor = _executor_from_args(args, telemetry)
    try:
        engine = NetworkReplayEngine(
            workload,
            topology,
            config=config,
            n_slots=args.slots,
            capacity_fraction=args.capacity_fraction,
            node_capacity_mb=args.node_capacity,
            n_replicas=args.replicas,
            shards=args.shards,
            seed=args.seed,
            queue_capacity=args.queue_capacity,
            queue_service_rate=args.queue_rate,
            executor=executor,
            telemetry=telemetry,
            solver_batching=args.solver_batching,
            batch_size=args.batch_size,
            **mode_kwargs,
        )
        reports = engine.compare(names)
    except StrictNumericsError as err:
        return _strict_abort(args, telemetry, err)
    except ItemFailedError as err:
        return _item_failed_abort(args, telemetry, err)
    except ValueError as err:
        _close_telemetry(args, telemetry)
        print(f"error: {err}", file=sys.stderr)
        return 2
    _close_telemetry(args, telemetry)
    print(format_table(
        list(NET_REPORT_HEADERS),
        network_comparison_rows(reports),
        title=(
            f"Cache-network comparison ({topology.describe()}, "
            f"{engine.node_capacity_mb:.0f} MB/node, "
            f"{reports[0].requests} requests)"
        ),
    ))
    if args.per_node:
        for report in reports:
            print(format_table(
                list(PER_NODE_HEADERS),
                report.per_node_rows(),
                title=f"Per-node breakdown — {report.strategy}",
            ))
    if args.out is not None:
        for path in export_network_reports(reports, args.out):
            print(f"  wrote {path}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    lemma1 = theory.verify_lemma1(config)
    lemma2 = theory.verify_lemma2(config)
    result = MFGCPSolver(config).solve()
    thm2 = theory.verify_theorem2(result)
    print(format_table(
        ["condition", "value"],
        [
            ("Lemma 1: control space compact", str(lemma1.control_space_compact)),
            ("Lemma 1: drift bound", lemma1.drift_bound),
            ("Lemma 1: drift Lipschitz const", lemma1.drift_lipschitz),
            ("Lemma 1: |U| bound", lemma1.utility_bound),
            ("Lemma 1: |d_q U| bound", lemma1.utility_gradient_bound),
            ("Lemma 1 satisfied", str(lemma1.satisfied)),
            ("Lemma 2: a_11", lemma2.a_diagonal),
            ("Lemma 2 satisfied", str(lemma2.satisfied)),
            ("Theorem 2: converged", str(thm2.converged)),
            ("Theorem 2: contraction rate", thm2.empirical_contraction_rate),
            ("Theorem 2: contraction observed", str(thm2.contraction_observed)),
        ],
        title="Theoretical conditions (Section IV-D), evaluated numerically",
    ))
    return 0 if (lemma1.satisfied and lemma2.satisfied and thm2.contraction_observed) else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_equilibrium

    config = _config_from_args(args)
    result = MFGCPSolver(config).solve()
    written = export_equilibrium(result, args.out)
    print(f"{result.report.describe()}")
    for path in written:
        print(f"  wrote {path}")
    return 0


def _cmd_stationary(args: argparse.Namespace) -> int:
    from repro.core.stationary import StationarySolver

    config = _config_from_args(args)
    result = StationarySolver(config, discount=args.discount).solve()
    status = "converged" if result.converged else "NOT converged"
    print(f"stationary equilibrium {status} after {result.n_iterations} iterations")
    print(format_table(
        ["quantity", "value"],
        [
            ("discount rho", result.discount),
            ("stationary price", result.price),
            ("mean remaining q (MB)", result.mean_q),
            ("mean caching rate", result.mean_control),
            ("sharing benefit", result.sharing_benefit),
            ("utility rate", result.utility_rate()),
        ],
        title="Stationary market",
    ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    raw_argv = [str(a) for a in (sys.argv[1:] if argv is None else argv)]
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "compare": _cmd_compare,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "serve-net": _cmd_serve_net,
        "env": _cmd_env,
        "runs": _cmd_runs,
        "trend": _cmd_trend,
        "watch": _cmd_watch,
        "export-metrics": _cmd_export_metrics,
        "verify": _cmd_verify,
        "export": _cmd_export,
        "stationary": _cmd_stationary,
    }
    handler = handlers[args.command]
    if args.command in RUN_COMMANDS and _registry_enabled(args):
        handler = _with_run_manifest(handler, raw_argv)
    spec = getattr(args, "inject_faults", None)
    if spec is None:
        return handler(args)
    try:
        install_faults(spec)
    except FaultSpecError as err:
        print(f"error: invalid --inject-faults spec: {err}", file=sys.stderr)
        return 2
    try:
        return handler(args)
    finally:
        # Faults are process-global (they ride an env var so pool
        # workers inherit them); clear so back-to-back main() calls in
        # one process — the test suite — never leak a fault plan.
        clear_faults()


if __name__ == "__main__":
    raise SystemExit(main())
