"""Request-level serving engine over EDP edge caches.

The :mod:`repro.serve` package replays a workload's request trace
against a population of EDP caches under pluggable serving policies —
classical baselines (LRU, LFU, random replacement, static
most-popular) and :class:`MFGPolicyAdapter`, which drives admission,
eviction, and refresh from the solved mean-field equilibrium.  Replays
shard per EDP through :mod:`repro.runtime` and report bit-identical
aggregates (and merged telemetry) on every backend.

Entry points: :class:`ServingEngine` in code, ``repro serve`` on the
command line, :func:`export_serving_reports` for CSV/JSON artifacts.
The :mod:`repro.serve.net` subpackage replays the same traces through
hierarchical cache *networks* (PATH/TREE/RING/MESH topologies with
on-path placement strategies) behind ``repro serve-net``.

For million-request replays, :mod:`repro.serve.stream` provides the
chunked :class:`RequestStream` protocol (``--stream`` on the CLI):
bounded-memory generation with per-``(EDP, slot)`` RNG keying, five
workload generators, and chunk-granular resume (see
``docs/serving.md``).
"""

from repro.serve.cache import CacheEntry, EdgeCache
from repro.serve.engine import (
    ReplaySpec,
    ServingEngine,
    replay_shard,
    stream_state_key,
)
from repro.serve.events import (
    RequestTraceSource,
    SlotEvent,
    edp_seed_sequences,
    partition_edps,
)
from repro.serve.policies import (
    LFUPolicy,
    LRUPolicy,
    MFGPolicyAdapter,
    MostPopularPolicy,
    POLICY_NAMES,
    RandomEvictionPolicy,
    ServingPolicy,
    make_policy,
)
from repro.serve.report import (
    EDPServingStats,
    REPORT_HEADERS,
    ServingReport,
    comparison_rows,
    export_serving_reports,
)
from repro.serve.stream import (
    DiurnalStream,
    FixedPopularityStream,
    FlashCrowdStream,
    RequestChunk,
    RequestStream,
    STREAM_WORKLOADS,
    ShuffledZipfStream,
    TraceStream,
    ZipfStream,
    concat_chunks,
    make_stream,
    stream_workload,
)

__all__ = [
    "CacheEntry",
    "DiurnalStream",
    "EdgeCache",
    "EDPServingStats",
    "FixedPopularityStream",
    "FlashCrowdStream",
    "LFUPolicy",
    "LRUPolicy",
    "MFGPolicyAdapter",
    "MostPopularPolicy",
    "POLICY_NAMES",
    "REPORT_HEADERS",
    "RandomEvictionPolicy",
    "ReplaySpec",
    "RequestChunk",
    "RequestStream",
    "RequestTraceSource",
    "STREAM_WORKLOADS",
    "ServingEngine",
    "ServingPolicy",
    "ServingReport",
    "ShuffledZipfStream",
    "SlotEvent",
    "TraceStream",
    "ZipfStream",
    "comparison_rows",
    "concat_chunks",
    "edp_seed_sequences",
    "export_serving_reports",
    "make_policy",
    "make_stream",
    "partition_edps",
    "replay_shard",
    "stream_state_key",
    "stream_workload",
]
