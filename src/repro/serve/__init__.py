"""Request-level serving engine over EDP edge caches.

The :mod:`repro.serve` package replays a workload's request trace
against a population of EDP caches under pluggable serving policies —
classical baselines (LRU, LFU, random replacement, static
most-popular) and :class:`MFGPolicyAdapter`, which drives admission,
eviction, and refresh from the solved mean-field equilibrium.  Replays
shard per EDP through :mod:`repro.runtime` and report bit-identical
aggregates (and merged telemetry) on every backend.

Entry points: :class:`ServingEngine` in code, ``repro serve`` on the
command line, :func:`export_serving_reports` for CSV/JSON artifacts.
The :mod:`repro.serve.net` subpackage replays the same traces through
hierarchical cache *networks* (PATH/TREE/RING/MESH topologies with
on-path placement strategies) behind ``repro serve-net``.
"""

from repro.serve.cache import CacheEntry, EdgeCache
from repro.serve.engine import ReplaySpec, ServingEngine, replay_shard
from repro.serve.events import (
    RequestTraceSource,
    SlotEvent,
    edp_seed_sequences,
    partition_edps,
)
from repro.serve.policies import (
    LFUPolicy,
    LRUPolicy,
    MFGPolicyAdapter,
    MostPopularPolicy,
    POLICY_NAMES,
    RandomEvictionPolicy,
    ServingPolicy,
    make_policy,
)
from repro.serve.report import (
    EDPServingStats,
    REPORT_HEADERS,
    ServingReport,
    comparison_rows,
    export_serving_reports,
)

__all__ = [
    "CacheEntry",
    "EdgeCache",
    "EDPServingStats",
    "LFUPolicy",
    "LRUPolicy",
    "MFGPolicyAdapter",
    "MostPopularPolicy",
    "POLICY_NAMES",
    "REPORT_HEADERS",
    "RandomEvictionPolicy",
    "ReplaySpec",
    "RequestTraceSource",
    "ServingEngine",
    "ServingPolicy",
    "ServingReport",
    "SlotEvent",
    "comparison_rows",
    "edp_seed_sequences",
    "export_serving_reports",
    "make_policy",
    "partition_edps",
    "replay_shard",
]
