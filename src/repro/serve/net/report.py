"""Network serving outcome containers and CSV/JSON export.

:class:`NodeServingStats` accumulates one caching node's counters,
:class:`NetworkReplayStats` is the mergeable per-work-item result the
shards return, and :class:`NetworkServingReport` aggregates one
strategy's full replay — per-node hit ratio, queue rejection %, hop
count, and end-to-end latency, the SNIPPETS.md icarus experiment
columns.

Reports are plain data, ordered per node, merged strictly in work-item
order, and independent of the execution backend, so the JSON/CSV
artifacts written by :func:`export_network_reports` are bit-identical
across ``serial`` and ``process:N`` replays and across shard counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.export import write_json, write_rows_csv
from repro.serve.net.topology import CacheNetworkTopology

NET_REPORT_HEADERS = (
    "strategy", "requests", "hit_ratio", "source_share", "mean_hops",
    "mean_latency_s", "rejection_rate", "placements", "evictions",
)

PER_NODE_HEADERS = (
    "node", "depth", "hits", "hit_share", "placements", "evictions",
    "queue_offers", "queue_rejected", "queue_rejection_rate",
    "mean_queue_backlog",
)


@dataclass
class NodeServingStats:
    """Counters for one caching node over one replay (mergeable)."""

    node: int
    depth: int
    hits: int = 0
    placements: int = 0
    evictions: int = 0
    queue_accepted: int = 0
    queue_rejected: int = 0
    queue_backlog_time: float = 0.0

    def merge(self, other: "NodeServingStats") -> None:
        if other.node != self.node:
            raise ValueError(
                f"cannot merge node {other.node} stats into node {self.node}"
            )
        self.hits += other.hits
        self.placements += other.placements
        self.evictions += other.evictions
        self.queue_accepted += other.queue_accepted
        self.queue_rejected += other.queue_rejected
        self.queue_backlog_time += other.queue_backlog_time

    @property
    def queue_offers(self) -> int:
        return self.queue_accepted + self.queue_rejected

    @property
    def queue_rejection_rate(self) -> float:
        """Fraction of offered cache writes the admission queue refused."""
        offers = self.queue_offers
        return self.queue_rejected / offers if offers else 0.0


@dataclass
class NetworkReplayStats:
    """One work item's (or one whole replay's) network counters.

    ``merge`` is commutative summation, but the engine still merges in
    work-item order — the same ordered-merge discipline the telemetry
    stream follows.
    """

    requests: int = 0
    cache_hits: int = 0
    source_hits: int = 0
    hops: int = 0
    max_hops: int = 0
    latency_s: float = 0.0
    placement_walks: int = 0
    placement_attempts: int = 0
    replicas: int = 0
    elapsed_t: float = 0.0
    per_node: Dict[int, NodeServingStats] = field(default_factory=dict)

    @classmethod
    def empty(cls, topology: CacheNetworkTopology) -> "NetworkReplayStats":
        """A zeroed accumulator with one bucket per caching node."""
        return cls(
            per_node={
                int(v): NodeServingStats(node=int(v), depth=int(topology.depths[v]))
                for v in topology.routers
            }
        )

    def merge(self, other: "NetworkReplayStats") -> None:
        self.requests += other.requests
        self.cache_hits += other.cache_hits
        self.source_hits += other.source_hits
        self.hops += other.hops
        self.max_hops = max(self.max_hops, other.max_hops)
        self.latency_s += other.latency_s
        self.placement_walks += other.placement_walks
        self.placement_attempts += other.placement_attempts
        self.replicas += other.replicas
        self.elapsed_t += other.elapsed_t
        for node, stats in sorted(other.per_node.items()):
            mine = self.per_node.get(node)
            if mine is None:
                self.per_node[node] = stats
            else:
                mine.merge(stats)


@dataclass(frozen=True)
class NetworkServingReport:
    """Aggregate outcome of one strategy's network replay.

    Attributes
    ----------
    strategy:
        The placement strategy's name.
    topology:
        The topology spec (``"tree:2x4"``-style).
    n_slots, dt, seed, n_replicas:
        Replay shape.
    node_capacity_mb:
        Per-router cache size (equal-budget comparisons multiply by
        the router count).
    per_node:
        Per caching node counters, ascending node id.
    totals:
        The merged whole-replay counters.
    """

    strategy: str
    topology: str
    n_slots: int
    dt: float
    seed: int
    n_replicas: int
    node_capacity_mb: float
    per_node: Tuple[NodeServingStats, ...]
    totals: NetworkReplayStats

    def __post_init__(self) -> None:
        nodes = [s.node for s in self.per_node]
        if nodes != sorted(nodes):
            raise ValueError("per-node stats must be in ascending node order")
        if self.n_replicas < 1:
            raise ValueError(f"n_replicas must be positive, got {self.n_replicas}")

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return self.totals.requests

    @property
    def cache_hits(self) -> int:
        return self.totals.cache_hits

    @property
    def source_hits(self) -> int:
        return self.totals.source_hits

    @property
    def hit_ratio(self) -> float:
        """Share of requests served from *any* network cache."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def source_share(self) -> float:
        """Share of requests that travelled all the way to the origin."""
        return self.source_hits / self.requests if self.requests else 0.0

    @property
    def mean_hops(self) -> float:
        return self.totals.hops / self.requests if self.requests else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end (request + delivery) latency per request."""
        return self.totals.latency_s / self.requests if self.requests else 0.0

    @property
    def placements(self) -> int:
        return sum(s.placements for s in self.per_node)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self.per_node)

    @property
    def queue_offers(self) -> int:
        return sum(s.queue_offers for s in self.per_node)

    @property
    def queue_rejected(self) -> int:
        return sum(s.queue_rejected for s in self.per_node)

    @property
    def rejection_rate(self) -> float:
        """Network-wide share of cache writes refused by admission queues."""
        offers = self.queue_offers
        return self.queue_rejected / offers if offers else 0.0

    def node_hit_share(self, node: int) -> float:
        """The icarus per-node hit ratio: this node's share of all requests.

        Summing over caching nodes and adding :attr:`source_share`
        gives 1 (every request is served exactly once).
        """
        for stats in self.per_node:
            if stats.node == node:
                return stats.hits / self.requests if self.requests else 0.0
        raise ValueError(f"node {node} is not a caching node of this report")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Union[str, int, float]]:
        """The aggregate metrics as one JSON-friendly record."""
        return {
            "strategy": self.strategy,
            "topology": self.topology,
            "n_slots": self.n_slots,
            "dt": self.dt,
            "seed": self.seed,
            "n_replicas": self.n_replicas,
            "node_capacity_mb": self.node_capacity_mb,
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "source_hits": self.source_hits,
            "hit_ratio": self.hit_ratio,
            "source_share": self.source_share,
            "mean_hops": self.mean_hops,
            "max_hops": self.totals.max_hops,
            "mean_latency_s": self.mean_latency_s,
            "placements": self.placements,
            "evictions": self.evictions,
            "queue_offers": self.queue_offers,
            "queue_rejected": self.queue_rejected,
            "rejection_rate": self.rejection_rate,
            "per_node": {
                str(s.node): {
                    "depth": s.depth,
                    "hits": s.hits,
                    "hit_share": (
                        s.hits / self.requests if self.requests else 0.0
                    ),
                    "placements": s.placements,
                    "evictions": s.evictions,
                    "queue_offers": s.queue_offers,
                    "queue_rejected": s.queue_rejected,
                    "queue_rejection_rate": s.queue_rejection_rate,
                }
                for s in self.per_node
            },
        }

    def to_row(self) -> Tuple[Union[str, int, float], ...]:
        """One comparison-table row (matches :data:`NET_REPORT_HEADERS`)."""
        return (
            self.strategy, self.requests, self.hit_ratio, self.source_share,
            self.mean_hops, self.mean_latency_s, self.rejection_rate,
            self.placements, self.evictions,
        )

    def per_node_rows(self) -> List[Tuple[Union[int, float], ...]]:
        """Per-node breakdown rows (matches :data:`PER_NODE_HEADERS`)."""
        horizon = self.n_slots * self.dt * self.n_replicas
        return [
            (
                s.node, s.depth, s.hits,
                s.hits / self.requests if self.requests else 0.0,
                s.placements, s.evictions, s.queue_offers, s.queue_rejected,
                s.queue_rejection_rate,
                s.queue_backlog_time / horizon if horizon > 0 else 0.0,
            )
            for s in self.per_node
        ]


def network_comparison_rows(
    reports: Sequence[NetworkServingReport],
) -> List[Tuple[Union[str, int, float], ...]]:
    """Comparison-table rows, best hit ratio first."""
    return [r.to_row() for r in sorted(reports, key=lambda r: -r.hit_ratio)]


def export_network_reports(
    reports: Sequence[NetworkServingReport], directory: Union[str, Path]
) -> List[Path]:
    """Dump network replay outcomes to CSV/JSON artifacts.

    Produces ``network_comparison.csv`` (one row per strategy),
    ``network_summary.json`` (full aggregates including the per-node
    breakdown), and one ``per_node_<strategy>.csv`` per report.
    Returns the files written.
    """
    if not reports:
        raise ValueError("no network reports to export")
    directory = Path(directory)
    written: List[Path] = []
    written.append(
        write_rows_csv(
            directory / "network_comparison.csv",
            list(NET_REPORT_HEADERS),
            network_comparison_rows(reports),
        )
    )
    written.append(
        write_json(
            directory / "network_summary.json",
            {report.strategy: report.summary() for report in reports},
        )
    )
    for report in reports:
        slug = report.strategy.replace("/", "-").replace(" ", "-")
        written.append(
            write_rows_csv(
                directory / f"per_node_{slug}.csv",
                list(PER_NODE_HEADERS),
                report.per_node_rows(),
            )
        )
    return written
