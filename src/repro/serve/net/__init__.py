"""Topology-aware cache networks: route misses toward origin.

The :mod:`repro.serve.net` subsystem replays request traces through
hierarchical cache networks (PATH / TREE / RING / random-geometric
MESH) instead of isolated edge caches: a miss travels hop by hop
toward the content origin, and a pluggable on-path placement strategy
(LCE, LCD, ProbCache, edge-only, or the MFG equilibrium adapter)
decides which caching nodes keep a copy on the return path, each
write passing a finite per-node admission queue.

Entry points: :class:`NetworkReplayEngine` in code, ``repro serve-net``
on the command line, :func:`export_network_reports` for CSV/JSON
artifacts.
"""

from repro.serve.net.engine import (
    NetworkReplayEngine,
    NetworkReplaySpec,
    replay_network_shard,
)
from repro.serve.net.queue import AdmissionQueue
from repro.serve.net.report import (
    NET_REPORT_HEADERS,
    PER_NODE_HEADERS,
    NetworkReplayStats,
    NetworkServingReport,
    NodeServingStats,
    export_network_reports,
    network_comparison_rows,
)
from repro.serve.net.strategies import (
    STRATEGY_NAMES,
    EdgeOnlyStrategy,
    LCDStrategy,
    LCEStrategy,
    MFGNetworkStrategy,
    PlacementSite,
    PlacementStrategy,
    ProbCacheStrategy,
    make_strategy,
)
from repro.serve.net.topology import (
    TOPOLOGY_KINDS,
    CacheNetworkTopology,
    build_topology,
    mesh_topology,
    parse_topology,
    path_topology,
    ring_topology,
    tree_topology,
)

__all__ = [
    "AdmissionQueue",
    "CacheNetworkTopology",
    "EdgeOnlyStrategy",
    "LCDStrategy",
    "LCEStrategy",
    "MFGNetworkStrategy",
    "NET_REPORT_HEADERS",
    "NetworkReplayEngine",
    "NetworkReplaySpec",
    "NetworkReplayStats",
    "NetworkServingReport",
    "NodeServingStats",
    "PER_NODE_HEADERS",
    "PlacementSite",
    "PlacementStrategy",
    "ProbCacheStrategy",
    "STRATEGY_NAMES",
    "TOPOLOGY_KINDS",
    "build_topology",
    "export_network_reports",
    "make_strategy",
    "mesh_topology",
    "network_comparison_rows",
    "parse_topology",
    "path_topology",
    "replay_network_shard",
    "ring_topology",
    "tree_topology",
]
