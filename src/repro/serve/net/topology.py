"""Cache-network topologies: PATH, TREE, RING, and random-geometric MESH.

A :class:`CacheNetworkTopology` is the static graph a network replay
runs on (the icarus shape): every node plays exactly one role —

* **receivers** originate requests (they hold no cache);
* **routers** forward requests and each hold one finite edge cache;
* **sources** are content origins (every content is always available
  there, the "server" of classical cache simulators).

Each receiver owns one precomputed shortest-path **route** toward its
nearest source (latency-weighted Dijkstra with index tie-breaking), so
routing during a replay is a table lookup, never a graph search.  The
topology is a frozen, plain-data dataclass: it pickles cheaply to pool
workers and two builds from the same parameters are identical, which
is one leg of the serial-vs-``process:N`` bit-identity contract.

Builders cover the classical shapes cache research runs on, behind the
grammar parsed by :func:`parse_topology`:

=============  ====================================================
spec           meaning
=============  ====================================================
``path:N``     N-node chain: receiver — (N-2) routers — source
``tree:KxD``   K-ary tree of D router levels, one receiver per
               leaf router, source above the root
``ring:N``     N routers in a cycle, one receiver each, source
               attached to router 0
``mesh:NxK``   N routers placed uniformly at random (seeded),
               K-nearest-neighbour edges with distance-scaled
               latencies, one receiver per router, source at the
               router nearest the area centre (``xK`` optional)
=============  ====================================================

The MESH builder consumes the stable graph API of
:class:`repro.network.topology.NetworkTopology` (``neighbors`` /
``distance`` / ``path``) rather than recomputing any distance-matrix
logic here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.network.topology import NetworkTopology, PlacementConfig

# Default per-edge one-way latencies (seconds), mirroring the classical
# simulator convention that the receiver access hop is cheap, internal
# hops moderate, and the origin uplink expensive.
RECEIVER_EDGE_LATENCY_S = 0.002
INTERNAL_EDGE_LATENCY_S = 0.010
SOURCE_EDGE_LATENCY_S = 0.034

TOPOLOGY_KINDS = ("path", "tree", "ring", "mesh")


@dataclass(frozen=True)
class CacheNetworkTopology:
    """A static cache network with precomputed routing tables.

    Attributes
    ----------
    name:
        The grammar spec that built it (e.g. ``"tree:2x3"``).
    n_nodes:
        Total node count; nodes are ``0 .. n_nodes-1``.
    edges:
        Undirected weighted edges ``(u, v, latency_s)`` with ``u < v``.
    receivers, routers, sources:
        The role partition (disjoint, covering all nodes).  Routers
        are the caching nodes.
    routes:
        One tuple per receiver (in ``receivers`` order): the node path
        from that receiver to its nearest source, inclusive.
    route_latencies:
        Per receiver, the cumulative one-way latency from the receiver
        to every node of its route (``route_latencies[r][0] == 0``).
    depths:
        Per node, hop distance to the nearest source (sources are 0).
        The MFG strategy scales admission by depth: deeper nodes sit
        closer to the request edge.
    diameter:
        Longest shortest-path hop count over all node pairs, raised if
        necessary to cover every precomputed route — routes minimise
        *latency*, so on irregular meshes a route may spend more hops
        than the pure BFS diameter.  Every replay walk is bounded by
        this value.
    """

    name: str
    n_nodes: int
    edges: Tuple[Tuple[int, int, float], ...]
    receivers: Tuple[int, ...]
    routers: Tuple[int, ...]
    sources: Tuple[int, ...]
    routes: Tuple[Tuple[int, ...], ...] = field(default=())
    route_latencies: Tuple[Tuple[float, ...], ...] = field(default=())
    depths: Tuple[int, ...] = field(default=())
    diameter: int = 0

    def __post_init__(self) -> None:
        roles = set(self.receivers) | set(self.routers) | set(self.sources)
        if len(self.receivers) + len(self.routers) + len(self.sources) != len(roles):
            raise ValueError("receiver/router/source roles must be disjoint")
        if roles != set(range(self.n_nodes)):
            raise ValueError(
                f"roles cover {len(roles)} nodes but the topology has "
                f"{self.n_nodes}"
            )
        if not self.receivers:
            raise ValueError("a cache network needs at least one receiver")
        if not self.sources:
            raise ValueError("a cache network needs at least one source")
        if not self.routers:
            raise ValueError("a cache network needs at least one caching router")
        for u, v, latency in self.edges:
            if not 0 <= u < v < self.n_nodes:
                raise ValueError(f"edge ({u}, {v}) is not normalised u < v in range")
            if latency <= 0:
                raise ValueError(f"edge ({u}, {v}) latency must be positive")
        if len(self.routes) != len(self.receivers):
            raise ValueError(
                f"{len(self.routes)} routes for {len(self.receivers)} receivers"
            )

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    @property
    def n_receivers(self) -> int:
        return len(self.receivers)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Adjacent nodes, ascending (deterministic)."""
        out = sorted(
            {v for u, v, _ in self.edges if u == node}
            | {u for u, v, _ in self.edges if v == node}
        )
        return tuple(out)

    def route_for(self, receiver: int) -> Tuple[int, ...]:
        """The precomputed receiver-to-source path."""
        try:
            idx = self.receivers.index(receiver)
        except ValueError:
            raise ValueError(f"node {receiver} is not a receiver") from None
        return self.routes[idx]

    def is_router(self, node: int) -> bool:
        return node in self._router_set()

    def _router_set(self) -> frozenset:
        cached = getattr(self, "_routers_cache", None)
        if cached is None:
            cached = frozenset(self.routers)
            object.__setattr__(self, "_routers_cache", cached)
        return cached

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        return (
            f"{self.name}: {self.n_nodes} nodes "
            f"({len(self.receivers)} receivers, {len(self.routers)} routers, "
            f"{len(self.sources)} sources), diameter {self.diameter}"
        )


# ----------------------------------------------------------------------
# Routing-table construction
# ----------------------------------------------------------------------
def _adjacency(
    n_nodes: int, edges: Tuple[Tuple[int, int, float], ...]
) -> List[List[Tuple[int, float]]]:
    adj: List[List[Tuple[int, float]]] = [[] for _ in range(n_nodes)]
    for u, v, latency in edges:
        adj[u].append((v, latency))
        adj[v].append((u, latency))
    for bucket in adj:
        bucket.sort()
    return adj


def _shortest_path_to_sources(
    start: int,
    adj: List[List[Tuple[int, float]]],
    sources: Tuple[int, ...],
) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """Latency-weighted Dijkstra from ``start`` to the nearest source.

    Ties break on (latency, node index) so routes are deterministic.
    """
    source_set = set(sources)
    best: Dict[int, float] = {start: 0.0}
    parent: Dict[int, int] = {}
    frontier: List[Tuple[float, int]] = [(0.0, start)]
    goal: Optional[int] = None
    while frontier:
        cost, u = heapq.heappop(frontier)
        if cost > best.get(u, np.inf):
            continue
        if u in source_set:
            goal = u
            break
        for v, latency in adj[u]:
            candidate = cost + latency
            if candidate < best.get(v, np.inf) - 1e-15:
                best[v] = candidate
                parent[v] = u
                heapq.heappush(frontier, (candidate, v))
    if goal is None:
        raise ValueError(f"no source reachable from receiver {start}")
    path = [goal]
    while path[-1] != start:
        path.append(parent[path[-1]])
    path.reverse()
    latencies = [0.0]
    for node in path[1:]:
        latencies.append(best[node])
    return tuple(path), tuple(latencies)


def _hop_depths(
    n_nodes: int,
    adj: List[List[Tuple[int, float]]],
    sources: Tuple[int, ...],
) -> Tuple[int, ...]:
    """Hop distance of every node to its nearest source (BFS)."""
    depths = [-1] * n_nodes
    frontier = sorted(sources)
    for s in frontier:
        depths[s] = 0
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for v, _ in adj[u]:
                if depths[v] < 0:
                    depths[v] = depths[u] + 1
                    nxt.append(v)
        frontier = sorted(nxt)
    if any(d < 0 for d in depths):
        orphans = [i for i, d in enumerate(depths) if d < 0]
        raise ValueError(f"nodes {orphans} cannot reach any source")
    return tuple(depths)


def _hop_diameter(n_nodes: int, adj: List[List[Tuple[int, float]]]) -> int:
    """Longest shortest-path hop count over all node pairs (BFS each)."""
    diameter = 0
    for start in range(n_nodes):
        dist = [-1] * n_nodes
        dist[start] = 0
        frontier = [start]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v, _ in adj[u]:
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        if any(d < 0 for d in dist):
            raise ValueError("cache network must be connected")
        diameter = max(diameter, max(dist))
    return diameter


def build_topology(
    name: str,
    edges: Tuple[Tuple[int, int, float], ...],
    receivers: Tuple[int, ...],
    routers: Tuple[int, ...],
    sources: Tuple[int, ...],
) -> CacheNetworkTopology:
    """Assemble a topology, precomputing routes, depths and diameter."""
    n_nodes = len(receivers) + len(routers) + len(sources)
    adj = _adjacency(n_nodes, edges)
    routes: List[Tuple[int, ...]] = []
    route_latencies: List[Tuple[float, ...]] = []
    for receiver in receivers:
        path, latencies = _shortest_path_to_sources(receiver, adj, sources)
        routes.append(path)
        route_latencies.append(latencies)
    # Routes minimise latency, not hops, so a route may be longer (in
    # hops) than the BFS diameter; the published bound covers both.
    route_hops = max((len(path) - 1 for path in routes), default=0)
    return CacheNetworkTopology(
        name=name,
        n_nodes=n_nodes,
        edges=edges,
        receivers=receivers,
        routers=routers,
        sources=sources,
        routes=tuple(routes),
        route_latencies=tuple(route_latencies),
        depths=_hop_depths(n_nodes, adj, sources),
        diameter=max(_hop_diameter(n_nodes, adj), route_hops),
    )


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def path_topology(
    n_nodes: int,
    *,
    receiver_latency_s: float = RECEIVER_EDGE_LATENCY_S,
    internal_latency_s: float = INTERNAL_EDGE_LATENCY_S,
    source_latency_s: float = SOURCE_EDGE_LATENCY_S,
    name: Optional[str] = None,
) -> CacheNetworkTopology:
    """An N-node chain: node 0 requests, 1..N-2 cache, N-1 originates.

    The SNIPPETS.md icarus experiment shape (``path:6`` gives receiver
    0, caching nodes 1–4, server 5).
    """
    if n_nodes < 3:
        raise ValueError(
            f"a PATH needs receiver + router + source, got {n_nodes} nodes"
        )
    edges: List[Tuple[int, int, float]] = []
    for u in range(n_nodes - 1):
        if u == 0:
            latency = receiver_latency_s
        elif u == n_nodes - 2:
            latency = source_latency_s
        else:
            latency = internal_latency_s
        edges.append((u, u + 1, latency))
    return build_topology(
        name=name or f"path:{n_nodes}",
        edges=tuple(edges),
        receivers=(0,),
        routers=tuple(range(1, n_nodes - 1)),
        sources=(n_nodes - 1,),
    )


def tree_topology(
    branching: int,
    depth: int,
    *,
    receiver_latency_s: float = RECEIVER_EDGE_LATENCY_S,
    internal_latency_s: float = INTERNAL_EDGE_LATENCY_S,
    source_latency_s: float = SOURCE_EDGE_LATENCY_S,
    name: Optional[str] = None,
) -> CacheNetworkTopology:
    """A K-ary router tree of ``depth`` levels, receivers on the leaves.

    Routers are numbered BFS from the root (``tree:2x4`` yields the
    15-router binary tree), the source hangs above the root, and one
    receiver hangs below every leaf router.
    """
    if branching < 2:
        raise ValueError(f"tree branching must be at least 2, got {branching}")
    if depth < 1:
        raise ValueError(f"tree depth must be at least 1, got {depth}")
    n_routers = sum(branching ** level for level in range(depth))
    first_leaf = n_routers - branching ** (depth - 1)
    source = n_routers
    edges: List[Tuple[int, int, float]] = [(0, source, source_latency_s)]
    for parent in range(first_leaf):
        for child in range(branching * parent + 1, branching * parent + branching + 1):
            edges.append((parent, child, internal_latency_s))
    receivers = tuple(range(n_routers + 1, n_routers + 1 + (n_routers - first_leaf)))
    for offset, receiver in enumerate(receivers):
        edges.append((first_leaf + offset, receiver, receiver_latency_s))
    edges.sort()
    return build_topology(
        name=name or f"tree:{branching}x{depth}",
        edges=tuple(edges),
        receivers=receivers,
        routers=tuple(range(n_routers)),
        sources=(source,),
    )


def ring_topology(
    n_routers: int,
    *,
    receiver_latency_s: float = RECEIVER_EDGE_LATENCY_S,
    internal_latency_s: float = INTERNAL_EDGE_LATENCY_S,
    source_latency_s: float = SOURCE_EDGE_LATENCY_S,
    name: Optional[str] = None,
) -> CacheNetworkTopology:
    """N routers in a cycle, one receiver each, source on router 0."""
    if n_routers < 3:
        raise ValueError(f"a RING needs at least 3 routers, got {n_routers}")
    source = n_routers
    edges: List[Tuple[int, int, float]] = [(0, source, source_latency_s)]
    for u in range(n_routers):
        edges.append((min(u, (u + 1) % n_routers),
                      max(u, (u + 1) % n_routers),
                      internal_latency_s))
    receivers = tuple(range(n_routers + 1, 2 * n_routers + 1))
    for router, receiver in enumerate(receivers):
        edges.append((router, receiver, receiver_latency_s))
    edges = sorted(set(edges))
    return build_topology(
        name=name or f"ring:{n_routers}",
        edges=tuple(edges),
        receivers=receivers,
        routers=tuple(range(n_routers)),
        sources=(source,),
    )


def mesh_topology(
    n_routers: int,
    k_neighbors: int = 3,
    *,
    seed: int = 0,
    area_size: float = 1000.0,
    receiver_latency_s: float = RECEIVER_EDGE_LATENCY_S,
    internal_latency_s: float = INTERNAL_EDGE_LATENCY_S,
    source_latency_s: float = SOURCE_EDGE_LATENCY_S,
    name: Optional[str] = None,
) -> CacheNetworkTopology:
    """A random-geometric router mesh built on the EDP placement layer.

    Routers are placed like EDPs by
    :class:`repro.network.topology.NetworkTopology` (uniform in a
    square, seeded), joined by symmetrised K-nearest-neighbour edges
    whose latency scales with Euclidean distance (mean internal edge
    ≈ ``internal_latency_s``), and repaired into one component by
    bridging each disconnected component through its closest node
    pair.  The source attaches to the router nearest the area centre;
    every router gets one receiver.  All geometry goes through the
    stable ``neighbors`` / ``distance`` graph API — no distance-matrix
    logic is duplicated here.
    """
    if n_routers < 3:
        raise ValueError(f"a MESH needs at least 3 routers, got {n_routers}")
    if k_neighbors < 1:
        raise ValueError(f"k_neighbors must be positive, got {k_neighbors}")
    placement = NetworkTopology(
        config=PlacementConfig(
            area_size=area_size, n_edps=n_routers, n_requesters=0
        ),
        rng=np.random.default_rng(seed),
    )
    pair_set = set()
    for u in range(n_routers):
        for v in placement.neighbors(u, k=k_neighbors):
            pair_set.add((min(u, int(v)), max(u, int(v))))

    # Repair connectivity: greedily bridge components through their
    # closest node pair (deterministic: ties break on node indices).
    def components(pairs) -> List[List[int]]:
        seen, comps = set(), []
        adj: Dict[int, set] = {u: set() for u in range(n_routers)}
        for u, v in pairs:
            adj[u].add(v)
            adj[v].add(u)
        for start in range(n_routers):
            if start in seen:
                continue
            comp, frontier = [], [start]
            seen.add(start)
            while frontier:
                node = frontier.pop()
                comp.append(node)
                for nxt in sorted(adj[node]):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            comps.append(sorted(comp))
        return comps

    comps = components(pair_set)
    while len(comps) > 1:
        base = comps[0]
        best = None
        for other in comps[1:]:
            for u in base:
                for v in other:
                    key = (placement.distance(u, v), min(u, v), max(u, v))
                    if best is None or key < best:
                        best = key
        _, u, v = best
        pair_set.add((u, v))
        comps = components(pair_set)

    # Distance-scaled latencies, normalised so the mean internal edge
    # costs internal_latency_s.
    pairs = sorted(pair_set)
    dists = [placement.distance(u, v) for u, v in pairs]
    mean_dist = float(np.mean(dists)) if dists else 1.0
    edges: List[Tuple[int, int, float]] = [
        (u, v, internal_latency_s * max(d / mean_dist, 0.1))
        for (u, v), d in zip(pairs, dists)
    ]

    centre = np.array([area_size / 2.0, area_size / 2.0])
    offsets = np.linalg.norm(placement.edp_positions - centre, axis=1)
    hub = int(np.lexsort((np.arange(n_routers), offsets))[0])
    source = n_routers
    edges.append((hub, source, source_latency_s))
    receivers = tuple(range(n_routers + 1, 2 * n_routers + 1))
    for router, receiver in enumerate(receivers):
        edges.append((router, receiver, receiver_latency_s))
    edges.sort()
    return build_topology(
        name=name or f"mesh:{n_routers}x{k_neighbors}",
        edges=tuple(edges),
        receivers=receivers,
        routers=tuple(range(n_routers)),
        sources=(source,),
    )


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
def parse_topology(spec: str, *, seed: int = 0) -> CacheNetworkTopology:
    """Build a topology from its CLI spec (see the module table).

    ``seed`` only affects the random-geometric MESH placement.
    """
    text = str(spec).strip().lower()
    kind, _, params = text.partition(":")
    if kind not in TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology kind {kind!r}; expected one of {TOPOLOGY_KINDS}"
        )
    if not params:
        raise ValueError(
            f"topology spec {spec!r} lacks parameters (e.g. 'path:6', "
            f"'tree:2x3', 'ring:8', 'mesh:12x3')"
        )
    fields = params.split("x")
    try:
        numbers = [int(f) for f in fields]
    except ValueError:
        raise ValueError(
            f"topology spec {spec!r} has non-integer parameters"
        ) from None
    if kind == "path":
        if len(numbers) != 1:
            raise ValueError(f"'path' takes one parameter, got {spec!r}")
        return path_topology(numbers[0], name=text)
    if kind == "tree":
        if len(numbers) != 2:
            raise ValueError(f"'tree' takes KxD parameters, got {spec!r}")
        return tree_topology(numbers[0], numbers[1], name=text)
    if kind == "ring":
        if len(numbers) != 1:
            raise ValueError(f"'ring' takes one parameter, got {spec!r}")
        return ring_topology(numbers[0], name=text)
    if len(numbers) == 1:
        return mesh_topology(numbers[0], seed=seed, name=text)
    if len(numbers) == 2:
        return mesh_topology(numbers[0], numbers[1], seed=seed, name=text)
    raise ValueError(f"'mesh' takes N or NxK parameters, got {spec!r}")
