"""On-path placement strategies for cache-network replays.

When a request misses at a caching node it travels on toward the
origin; once served (at a deeper cache or at the source), the content
flows back down the same path and every caching node it passes asks
its :class:`PlacementStrategy` whether to keep a copy.  The classical
strategies answered that question long before mean-field games did:

* **LCE** (Leave Copy Everywhere) — cache at every node on the return
  path.
* **LCD** (Leave Copy Down) — cache at exactly one node: the first
  caching node downstream of wherever the content was served, so a
  copy migrates one level toward the receiver per request.
* **ProbCache** (Psaras et al.) — cache probabilistically, weighting
  nodes near the receiver by the remaining path's cache capacity:
  ``p = N / (t_tw * c_v) * (x / L)^L`` with ``N`` the total capacity
  (in copies) of the remaining downstream path, ``c_v`` this node's
  capacity, ``x`` hops travelled from the serving point, and ``L``
  the serving-point-to-receiver path length.
* **edge** — cache only at the last caching node before the receiver
  (the degenerate "edge-only" placement the paper's isolated-EDP
  model corresponds to).

:class:`MFGNetworkStrategy` is the reproduction's entry in that
lineup: the solved per-content equilibrium caching rate ``x*(t)``
becomes a per-node admission probability scaled by node depth
(``depth / max_depth`` — full equilibrium rate at the request edge,
proportionally less toward the origin), and eviction ranks copies by
the equilibrium's predicted population occupancy instead of recency.
Deeper-is-greedier concentrates the Zipf head near receivers while
keeping upstream caches available for the tail, which is what lets
the adapter beat LCE at equal total cache budget.

Strategies are stateless across nodes and replicas — all mutable
state lives in the per-node caches and queues — so one instance
serves a whole replay and pickles cleanly to pool workers.  Random
draws come from the *receiver's* policy stream, never the request
stream, so request traces are identical under every strategy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.equilibrium import EquilibriumResult
from repro.serve.cache import EdgeCache
from repro.serve.policies import MFGPolicyAdapter

STRATEGY_NAMES = ("lce", "lcd", "probcache", "edge", "mfg")

# ProbCache's "time window" constant from the original paper; the cache
# capacity sum N is measured in copies of the content being placed.
PROBCACHE_T_TW = 10.0


@dataclass(frozen=True)
class PlacementSite:
    """One caching node's view of a return-path placement decision.

    Attributes
    ----------
    node:
        The caching node's id.
    slot:
        Replay slot index.
    content:
        Catalog index of the content flowing back.
    hops_from_server:
        Hops travelled from the serving point to this node (>= 1).
    hops_to_receiver:
        Hops left to the receiver (>= 1; the receiver holds no cache).
    path_len:
        Serving-point-to-receiver hop count.
    downstream_index:
        1-based position among the *caching* nodes of the return path
        (1 = first caching node below the serving point).
    is_edge:
        Whether this is the last caching node before the receiver.
    depth:
        The node's hop distance from the nearest source.
    max_depth:
        The deepest caching node's depth in the topology.
    path_capacity:
        Total capacity (in copies of this content) of the caching
        nodes from here down to the receiver, inclusive.
    node_capacity:
        This node's capacity in copies of this content.
    """

    node: int
    slot: int
    content: int
    hops_from_server: int
    hops_to_receiver: int
    path_len: int
    downstream_index: int
    is_edge: bool
    depth: int
    max_depth: int
    path_capacity: float
    node_capacity: float


class PlacementStrategy(abc.ABC):
    """Decides where a travelling content leaves copies."""

    name: str = "strategy"

    @abc.abstractmethod
    def should_place(
        self, site: PlacementSite, rng: np.random.Generator
    ) -> bool:
        """Whether to cache the content at this return-path node."""

    def victim(
        self, slot: int, cache: EdgeCache, rng: np.random.Generator
    ) -> int:
        """The cached content evicted to make room (default LRU).

        Only called with a non-empty cache; must be deterministic
        given cache state and the RNG stream.
        """
        del slot, rng
        return min(cache, key=lambda e: (e.last_used, e.content)).content


class LCEStrategy(PlacementStrategy):
    """Leave Copy Everywhere: place at every return-path cache."""

    name = "lce"

    def should_place(self, site, rng):
        del site, rng
        return True


class LCDStrategy(PlacementStrategy):
    """Leave Copy Down: place at exactly one node per serve.

    Only the first caching node downstream of the serving point keeps
    a copy, so content migrates one level toward the receiver each
    time it is requested — the classical self-filtering hierarchy.
    """

    name = "lcd"

    def should_place(self, site, rng):
        del rng
        return site.downstream_index == 1


class EdgeOnlyStrategy(PlacementStrategy):
    """Cache only at the last node before the receiver.

    The network analogue of the paper's isolated-EDP serving model:
    all placement happens at the request edge, upstream caches stay
    empty.
    """

    name = "edge"

    def should_place(self, site, rng):
        del rng
        return site.is_edge


class ProbCacheStrategy(PlacementStrategy):
    """Probabilistic on-path caching (Psaras et al., the icarus form).

    ``p = path_capacity / (t_tw * node_capacity) * (x / L)^L`` — the
    deeper into the return path the content has travelled (larger
    ``x``), the likelier a copy sticks, weighted by how much cache
    space the remaining downstream path offers.
    """

    name = "probcache"

    def __init__(self, t_tw: float = PROBCACHE_T_TW) -> None:
        if t_tw <= 0:
            raise ValueError(f"t_tw must be positive, got {t_tw}")
        self.t_tw = float(t_tw)

    def should_place(self, site, rng):
        if site.node_capacity <= 0:
            return False
        x, length = site.hops_from_server, max(site.path_len, 1)
        p = (
            site.path_capacity
            / (self.t_tw * site.node_capacity)
            * (x / length) ** length
        )
        return bool(rng.random() < min(p, 1.0))


@dataclass
class MFGNetworkStrategy(PlacementStrategy):
    """Equilibrium-driven on-path placement.

    Attributes
    ----------
    rate:
        ``(n_slots, n_contents)`` equilibrium caching rates in [0, 1]
        (the :class:`~repro.serve.policies.MFGPolicyAdapter` table).
    score:
        ``(n_slots, n_contents)`` eviction priorities (higher = keep),
        the equilibrium's predicted population occupancy.
    """

    rate: np.ndarray
    score: np.ndarray

    name = "mfg"

    def __post_init__(self) -> None:
        self.rate = np.asarray(self.rate, dtype=float)
        self.score = np.asarray(self.score, dtype=float)
        if self.rate.ndim != 2 or self.rate.shape != self.score.shape:
            raise ValueError(
                f"rate {self.rate.shape} and score {self.score.shape} must be "
                f"matching (n_slots, n_contents) tables"
            )
        if np.any(self.rate < -1e-9) or np.any(self.rate > 1.0 + 1e-9):
            raise ValueError("admission rates must lie in [0, 1]")
        self.rate = np.clip(self.rate, 0.0, 1.0)

    @classmethod
    def from_equilibria(
        cls,
        equilibria: Mapping[int, EquilibriumResult],
        sizes_mb: Sequence[float],
        update_periods: Sequence[float],
        slot_times: Sequence[float],
        horizon: Optional[float] = None,
    ) -> "MFGNetworkStrategy":
        """Distil solved per-content equilibria into placement tables.

        Reuses :meth:`MFGPolicyAdapter.from_equilibria` — the network
        strategy consumes exactly the tables the single-cache adapter
        does, so both planes read the same equilibrium.
        """
        adapter = MFGPolicyAdapter.from_equilibria(
            equilibria, sizes_mb, update_periods, slot_times, horizon=horizon
        )
        return cls(rate=adapter.rate, score=adapter.score)

    def admission_probability(self, site: PlacementSite) -> float:
        """Depth-scaled admission probability at this site.

        The request edge (``depth == max_depth``) admits at the full
        equilibrium caching rate; each level toward the origin scales
        it down proportionally, keeping upstream caches selective.
        """
        depth_scale = (
            site.depth / site.max_depth if site.max_depth > 0 else 1.0
        )
        return float(self.rate[site.slot, site.content] * depth_scale)

    def should_place(self, site, rng):
        return bool(rng.random() < self.admission_probability(site))

    def victim(self, slot, cache, rng):
        del rng
        return min(
            cache,
            key=lambda e: (self.score[slot, e.content], e.last_used, e.content),
        ).content


def make_strategy(
    name: str,
    *,
    equilibria: Optional[Mapping[int, EquilibriumResult]] = None,
    sizes_mb: Optional[Sequence[float]] = None,
    update_periods: Optional[Sequence[float]] = None,
    slot_times: Optional[Sequence[float]] = None,
    horizon: Optional[float] = None,
) -> PlacementStrategy:
    """Build a placement strategy from its CLI name.

    ``"mfg"`` additionally requires the solved ``equilibria`` plus the
    catalog geometry and replay slot times (the engine supplies them).
    """
    key = str(name).strip().lower()
    if key == "lce":
        return LCEStrategy()
    if key == "lcd":
        return LCDStrategy()
    if key in ("edge", "edge-only"):
        return EdgeOnlyStrategy()
    if key == "probcache":
        return ProbCacheStrategy()
    if key == "mfg":
        if (
            equilibria is None
            or sizes_mb is None
            or update_periods is None
            or slot_times is None
        ):
            raise ValueError(
                "the 'mfg' strategy needs solved equilibria, catalog sizes, "
                "update periods, and replay slot times"
            )
        return MFGNetworkStrategy.from_equilibria(
            equilibria, sizes_mb, update_periods, slot_times, horizon=horizon
        )
    raise ValueError(
        f"unknown placement strategy {name!r}; expected one of {STRATEGY_NAMES}"
    )
