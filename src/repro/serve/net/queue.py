"""Finite per-node cache admission queues with deterministic drain.

Classical cache simulators (icarus's ``CACHE_QUEUE`` collector) model
the write path of a cache as a finite queue: every admission decision
that survives the placement strategy must also get through the node's
admission queue, and a full queue *rejects* the write — the content is
simply not cached, and the rejection is counted.

:class:`AdmissionQueue` keeps that accounting deterministic: the
backlog drains at a fixed ``service_rate`` jobs per unit of replay
time (a fluid drain — no sampled service times, so replays stay
bit-identical across backends), and an arrival that would push the
backlog past ``capacity`` is rejected.  ``PERCENTAGE_OF_REJECTION`` in
the icarus output is exactly :attr:`rejection_rate` here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AdmissionQueue:
    """One caching node's write-admission queue.

    Attributes
    ----------
    capacity:
        Maximum backlog (queued cache writes).  Arrivals beyond it are
        rejected and counted.
    service_rate:
        Writes drained per unit of replay time; the backlog decays by
        ``elapsed * service_rate`` between offers.
    """

    capacity: int
    service_rate: float
    backlog: float = 0.0
    last_t: float = 0.0
    accepted: int = 0
    rejected: int = 0
    backlog_integral: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"queue capacity must be positive, got {self.capacity}")
        if self.service_rate <= 0:
            raise ValueError(
                f"queue service_rate must be positive, got {self.service_rate}"
            )

    def offer(self, t: float) -> bool:
        """Offer one cache write at replay time ``t``.

        Returns whether the write was admitted.  Offers must arrive in
        non-decreasing time order (the replay is slot-ordered); earlier
        times simply do not drain.
        """
        if t > self.last_t:
            elapsed = t - self.last_t
            drain_time = self.backlog / self.service_rate
            if elapsed >= drain_time:
                # The backlog empties mid-gap: triangular area, then zero.
                self.backlog_integral += self.backlog * drain_time / 2.0
                self.backlog = 0.0
            else:
                drained = elapsed * self.service_rate
                # Linear decay over the whole gap (trapezoid area).
                self.backlog_integral += elapsed * (self.backlog - drained / 2.0)
                self.backlog -= drained
            self.last_t = t
        if self.backlog + 1.0 > self.capacity + 1e-9:
            self.rejected += 1
            return False
        self.backlog += 1.0
        self.accepted += 1
        return True

    @property
    def offers(self) -> int:
        return self.accepted + self.rejected

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered writes rejected (icarus's rejection %)."""
        return self.rejected / self.offers if self.offers else 0.0

    def mean_backlog(self) -> float:
        """Time-averaged queue size up to the last offer."""
        return self.backlog_integral / self.last_t if self.last_t > 0 else 0.0
