"""The network replay engine: hop-by-hop cache probing over a topology.

:class:`NetworkReplayEngine` routes every request from its receiver
toward the origin along the topology's precomputed route, probing each
caching node on the way; the first node holding the content serves it
(the source always can), and on the return path the pluggable
:class:`~repro.serve.net.strategies.PlacementStrategy` decides which
nodes keep a copy — each placement passing through the node's finite
:class:`~repro.serve.net.queue.AdmissionQueue` first.

Execution shape
---------------
Node caches are shared by every receiver, so a network replay cannot
shard per receiver the way :class:`~repro.serve.engine.ServingEngine`
shards per EDP.  The parallel unit is instead the **replica**: each
replica replays the whole network against its own independent request
streams (receiver ``r`` of replica ``j`` consumes stream
``j * n_receivers + r`` of one shared
:class:`~repro.serve.events.RequestTraceSource`), and replicas are
grouped into :class:`~repro.runtime.ExecutionPlan` work items.  Every
stream descends from the root seed by ``SeedSequence.spawn``, each
replica is replayed slot-ordered in one item, and per-item results and
telemetry merge in item order — so reports are bit-identical across
``serial`` and any ``process:N`` backend, and across shard counts.

Semantics (documented in ``docs/serving.md``)
---------------------------------------------
* A slot's batch of ``c`` requests for content ``k`` probes the route
  once; all ``c`` requests are served where the probe first hits.
* End-to-end latency per request is the round trip to the serving
  node: ``2 *`` the route's cumulative one-way edge latency.
* The placement pass walks the return path top-down (serving node
  toward receiver); a strategy "yes" becomes a queue offer, and an
  admitted write evicts strategy-chosen victims until the copy fits.
* Request timeliness draws are consumed (stream compatibility with
  the single-cache engine) but staleness is not modelled on the
  network plane — copies are replaced, never refreshed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.content.workloads import Workload
from repro.core.equilibrium import EquilibriumResult
from repro.core.parameters import MFGCPConfig
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry
from repro.runtime import ExecutionPlan, ExecutorLike, as_executor, partition_indices
from repro.serve.cache import EdgeCache
from repro.serve.engine import equilibrium_configs, solve_equilibrium_map
from repro.serve.events import RequestTraceSource
from repro.serve.net.queue import AdmissionQueue
from repro.serve.net.report import (
    NetworkReplayStats,
    NetworkServingReport,
    NodeServingStats,
)
from repro.serve.net.strategies import (
    PlacementSite,
    PlacementStrategy,
    make_strategy,
)
from repro.serve.net.topology import CacheNetworkTopology, parse_topology
from repro.serve.stream import RequestStream


@dataclass(frozen=True)
class NetworkReplaySpec:
    """Everything one shard needs to replay its replicas (picklable).

    Attributes
    ----------
    topology:
        The cache network (routes and latencies precomputed).
    source:
        The request-trace recipe; stream ``j * n_receivers + r`` feeds
        receiver ``r`` of replica ``j`` (``source.n_edps`` must equal
        ``n_replicas * n_receivers``).
    n_receivers, n_replicas:
        The stream-indexing geometry.
    sizes_mb:
        Catalog sizes per content.
    node_capacity_mb:
        Per-router cache capacity.
    queue_capacity, queue_service_rate:
        Admission-queue shape shared by every caching node.
    receiver_popularity:
        Optional ``(n_receivers, n_contents)`` per-receiver demand
        shares (rows need not be normalised); ``None`` means every
        receiver follows the workload's global popularity.
    stream, chunk_slots:
        When ``stream`` is set, requests come from the chunked
        :class:`~repro.serve.stream.RequestStream` protocol instead of
        the sequential trace source — bounded memory (one
        ``chunk_slots``-slot block per receiver lane at a time) and a
        new per-``(lane, slot)`` RNG keying, so streamed network
        replays form their own determinism domain.  ``chunk_slots=0``
        means one chunk per replay.  ``receiver_popularity`` is a
        legacy-path feature and cannot combine with ``stream``.
    """

    topology: CacheNetworkTopology
    source: RequestTraceSource
    n_receivers: int
    n_replicas: int
    sizes_mb: Tuple[float, ...]
    node_capacity_mb: float
    queue_capacity: int
    queue_service_rate: float
    receiver_popularity: Optional[np.ndarray] = None
    stream: Optional[RequestStream] = None
    chunk_slots: int = 0

    def __post_init__(self) -> None:
        if self.n_receivers != self.topology.n_receivers:
            raise ValueError(
                f"spec names {self.n_receivers} receivers but the topology "
                f"has {self.topology.n_receivers}"
            )
        if self.n_replicas < 1:
            raise ValueError(f"n_replicas must be positive, got {self.n_replicas}")
        if self.source.n_edps != self.n_replicas * self.n_receivers:
            raise ValueError(
                f"source provides {self.source.n_edps} streams; "
                f"{self.n_replicas} replicas x {self.n_receivers} receivers "
                f"need {self.n_replicas * self.n_receivers}"
            )
        if len(self.sizes_mb) != self.source.n_contents:
            raise ValueError(
                f"{len(self.sizes_mb)} sizes for {self.source.n_contents} contents"
            )
        if self.node_capacity_mb <= 0:
            raise ValueError(
                f"node_capacity_mb must be positive, got {self.node_capacity_mb}"
            )
        if self.receiver_popularity is not None:
            pop = np.asarray(self.receiver_popularity, dtype=float)
            if pop.shape != (self.n_receivers, self.source.n_contents):
                raise ValueError(
                    f"receiver_popularity shape {pop.shape} does not match "
                    f"({self.n_receivers}, {self.source.n_contents})"
                )
            if np.any(pop < 0) or np.any(pop.sum(axis=1) <= 0):
                raise ValueError(
                    "receiver_popularity rows must be non-negative with "
                    "positive mass"
                )
        if self.chunk_slots < 0:
            raise ValueError(
                f"chunk_slots must be non-negative, got {self.chunk_slots}"
            )
        if self.stream is not None:
            if self.receiver_popularity is not None:
                raise ValueError(
                    "receiver_popularity is not supported in stream mode; "
                    "encode per-receiver demand in the stream instead"
                )
            if self.stream.n_contents != self.source.n_contents:
                raise ValueError(
                    f"stream has {self.stream.n_contents} contents; the "
                    f"spec names {self.source.n_contents}"
                )
            if self.stream.n_slots != self.source.n_slots:
                raise ValueError(
                    f"stream spans {self.stream.n_slots} slots; the spec "
                    f"names {self.source.n_slots}"
                )
            if self.stream.n_edps != self.n_replicas * self.n_receivers:
                raise ValueError(
                    f"stream provides {self.stream.n_edps} lanes; "
                    f"{self.n_replicas} replicas x {self.n_receivers} "
                    f"receivers need {self.n_replicas * self.n_receivers}"
                )


def _serve_receiver_slot(
    spec: NetworkReplaySpec,
    strategy: PlacementStrategy,
    caches: Dict[int, EdgeCache],
    queues: Dict[int, AdmissionQueue],
    stats: NetworkReplayStats,
    receiver: int,
    slot: int,
    t: float,
    counts: np.ndarray,
    policy_rng: np.random.Generator,
    max_depth: int,
    measured: bool = True,
) -> None:
    """Serve one receiver's slot batch: probe, account, place.

    The single place network serving semantics live; the sequential and
    the streamed replica replays both funnel through here, which is
    what makes replays bit-identical by construction.  ``measured``
    gates every stats counter (warmup slots mutate caches and queues
    but report nothing).
    """
    topo = spec.topology
    sizes = spec.sizes_mb
    route = topo.routes[receiver]
    route_latency = topo.route_latencies[receiver]
    for k in np.nonzero(counts)[0]:
        k = int(k)
        count = int(counts[k])
        # Probe hop by hop toward the origin; positions
        # 1..len-2 are caching routers, the last is the source.
        serving_pos = len(route) - 1
        entry = None
        for pos in range(1, len(route) - 1):
            entry = caches[route[pos]].lookup(k)
            if entry is not None:
                serving_pos = pos
                break
        if measured:
            stats.requests += count
            stats.hops += serving_pos * count
            stats.max_hops = max(stats.max_hops, serving_pos)
            stats.latency_s += 2.0 * route_latency[serving_pos] * count
        if entry is not None:
            entry.last_used = t
            entry.hits += count
            if measured:
                stats.cache_hits += count
                stats.per_node[route[serving_pos]].hits += count
        elif measured:
            stats.source_hits += count

        # Placement pass: return path, serving node downward.
        if serving_pos <= 1:
            continue
        if measured:
            stats.placement_walks += 1
        size = sizes[k]
        downstream_index = 0
        for pos in range(serving_pos - 1, 0, -1):
            node = route[pos]
            cache = caches[node]
            downstream_index += 1
            site = PlacementSite(
                node=node,
                slot=slot,
                content=k,
                hops_from_server=serving_pos - pos,
                hops_to_receiver=pos,
                path_len=serving_pos,
                downstream_index=downstream_index,
                is_edge=(pos == 1),
                depth=int(topo.depths[node]),
                max_depth=max_depth,
                path_capacity=sum(
                    caches[route[p]].capacity_mb for p in range(1, pos + 1)
                )
                / size,
                node_capacity=cache.capacity_mb / size,
            )
            if not strategy.should_place(site, policy_rng):
                continue
            if measured:
                stats.placement_attempts += 1
            node_stats = stats.per_node[node]
            if not queues[node].offer(t):
                continue
            if not cache.fits(size):
                continue
            while not cache.has_room(size):
                victim = strategy.victim(slot, cache, policy_rng)
                cache.evict(victim)
                if measured:
                    node_stats.evictions += 1
            cache.store(k, size, t)
            if measured:
                node_stats.placements += 1


def _check_occupancy(
    spec: NetworkReplaySpec,
    strategy: PlacementStrategy,
    caches: Dict[int, EdgeCache],
    telemetry: SolverTelemetry,
) -> None:
    if not telemetry.enabled:
        return
    over = [
        node
        for node, cache in sorted(caches.items())
        if cache.used_mb > spec.node_capacity_mb * (1 + 1e-9)
    ]
    if over:
        # Invariant check: placement/eviction must never leave a
        # node cache over capacity; an overshoot is a strategy bug.
        telemetry.diag(
            "net.occupancy",
            "error",
            value=float(len(over)),
            threshold=float(spec.node_capacity_mb),
            message="node cache occupancy exceeds capacity",
            nodes=over,
            strategy=strategy.name,
        )


def _replay_replica(
    spec: NetworkReplaySpec,
    strategy: PlacementStrategy,
    replica: int,
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> NetworkReplayStats:
    """Replay one full-network replica against fresh caches and queues.

    The sequential (trace-source) path: one persistent RNG pair per
    receiver lane, consumed slot by slot from slot 0.
    """
    topo = spec.topology
    caches: Dict[int, EdgeCache] = {
        int(v): EdgeCache(capacity_mb=spec.node_capacity_mb) for v in topo.routers
    }
    queues: Dict[int, AdmissionQueue] = {
        int(v): AdmissionQueue(
            capacity=spec.queue_capacity, service_rate=spec.queue_service_rate
        )
        for v in topo.routers
    }
    stats = NetworkReplayStats.empty(topo)
    stats.replicas = 1
    stats.elapsed_t = spec.source.horizon
    max_depth = max(int(topo.depths[v]) for v in topo.routers)

    # Per-receiver (arrival process, policy RNG, popularity) triples.
    lanes = []
    for r in range(spec.n_receivers):
        stream = replica * spec.n_receivers + r
        request_rng, policy_rng = spec.source.rng_pair_for(stream)
        process = spec.source.process_for(stream, request_rng)
        if spec.receiver_popularity is not None:
            pop = np.asarray(spec.receiver_popularity[r], dtype=float)
        else:
            pop = np.asarray(spec.source.popularity, dtype=float)
        lanes.append((process, policy_rng, pop))

    for slot in range(spec.source.n_slots):
        t = (slot + 0.5) * spec.source.dt
        for r in range(spec.n_receivers):
            process, policy_rng, pop = lanes[r]
            batch = process.sample(pop, spec.source.dt)
            _serve_receiver_slot(
                spec,
                strategy,
                caches,
                queues,
                stats,
                r,
                slot,
                t,
                batch.counts,
                policy_rng,
                max_depth,
            )

    for node, queue in sorted(queues.items()):
        node_stats = stats.per_node[node]
        node_stats.queue_accepted += queue.accepted
        node_stats.queue_rejected += queue.rejected
        node_stats.queue_backlog_time += queue.backlog_integral
    _check_occupancy(spec, strategy, caches, telemetry)
    return stats


def _replay_replica_stream(
    spec: NetworkReplaySpec,
    strategy: PlacementStrategy,
    replica: int,
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> NetworkReplayStats:
    """Replay one replica from chunked streams under bounded memory.

    Receiver lane ``r`` consumes stream EDP ``replica * n_receivers +
    r``; at most one ``chunk_slots``-slot chunk per lane is resident at
    a time, so peak memory is independent of the replay horizon.
    Policy draws key per ``(lane, slot)``, so results are invariant to
    the chunk size.  Warmup slots (``stream.warmup_slots``) exercise
    caches and queues but touch no counters — queue counters are
    baselined at the warmup boundary and the pre-boundary portion
    subtracted at fold time.
    """
    stream = spec.stream
    if stream is None:
        raise ValueError("spec has no stream; use _replay_replica")
    topo = spec.topology
    caches: Dict[int, EdgeCache] = {
        int(v): EdgeCache(capacity_mb=spec.node_capacity_mb) for v in topo.routers
    }
    queues: Dict[int, AdmissionQueue] = {
        int(v): AdmissionQueue(
            capacity=spec.queue_capacity, service_rate=spec.queue_service_rate
        )
        for v in topo.routers
    }
    stats = NetworkReplayStats.empty(topo)
    stats.replicas = 1
    stats.elapsed_t = stream.measured_slots * stream.dt
    max_depth = max(int(topo.depths[v]) for v in topo.routers)
    warmup = stream.warmup_slots
    lanes = [replica * spec.n_receivers + r for r in range(spec.n_receivers)]
    chunk_slots = spec.chunk_slots or stream.n_slots

    baseline: Optional[Dict[int, Tuple[int, int, float]]] = None
    if warmup == 0:
        baseline = {int(v): (0, 0, 0.0) for v in topo.routers}
    for index in range(stream.n_chunks(chunk_slots)):
        chunks = [stream.chunk(lane, index, chunk_slots) for lane in lanes]
        for local in range(chunks[0].n_slots):
            slot = chunks[0].start_slot + local
            if baseline is None and slot == warmup:
                baseline = {
                    node: (
                        queue.accepted,
                        queue.rejected,
                        queue.backlog_integral,
                    )
                    for node, queue in queues.items()
                }
            measured = slot >= warmup
            t = (slot + 0.5) * stream.dt
            for r in range(spec.n_receivers):
                counts = chunks[r].counts[local]
                if not counts.any():
                    continue
                _serve_receiver_slot(
                    spec,
                    strategy,
                    caches,
                    queues,
                    stats,
                    r,
                    slot,
                    t,
                    counts,
                    stream.policy_rng(lanes[r], slot),
                    max_depth,
                    measured=measured,
                )

    for node, queue in sorted(queues.items()):
        base_accepted, base_rejected, base_backlog = baseline[node]
        node_stats = stats.per_node[node]
        node_stats.queue_accepted += queue.accepted - base_accepted
        node_stats.queue_rejected += queue.rejected - base_rejected
        node_stats.queue_backlog_time += queue.backlog_integral - base_backlog
    _check_occupancy(spec, strategy, caches, telemetry)
    return stats


def replay_network_shard(
    spec: NetworkReplaySpec,
    strategy: PlacementStrategy,
    replica_ids: Tuple[int, ...],
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> List[NetworkReplayStats]:
    """Replay one shard of replicas (the ExecutionPlan work item).

    Module-level and argument-complete so it pickles to pool workers;
    telemetry is the per-worker buffered observer the runtime injects.
    Returns one stats record *per replica*, never pre-merged — the
    engine folds them in global replica order, so float accumulators
    (latency, queue backlog) sum in the same order under every shard
    grouping.
    """
    replay = _replay_replica_stream if spec.stream is not None else _replay_replica
    with telemetry.span("replay_network_shard"):
        results = [
            replay(spec, strategy, int(replica), telemetry=telemetry)
            for replica in replica_ids
        ]
    if telemetry.enabled:
        requests = sum(s.requests for s in results)
        cache_hits = sum(s.cache_hits for s in results)
        telemetry.inc("net.requests", float(requests))
        telemetry.inc("net.cache_hits", float(cache_hits))
        telemetry.inc(
            "net.source_hits", float(sum(s.source_hits for s in results))
        )
        telemetry.inc(
            "net.placements",
            float(
                sum(
                    node.placements
                    for s in results
                    for node in s.per_node.values()
                )
            ),
        )
        telemetry.inc(
            "net.queue_rejections",
            float(
                sum(
                    node.queue_rejected
                    for s in results
                    for node in s.per_node.values()
                )
            ),
        )
        for stats in results:
            if stats.requests:
                telemetry.observe(
                    "net.replica_hit_ratio", stats.cache_hits / stats.requests
                )
                telemetry.observe(
                    "net.replica_mean_hops", stats.hops / stats.requests
                )
        telemetry.event(
            "net_shard",
            strategy=strategy.name,
            topology=spec.topology.name,
            replicas=len(replica_ids),
            requests=requests,
            cache_hits=cache_hits,
            source_hits=sum(s.source_hits for s in results),
        )
    return results


class NetworkReplayEngine:
    """Replay a workload through a cache network under on-path strategies.

    Parameters
    ----------
    workload:
        A :class:`repro.content.workloads.Workload` (catalog,
        popularity, timeliness law, request process).
    topology:
        A :class:`CacheNetworkTopology` or a grammar spec
        (``"tree:2x4"``, ``"path:6"``, ``"ring:8"``, ``"mesh:12x3"``).
    config:
        MFG-CP model constants (horizon, equilibrium solves); defaults
        to the fast preset so ``mfg`` replays stay cheap.
    n_slots:
        Trace resolution; the replay horizon is ``config.horizon``.
    capacity_fraction / node_capacity_mb:
        Per-router cache size, as a fraction of the catalog volume or
        absolute (absolute wins when both are given).  The network's
        total cache budget is ``node_capacity_mb * len(routers)`` —
        strategies compared by one engine always share it.
    rate_per_receiver:
        Request intensity override per receiver; defaults to the
        workload's own per-EDP rate.
    n_replicas:
        Independent full-network replays averaged into one report;
        also the parallel grain (replicas shard across workers).
    shards:
        Work-item count (defaults to ``min(n_replicas, 8)``); pure
        parallel grain, never affects results.
    seed / topology_seed:
        Root seed for request streams / MESH placement geometry.
    queue_capacity, queue_service_rate:
        Admission-queue shape per node; the rate defaults to each
        node's fair share of the network's total request rate.
    executor, telemetry:
        A :mod:`repro.runtime` backend (spec string or object) and the
        run's observer.
    solver_batching / batch_size:
        Solve the mfg strategy's equilibria through the batched tensor
        pipeline (bit-identical to per-content solves).
    receiver_popularity:
        Optional ``(n_receivers, n_contents)`` per-receiver demand
        shares — e.g. from a trace with a ``receiver`` column via
        :func:`repro.content.trace.trace_receiver_popularity`.
    stream / stream_chunk:
        A :class:`~repro.serve.stream.RequestStream` switches the
        replay to the chunked streaming protocol (bounded memory, a
        new per-``(lane, slot)`` determinism domain); the stream must
        provide ``n_replicas * n_receivers`` lanes and fixes the trace
        geometry (``n_slots``, ``dt``, rate, seed), so the matching
        engine arguments must be left at their defaults.
        ``stream_chunk`` is the chunk size in slots (0 = whole replay
        in one chunk per lane).
    """

    def __init__(
        self,
        workload: Workload,
        topology: Union[str, CacheNetworkTopology],
        *,
        config: Optional[MFGCPConfig] = None,
        n_slots: int = 25,
        capacity_fraction: float = 0.1,
        node_capacity_mb: Optional[float] = None,
        rate_per_receiver: Optional[float] = None,
        n_replicas: int = 2,
        shards: Optional[int] = None,
        seed: int = 0,
        topology_seed: int = 0,
        queue_capacity: int = 8,
        queue_service_rate: Optional[float] = None,
        executor: ExecutorLike = None,
        telemetry: SolverTelemetry = NULL_TELEMETRY,
        solver_batching: bool = False,
        batch_size: int = 32,
        receiver_popularity: Optional[np.ndarray] = None,
        stream: Optional[RequestStream] = None,
        stream_chunk: int = 0,
    ) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be positive, got {n_replicas}")
        if solver_batching and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if not 0.0 < capacity_fraction <= 1.0 and node_capacity_mb is None:
            raise ValueError(
                f"capacity_fraction must lie in (0, 1], got {capacity_fraction}"
            )
        if stream_chunk < 0:
            raise ValueError(
                f"stream_chunk must be non-negative, got {stream_chunk}"
            )
        if stream is not None:
            if rate_per_receiver is not None:
                raise ValueError(
                    "rate_per_receiver cannot combine with a stream; the "
                    "stream fixes rate_per_edp"
                )
            if receiver_popularity is not None:
                raise ValueError(
                    "receiver_popularity is not supported in stream mode"
                )
        self.workload = workload
        self.config = config if config is not None else MFGCPConfig.fast()
        self.topology = (
            topology
            if isinstance(topology, CacheNetworkTopology)
            else parse_topology(topology, seed=int(topology_seed))
        )
        self.n_replicas = int(n_replicas)
        self.shards = (
            min(self.n_replicas, 8) if shards is None else int(shards)
        )
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.executor = as_executor(executor)
        self.telemetry = telemetry
        self.solver_batching = bool(solver_batching)
        self.batch_size = int(batch_size)

        catalog = workload.catalog
        if len(catalog) == 0:
            raise ValueError("workload catalog has no contents")
        self.sizes_mb = tuple(float(c.size_mb) for c in catalog)
        self.update_periods = tuple(float(c.update_period) for c in catalog)
        total = sum(self.sizes_mb)
        self.node_capacity_mb = (
            float(node_capacity_mb)
            if node_capacity_mb is not None
            else capacity_fraction * total
        )
        if self.node_capacity_mb < min(self.sizes_mb):
            raise ValueError(
                f"node capacity {self.node_capacity_mb:.1f} MB holds no "
                f"content (smallest is {min(self.sizes_mb):.1f} MB)"
            )
        n_receivers = self.topology.n_receivers
        if stream is not None:
            if stream.n_edps != self.n_replicas * n_receivers:
                raise ValueError(
                    f"stream provides {stream.n_edps} lanes; "
                    f"{self.n_replicas} replicas x {n_receivers} receivers "
                    f"need {self.n_replicas * n_receivers}"
                )
            if stream.n_contents != len(catalog):
                raise ValueError(
                    f"stream serves {stream.n_contents} contents but the "
                    f"workload catalog holds {len(catalog)}"
                )
            rate = float(stream.rate_per_edp)
        else:
            rate = (
                float(rate_per_receiver)
                if rate_per_receiver is not None
                else float(workload.requests.rate_per_edp)
            )
        self.stream = stream
        self.stream_chunk = int(stream_chunk)
        self.queue_capacity = int(queue_capacity)
        self.queue_service_rate = (
            float(queue_service_rate)
            if queue_service_rate is not None
            # Fair share of the network's total request rate per node:
            # admission keeps up on average, bursts still reject.
            else max(rate * n_receivers / len(self.topology.routers), 1e-9)
        )
        if stream is not None:
            # The source mirrors the stream's geometry so every spec
            # consumer (equilibria, reports, slot_times) reads one
            # truth; request draws come from the stream in this mode.
            self.source = RequestTraceSource(
                popularity=tuple(float(p) for p in stream.popularity),
                rate_per_edp=rate,
                timeliness=stream.timeliness,
                n_slots=int(stream.n_slots),
                dt=float(stream.dt),
                seed=int(stream.seed),
                n_edps=self.n_replicas * n_receivers,
            )
        else:
            self.source = RequestTraceSource(
                popularity=tuple(float(p) for p in workload.popularity),
                rate_per_edp=rate,
                timeliness=workload.timeliness_model,
                n_slots=int(n_slots),
                dt=self.config.horizon / int(n_slots),
                seed=int(seed),
                n_edps=self.n_replicas * n_receivers,
            )
        self.receiver_popularity = (
            None
            if receiver_popularity is None
            else np.asarray(receiver_popularity, dtype=float)
        )
        self._equilibria: Optional[Dict[int, EquilibriumResult]] = None

    # ------------------------------------------------------------------
    # Equilibria (the mfg strategy's input)
    # ------------------------------------------------------------------
    def solve_equilibria(self) -> Dict[int, EquilibriumResult]:
        """Per-content equilibria on this engine's executor (cached).

        Uses the exact helpers :class:`~repro.serve.engine.ServingEngine`
        uses, so a network replay and a single-cache replay of the same
        workload read the same equilibrium.
        """
        if self._equilibria is None:
            configs = equilibrium_configs(
                self.config,
                self.source.popularity,
                self.sizes_mb,
                self.source.rate_per_edp,
                min(
                    self.workload.timeliness_model.mean(),
                    self.workload.timeliness_model.l_max,
                ),
            )
            self._equilibria = solve_equilibrium_map(
                configs,
                executor=self.executor,
                telemetry=self.telemetry,
                solver_batching=self.solver_batching,
                batch_size=self.batch_size,
                label_prefix="net_eq",
                span="net_solve_equilibria",
            )
        return self._equilibria

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def build_strategy(self, name: str) -> PlacementStrategy:
        """Instantiate a strategy by name (solving equilibria for mfg)."""
        key = str(name).strip().lower()
        kwargs = {}
        if key == "mfg":
            kwargs = dict(
                equilibria=self.solve_equilibria(),
                sizes_mb=self.sizes_mb,
                update_periods=self.update_periods,
                slot_times=self.source.slot_times(),
                horizon=self.source.horizon,
            )
        return make_strategy(key, **kwargs)

    def spec(self) -> NetworkReplaySpec:
        """The picklable replay recipe shards receive."""
        return NetworkReplaySpec(
            topology=self.topology,
            source=self.source,
            n_receivers=self.topology.n_receivers,
            n_replicas=self.n_replicas,
            sizes_mb=self.sizes_mb,
            node_capacity_mb=self.node_capacity_mb,
            queue_capacity=self.queue_capacity,
            queue_service_rate=self.queue_service_rate,
            receiver_popularity=self.receiver_popularity,
            stream=self.stream,
            chunk_slots=self.stream_chunk,
        )

    def replay(
        self, strategy: Union[str, PlacementStrategy]
    ) -> NetworkServingReport:
        """Replay all replicas under one placement strategy."""
        strategy_obj = (
            strategy
            if isinstance(strategy, PlacementStrategy)
            else self.build_strategy(strategy)
        )
        spec = self.spec()
        shards = partition_indices(self.n_replicas, self.shards)
        plan = ExecutionPlan.map(
            replay_network_shard,
            [(spec, strategy_obj, shard) for shard in shards],
            labels=[
                f"net:{strategy_obj.name}:shard{i}" for i in range(len(shards))
            ],
            accepts_telemetry=True,
        )
        live = self.telemetry.live
        if live is not None:
            live.set_phase(
                f"serve-net:{strategy_obj.name}", total_items=len(plan)
            )
            if self.stream is not None:
                chunk = self.stream_chunk or self.stream.n_slots
                live.set_stream(
                    workload=type(self.stream).__name__,
                    chunk_slots=chunk,
                    n_chunks=self.stream.n_chunks(chunk),
                    expected_requests=self.stream.expected_total_requests(),
                )

        def _shard_progress(outcome) -> None:
            # Fold each landed shard's counters into the live windowed
            # views (recent hit ratio, latency sketch).  Pure side
            # channel — the report below recomputes everything from
            # the ordered outcomes.
            if live is None or outcome.result is None:
                return
            for stats in outcome.result:
                live.note_requests(
                    stats.requests,
                    hits=stats.cache_hits,
                    latency_s=stats.latency_s,
                )

        with self.telemetry.span(f"net_replay_{strategy_obj.name}"):
            outcomes = self.executor.run(
                plan,
                telemetry=self.telemetry,
                progress=_shard_progress if live is not None else None,
            )
        lost = [i for i, shard in enumerate(outcomes) if shard is None]
        if lost and self.telemetry.enabled:
            # A skip/degrade fault policy dropped whole shards; report
            # the hole rather than silently under-counting replicas.
            self.telemetry.diag(
                "net.shard_dropped",
                "warning",
                value=float(len(lost)),
                message=(
                    f"{len(lost)} of {len(outcomes)} network shards were "
                    "dropped by the fault policy"
                ),
                strategy=strategy_obj.name,
                shards=lost,
            )
        # Fold per-replica stats in global replica order (item order
        # preserves it): float sums are then grouping-independent.
        totals = NetworkReplayStats.empty(self.topology)
        for shard_stats in outcomes:
            if shard_stats is None:
                continue
            for replica_stats in shard_stats:
                totals.merge(replica_stats)
        report = NetworkServingReport(
            strategy=strategy_obj.name,
            topology=self.topology.name,
            n_slots=self.source.n_slots,
            dt=self.source.dt,
            seed=self.source.seed,
            n_replicas=self.n_replicas,
            node_capacity_mb=self.node_capacity_mb,
            per_node=tuple(
                totals.per_node[node] for node in sorted(totals.per_node)
            ),
            totals=totals,
        )
        if self.telemetry.enabled:
            self.telemetry.gauge(
                f"net.{strategy_obj.name}.hit_ratio", report.hit_ratio
            )
            self.telemetry.event(
                "network_report",
                strategy=report.strategy,
                topology=report.topology,
                requests=report.requests,
                hit_ratio=report.hit_ratio,
                source_share=report.source_share,
                mean_hops=report.mean_hops,
                mean_latency_s=report.mean_latency_s,
                rejection_rate=report.rejection_rate,
            )
        return report

    def compare(
        self, strategies: Sequence[Union[str, PlacementStrategy]]
    ) -> List[NetworkServingReport]:
        """Replay identical request streams under several strategies.

        Equilibria are solved up front when ``mfg`` is among the
        strategies; every replay consumes identical per-receiver
        request streams (same root seed), so reports are directly
        comparable request for request at equal total cache budget.
        """
        if not strategies:
            raise ValueError("no strategies to compare")
        if any(
            isinstance(s, str) and s.strip().lower() == "mfg"
            for s in strategies
        ):
            self.solve_equilibria()
        return [self.replay(strategy) for strategy in strategies]
