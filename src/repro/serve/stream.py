"""Chunked streaming request generation for million-user replay.

The legacy :class:`~repro.serve.events.RequestTraceSource` walks one
sequential RNG per EDP, so a replay can only be reproduced from slot 0
and every consumer pays per-slot python sampling costs.  This module
replaces that with a **streaming iterator protocol** built for scale:

* A :class:`RequestStream` is a frozen, picklable recipe that yields
  fixed-size :class:`RequestChunk` blocks of requests per EDP.
* Randomness is keyed per ``(EDP, slot)`` through
  ``np.random.SeedSequence(seed, spawn_key=(edp, slot, domain))`` —
  every chunk is **reconstructible in isolation** (no generator state
  to carry), so replays are bit-identical across chunk sizes, shard
  counts and execution backends, and an interrupted replay resumes at
  any chunk boundary without re-sampling the past.
* Generation is vectorised: one Poisson draw per slot over the whole
  catalog and one timeliness draw per slot over the whole request
  batch, instead of per-content python loops.

Workload generators (mirroring icarus's workload catalog, each with
the warmup+measured phase split via ``warmup_slots``):

=================  ====================================================
:class:`ZipfStream`          static ``rank^-alpha`` demand
:class:`ShuffledZipfStream`  Zipf weights under a seed-deterministic
                             rank permutation
:class:`DiurnalStream`       Zipf demand whose *rate* cycles through
                             per-phase multipliers (day/night periods)
:class:`FlashCrowdStream`    Zipf demand with a popularity spike on one
                             content over a slot window
:class:`TraceStream`         demand share loaded from a trace file
                             (:func:`repro.content.trace.load_trace_csv`
                             semantics, malformed rows skipped+counted)
=================  ====================================================

``stream(edp)`` semantics match the legacy protocol — Poisson counts
per content split by popularity, per-request Def. 2 timeliness
requirements — but the RNG keying differs, so streamed replays are a
*new* determinism domain, not bit-compatible with
:class:`RequestTraceSource` replays at equal seeds (both domains are
individually reproducible forever).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.content.catalog import Content, ContentCatalog
from repro.content.requests import RequestBatch
from repro.content.timeliness import TimelinessModel
from repro.content.trace import load_trace_csv, trace_to_popularity
from repro.content.workloads import Workload
from repro.content.requests import RequestProcess

STREAM_WORKLOADS = ("zipf", "shuffled-zipf", "diurnal", "flash-crowd", "trace")
"""CLI names of the streaming workload generators."""

# spawn_key domains: requests and policy decisions draw from separate
# per-(EDP, slot) streams so the request trace is identical under every
# policy, and policy draws never cross a slot boundary (which is what
# makes chunk grouping irrelevant to results).
_REQUEST_DOMAIN = 0
_POLICY_DOMAIN = 1


@dataclass(frozen=True)
class RequestChunk:
    """A fixed-size block of one EDP's request trace.

    Attributes
    ----------
    edp:
        The EDP whose trace this block belongs to.
    start_slot:
        First slot covered; the block spans
        ``[start_slot, start_slot + n_slots)``.
    dt:
        Slot length (requests in a slot share its midpoint time).
    counts:
        Per-slot request counts, shape ``(n_slots, n_contents)``.
    timeliness:
        Per-request Def. 2 requirements, flattened in ``(slot,
        content)`` row-major order with each ``(slot, content)`` cell's
        requests contiguous; total length ``counts.sum()``.
    """

    edp: int
    start_slot: int
    dt: float
    counts: np.ndarray
    timeliness: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts)
        if counts.ndim != 2:
            raise ValueError(
                f"counts must be (n_slots, n_contents), got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("request counts must be non-negative")
        if self.start_slot < 0:
            raise ValueError(f"start_slot must be non-negative, got {self.start_slot}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if len(self.timeliness) != int(counts.sum()):
            raise ValueError(
                f"{len(self.timeliness)} timeliness draws for "
                f"{int(counts.sum())} requests"
            )

    @property
    def n_slots(self) -> int:
        return int(self.counts.shape[0])

    @property
    def n_contents(self) -> int:
        return int(self.counts.shape[1])

    @property
    def n_requests(self) -> int:
        return int(self.counts.sum())

    def offsets(self) -> np.ndarray:
        """Start offset of every ``(slot, content)`` cell's requests.

        Shape ``(n_slots * n_contents + 1,)``; cell ``(s, k)``'s
        requirements are
        ``timeliness[offsets[s * K + k] : offsets[s * K + k + 1]]``.
        """
        flat = np.asarray(self.counts, dtype=np.int64).reshape(-1)
        out = np.empty(flat.size + 1, dtype=np.int64)
        out[0] = 0
        np.cumsum(flat, out=out[1:])
        return out

    def timeliness_for(self, local_slot: int, content: int) -> np.ndarray:
        """Requirements attached to cell ``(local_slot, content)``."""
        offs = self.offsets()
        cell = local_slot * self.n_contents + content
        return self.timeliness[offs[cell]:offs[cell + 1]]

    def slot_batches(self) -> Iterator[Tuple[int, float, RequestBatch]]:
        """Legacy-shaped view: ``(slot, t, RequestBatch)`` per slot."""
        offs = self.offsets()
        k = self.n_contents
        for s in range(self.n_slots):
            slot = self.start_slot + s
            groups = [
                self.timeliness[offs[s * k + c]:offs[s * k + c + 1]]
                for c in range(k)
            ]
            yield (
                slot,
                (slot + 0.5) * self.dt,
                RequestBatch(
                    counts=np.asarray(self.counts[s], dtype=int),
                    timeliness=groups,
                ),
            )


def concat_chunks(chunks: Sequence[RequestChunk]) -> RequestChunk:
    """Fuse consecutive chunks of one EDP into a single block."""
    if not chunks:
        raise ValueError("no chunks to concatenate")
    edp = chunks[0].edp
    expected = chunks[0].start_slot
    for chunk in chunks:
        if chunk.edp != edp:
            raise ValueError("chunks belong to different EDPs")
        if chunk.start_slot != expected:
            raise ValueError(
                f"chunks are not consecutive: expected start slot "
                f"{expected}, got {chunk.start_slot}"
            )
        expected += chunk.n_slots
    return RequestChunk(
        edp=edp,
        start_slot=chunks[0].start_slot,
        dt=chunks[0].dt,
        counts=np.concatenate([c.counts for c in chunks], axis=0),
        timeliness=np.concatenate([c.timeliness for c in chunks]),
    )


@dataclass(frozen=True, kw_only=True)
class RequestStream(abc.ABC):
    """A picklable, chunk-addressable recipe for every EDP's requests.

    Subclasses fix the demand shape by implementing
    :meth:`base_weights` (static per-content demand weights) and
    optionally overriding :meth:`rate_multiplier` /
    :meth:`weights_at` for time-varying workloads.

    Attributes
    ----------
    n_edps, n_slots, dt:
        Population size and trace geometry (horizon ``n_slots * dt``).
    rate_per_edp:
        Expected requests one EDP receives per unit time (before any
        per-slot rate multiplier).
    seed:
        Root entropy; every ``(EDP, slot)`` RNG derives from it by
        ``spawn_key``, never by sequential state.
    timeliness:
        Law of the per-request Def. 2 requirements.
    warmup_slots:
        Slots of the icarus-style warmup phase: replay engines serve
        them normally (caches warm up) but exclude them from every
        reported counter.  The measured phase is
        ``[warmup_slots, n_slots)``.
    """

    n_edps: int
    n_slots: int
    dt: float
    rate_per_edp: float
    seed: int = 0
    timeliness: TimelinessModel = field(default_factory=TimelinessModel)
    warmup_slots: int = 0

    def __post_init__(self) -> None:
        if self.n_edps < 1:
            raise ValueError(f"need at least one EDP, got {self.n_edps}")
        if self.n_slots < 1:
            raise ValueError(f"n_slots must be positive, got {self.n_slots}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.rate_per_edp < 0:
            raise ValueError(
                f"rate_per_edp must be non-negative, got {self.rate_per_edp}"
            )
        if not 0 <= self.warmup_slots < self.n_slots:
            raise ValueError(
                f"warmup_slots must lie in [0, n_slots), got "
                f"{self.warmup_slots} of {self.n_slots}"
            )

    # ------------------------------------------------------------------
    # Demand shape (subclass API)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def base_weights(self) -> np.ndarray:
        """Static per-content demand weights (positive, unnormalised)."""

    def weights_at(self, slot: int) -> np.ndarray:
        """Demand weights in force during ``slot`` (default: static)."""
        del slot
        return self.base_weights()

    def rate_multiplier(self, slot: int) -> float:
        """Per-slot scaling of ``rate_per_edp`` (default: constant 1)."""
        del slot
        return 1.0

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def n_contents(self) -> int:
        return int(len(self.base_weights()))

    @property
    def popularity(self) -> Tuple[float, ...]:
        """The normalised static demand profile (what policies see)."""
        w = np.asarray(self.base_weights(), dtype=float)
        return tuple(w / w.sum())

    @property
    def horizon(self) -> float:
        return self.n_slots * self.dt

    @property
    def measured_slots(self) -> int:
        return self.n_slots - self.warmup_slots

    def slot_times(self) -> np.ndarray:
        """Midpoint time of every slot."""
        return (np.arange(self.n_slots) + 0.5) * self.dt

    def intensities(self, slot: int) -> np.ndarray:
        """Per-content Poisson intensities for one slot."""
        w = np.asarray(self.weights_at(slot), dtype=float)
        total = w.sum()
        if total <= 0:
            raise ValueError(f"slot {slot} demand weights have no mass")
        return (
            self.rate_per_edp * self.rate_multiplier(slot) * self.dt * w / total
        )

    def expected_total_requests(self) -> float:
        """Mean request volume of a full replay (all EDPs, all slots)."""
        per_edp = sum(
            self.rate_per_edp * self.rate_multiplier(s) * self.dt
            for s in range(self.n_slots)
        )
        return per_edp * self.n_edps

    # ------------------------------------------------------------------
    # RNG keying
    # ------------------------------------------------------------------
    def _rng(self, edp: int, slot: int, domain: int) -> np.random.Generator:
        if not 0 <= edp < self.n_edps:
            raise IndexError(f"EDP index {edp} out of range [0, {self.n_edps})")
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.n_slots})")
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(edp, slot, domain))
        )

    def request_rng(self, edp: int, slot: int) -> np.random.Generator:
        """The generator behind cell ``(edp, slot)``'s request draws."""
        return self._rng(edp, slot, _REQUEST_DOMAIN)

    def policy_rng(self, edp: int, slot: int) -> np.random.Generator:
        """The generator serving policies draw from during ``slot``.

        Per-slot (not per-EDP-sequential) on purpose: policy draws
        never cross slot boundaries, so replay chunking cannot shift
        them and chunk-granular resume needs no RNG state.
        """
        return self._rng(edp, slot, _POLICY_DOMAIN)

    # ------------------------------------------------------------------
    # Chunked generation
    # ------------------------------------------------------------------
    def n_chunks(self, chunk_slots: int) -> int:
        if chunk_slots < 1:
            raise ValueError(f"chunk_slots must be positive, got {chunk_slots}")
        return -(-self.n_slots // chunk_slots)

    def sample_slot(self, edp: int, slot: int) -> Tuple[np.ndarray, np.ndarray]:
        """One slot's ``(counts, flat timeliness)`` for one EDP.

        One vectorised Poisson draw over the catalog, then one
        vectorised timeliness draw over the slot's whole request batch
        (iid, so a single sliced draw equals per-content draws in law);
        the flat array groups cell ``(slot, k)``'s requests
        contiguously in content order.
        """
        rng = self.request_rng(edp, slot)
        counts = rng.poisson(self.intensities(slot)).astype(np.int64)
        total = int(counts.sum())
        return counts, self.timeliness.sample(total, rng)

    def chunk(self, edp: int, index: int, chunk_slots: int) -> RequestChunk:
        """Regenerate chunk ``index`` of EDP ``edp`` in isolation.

        Chunk ``index`` covers slots ``[index * chunk_slots,
        min((index + 1) * chunk_slots, n_slots))``.  Because every slot
        owns its RNG, this needs nothing but the recipe — no prior
        chunks, no generator state.
        """
        n_chunks = self.n_chunks(chunk_slots)
        if not 0 <= index < n_chunks:
            raise IndexError(f"chunk {index} out of range [0, {n_chunks})")
        start = index * chunk_slots
        stop = min(start + chunk_slots, self.n_slots)
        rows: List[np.ndarray] = []
        draws: List[np.ndarray] = []
        for slot in range(start, stop):
            counts, tl = self.sample_slot(edp, slot)
            rows.append(counts)
            draws.append(tl)
        return RequestChunk(
            edp=edp,
            start_slot=start,
            dt=self.dt,
            counts=np.stack(rows, axis=0),
            timeliness=(
                np.concatenate(draws) if draws else np.empty(0, dtype=float)
            ),
        )

    def iter_chunks(
        self, edp: int, chunk_slots: int, start_chunk: int = 0
    ) -> Iterator[RequestChunk]:
        """The EDP's trace as consecutive fixed-size chunks.

        ``start_chunk`` fast-forwards without generating the skipped
        chunks — the entry point for chunk-granular resume.
        """
        for index in range(start_chunk, self.n_chunks(chunk_slots)):
            yield self.chunk(edp, index, chunk_slots)

    def materialize(self, edp: int) -> RequestChunk:
        """The EDP's whole trace as one block (the equivalence oracle).

        Bit-identical to concatenating :meth:`iter_chunks` at any
        chunk size — the property suite holds this contract.
        """
        return self.chunk(edp, 0, self.n_slots)


@dataclass(frozen=True, kw_only=True)
class FixedPopularityStream(RequestStream):
    """A stream with an explicit static demand-share vector."""

    shares: Tuple[float, ...]

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.shares:
            raise ValueError("shares must name at least one content")
        if any(s < 0 for s in self.shares) or sum(self.shares) <= 0:
            raise ValueError("shares must be non-negative with positive mass")

    def base_weights(self) -> np.ndarray:
        return np.asarray(self.shares, dtype=float)


def _zipf_weights(n_contents: int, alpha: float) -> np.ndarray:
    if n_contents < 1:
        raise ValueError(f"catalog must hold at least one content, got {n_contents}")
    if alpha <= 0:
        raise ValueError(f"Zipf exponent must be positive, got {alpha}")
    ranks = np.arange(1, n_contents + 1, dtype=float)
    return ranks ** (-float(alpha))


@dataclass(frozen=True, kw_only=True)
class ZipfStream(RequestStream):
    """Static ``rank^-alpha`` demand; rank 1 is content 0."""

    n_catalog: int
    alpha: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _zipf_weights(self.n_catalog, self.alpha)  # validates

    def base_weights(self) -> np.ndarray:
        return _zipf_weights(self.n_catalog, self.alpha)


@dataclass(frozen=True, kw_only=True)
class ShuffledZipfStream(RequestStream):
    """Zipf demand under a seed-deterministic rank permutation.

    The permutation derives from ``SeedSequence(seed,
    spawn_key=(PERM,))`` — a pure function of the stream seed,
    independent of every request draw, so two streams with equal seeds
    shuffle identically and replays stay chunk-reconstructible.
    """

    n_catalog: int
    alpha: float = 1.0

    _PERM_DOMAIN = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        _zipf_weights(self.n_catalog, self.alpha)  # validates

    def permutation(self) -> np.ndarray:
        """content index -> rank position (deterministic per seed)."""
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(self._PERM_DOMAIN,))
        )
        return rng.permutation(self.n_catalog)

    def base_weights(self) -> np.ndarray:
        return _zipf_weights(self.n_catalog, self.alpha)[self.permutation()]


@dataclass(frozen=True, kw_only=True)
class DiurnalStream(RequestStream):
    """Zipf demand whose arrival rate cycles through diurnal phases.

    A period of ``period_slots`` slots is split into
    ``len(phase_multipliers)`` equal phases; during phase ``p`` the
    arrival rate is ``rate_per_edp * phase_multipliers[p]``.  Slot
    ``s`` belongs to phase ``(s % period_slots) * n_phases //
    period_slots`` — boundaries land exactly on slot indices
    ``period_slots * p / n_phases`` (integer division), which the unit
    suite pins.
    """

    n_catalog: int
    alpha: float = 1.0
    period_slots: int = 24
    phase_multipliers: Tuple[float, ...] = (0.25, 1.0, 1.75, 1.0)

    def __post_init__(self) -> None:
        super().__post_init__()
        _zipf_weights(self.n_catalog, self.alpha)  # validates
        if self.period_slots < 1:
            raise ValueError(
                f"period_slots must be positive, got {self.period_slots}"
            )
        if not self.phase_multipliers:
            raise ValueError("need at least one phase multiplier")
        if len(self.phase_multipliers) > self.period_slots:
            raise ValueError(
                f"{len(self.phase_multipliers)} phases cannot split "
                f"{self.period_slots} slots"
            )
        if any(m < 0 for m in self.phase_multipliers):
            raise ValueError("phase multipliers must be non-negative")

    def base_weights(self) -> np.ndarray:
        return _zipf_weights(self.n_catalog, self.alpha)

    def phase_of(self, slot: int) -> int:
        """The diurnal phase slot ``slot`` falls in."""
        n_phases = len(self.phase_multipliers)
        return ((slot % self.period_slots) * n_phases) // self.period_slots

    def rate_multiplier(self, slot: int) -> float:
        return float(self.phase_multipliers[self.phase_of(slot)])


@dataclass(frozen=True, kw_only=True)
class FlashCrowdStream(RequestStream):
    """Zipf demand with a flash-crowd spike on one content.

    During the spike window ``[spike_slot, spike_slot +
    spike_duration)`` the spiking content's demand weight is multiplied
    by ``spike_factor`` (shares renormalise, so other contents dilute)
    and the overall arrival rate by ``rate_boost`` — the breaking-news
    shape the paper's popularity update (Eq. 3) models across epochs,
    here at request granularity.
    """

    n_catalog: int
    alpha: float = 1.0
    spike_content: int = 0
    spike_slot: int = 0
    spike_duration: int = 1
    spike_factor: float = 8.0
    rate_boost: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _zipf_weights(self.n_catalog, self.alpha)  # validates
        if not 0 <= self.spike_content < self.n_catalog:
            raise ValueError(
                f"spike_content {self.spike_content} outside catalog "
                f"[0, {self.n_catalog})"
            )
        if not 0 <= self.spike_slot < self.n_slots:
            raise ValueError(
                f"spike_slot {self.spike_slot} outside [0, {self.n_slots})"
            )
        if self.spike_duration < 1:
            raise ValueError(
                f"spike_duration must be positive, got {self.spike_duration}"
            )
        if self.spike_factor < 1.0 or self.rate_boost <= 0:
            raise ValueError(
                "spike_factor must be >= 1 and rate_boost positive"
            )

    def base_weights(self) -> np.ndarray:
        return _zipf_weights(self.n_catalog, self.alpha)

    def in_spike(self, slot: int) -> bool:
        return self.spike_slot <= slot < self.spike_slot + self.spike_duration

    def weights_at(self, slot: int) -> np.ndarray:
        weights = self.base_weights()
        if self.in_spike(slot):
            weights = weights.copy()
            weights[self.spike_content] *= self.spike_factor
        return weights

    def rate_multiplier(self, slot: int) -> float:
        return float(self.rate_boost) if self.in_spike(slot) else 1.0


@dataclass(frozen=True, kw_only=True)
class TraceStream(FixedPopularityStream):
    """Demand share streamed from a trace file.

    ``shares`` comes from :func:`repro.content.trace.trace_to_popularity`
    over the loaded records; malformed data rows are skipped and
    counted exactly as :func:`load_trace_csv` does (the counts ride
    along for observability).
    """

    labels: Tuple[str, ...] = ()
    skipped_rows: int = 0
    skipped_receivers: int = 0

    @classmethod
    def from_csv(
        cls,
        path: Union[str, Path],
        *,
        n_contents: Optional[int] = None,
        **stream_kwargs,
    ) -> "TraceStream":
        """Build the stream from a trending-trace CSV.

        Loads with :func:`load_trace_csv` (malformed rows skipped, not
        fatal), aggregates demand with :func:`trace_to_popularity`, and
        carries the skip counts on the stream.
        """
        result = load_trace_csv(Path(path))
        labels, shares = trace_to_popularity(result, n_contents=n_contents)
        return cls(
            shares=tuple(float(s) for s in shares),
            labels=tuple(labels),
            skipped_rows=result.skipped_rows,
            skipped_receivers=result.skipped_receivers,
            **stream_kwargs,
        )


def stream_workload(
    stream: RequestStream,
    *,
    content_size_mb: float = 50.0,
    update_period: float = 1.0,
    names: Optional[Sequence[str]] = None,
) -> Workload:
    """A :class:`~repro.content.workloads.Workload` wrapping a stream.

    Serving engines still take catalog geometry (sizes, update
    periods) from a workload; this builds the matching one — uniform
    sizes, the stream's own demand profile and timeliness law — so a
    streaming replay needs exactly one extra object.
    """
    if names is None and isinstance(stream, TraceStream) and stream.labels:
        names = stream.labels
    if names is None:
        names = [f"content-{k}" for k in range(stream.n_contents)]
    if len(names) != stream.n_contents:
        raise ValueError(
            f"got {len(names)} names for {stream.n_contents} contents"
        )
    catalog = ContentCatalog(
        contents=[
            Content(
                content_id=k,
                size_mb=float(content_size_mb),
                name=str(names[k]),
                update_period=float(update_period),
            )
            for k in range(stream.n_contents)
        ]
    )
    return Workload(
        name=f"stream-{type(stream).__name__.lower()}",
        catalog=catalog,
        popularity=np.asarray(stream.popularity, dtype=float),
        timeliness_model=stream.timeliness,
        requests=RequestProcess(
            n_contents=stream.n_contents,
            rate_per_edp=stream.rate_per_edp,
            timeliness_model=stream.timeliness,
        ),
    )


def make_stream(
    kind: str,
    *,
    n_edps: int,
    n_slots: int,
    dt: float,
    rate_per_edp: float,
    seed: int = 0,
    n_contents: int = 12,
    alpha: float = 1.0,
    warmup_slots: int = 0,
    timeliness: Optional[TimelinessModel] = None,
    trace_path: Optional[Union[str, Path]] = None,
    spike_content: int = 0,
    spike_slot: Optional[int] = None,
    spike_factor: float = 8.0,
    shares: Optional[Sequence[float]] = None,
) -> RequestStream:
    """Build a workload generator from its CLI name.

    ``"trace"`` requires ``trace_path``; ``"fixed"`` (not listed in
    :data:`STREAM_WORKLOADS` — it is the programmatic bridge for canned
    scenario workloads) requires ``shares``.
    """
    key = str(kind).strip().lower()
    common = dict(
        n_edps=int(n_edps),
        n_slots=int(n_slots),
        dt=float(dt),
        rate_per_edp=float(rate_per_edp),
        seed=int(seed),
        warmup_slots=int(warmup_slots),
    )
    if timeliness is not None:
        common["timeliness"] = timeliness
    if key == "zipf":
        return ZipfStream(n_catalog=n_contents, alpha=alpha, **common)
    if key in ("shuffled-zipf", "shuffled"):
        return ShuffledZipfStream(n_catalog=n_contents, alpha=alpha, **common)
    if key == "diurnal":
        return DiurnalStream(n_catalog=n_contents, alpha=alpha, **common)
    if key in ("flash-crowd", "flash"):
        return FlashCrowdStream(
            n_catalog=n_contents,
            alpha=alpha,
            spike_content=int(spike_content),
            spike_slot=(
                int(spike_slot) if spike_slot is not None else int(n_slots) // 4
            ),
            spike_factor=float(spike_factor),
            **common,
        )
    if key == "trace":
        if trace_path is None:
            raise ValueError("the 'trace' workload needs a trace file path")
        return TraceStream.from_csv(
            trace_path, n_contents=n_contents, **common
        )
    if key == "fixed":
        if shares is None:
            raise ValueError("the 'fixed' workload needs explicit shares")
        return FixedPopularityStream(
            shares=tuple(float(s) for s in shares), **common
        )
    raise ValueError(
        f"unknown streaming workload {kind!r}; expected one of "
        f"{STREAM_WORKLOADS}"
    )
