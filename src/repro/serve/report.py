"""Serving outcome containers and CSV/JSON export.

:class:`EDPServingStats` accumulates one EDP's request-level counters;
:class:`ServingReport` aggregates a whole replay and derives the
headline serving metrics — hit ratio, staleness-violation rate, mean
retrieval latency, backhaul volume, trading revenue and the net income
once backhaul cost (Eq. (9)'s ``eta2`` rate) is charged against it.

Reports are plain data, ordered per EDP, and independent of the
execution backend, so the JSON/CSV artifacts written by
:func:`export_serving_reports` (built on the
:mod:`repro.analysis.export` primitives) are bit-identical across
``serial`` and ``process:N`` replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.export import write_json, write_rows_csv

REPORT_HEADERS = (
    "policy", "requests", "hit_ratio", "staleness_violation_rate",
    "backhaul_mb", "mean_latency_s", "revenue", "net_income",
)


@dataclass
class EDPServingStats:
    """Request-level counters for one EDP over one replay."""

    edp: int
    requests: int = 0
    hits: int = 0
    staleness_violations: int = 0
    refreshes: int = 0
    backhaul_mb: float = 0.0
    revenue: float = 0.0
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.edp < 0:
            raise ValueError(f"edp index must be non-negative, got {self.edp}")

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.latency_s / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class ServingReport:
    """Aggregate serving outcome of one policy's replay.

    Attributes
    ----------
    policy:
        The serving policy's name.
    n_slots, dt, seed:
        Replay shape (the EDP count is ``len(per_edp)``).
    eta2, backhaul_rate:
        Backhaul cost constants used to derive ``net_income``.
    per_edp:
        Per-EDP counters in EDP order.
    """

    policy: str
    n_slots: int
    dt: float
    seed: int
    eta2: float
    backhaul_rate: float
    per_edp: Tuple[EDPServingStats, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.backhaul_rate <= 0:
            raise ValueError(
                f"backhaul_rate must be positive, got {self.backhaul_rate}"
            )
        for i, stats in enumerate(self.per_edp):
            if stats.edp != i:
                raise ValueError(
                    f"per-EDP stats must be in EDP order; position {i} holds "
                    f"EDP {stats.edp}"
                )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def n_edps(self) -> int:
        return len(self.per_edp)

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self.per_edp)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.per_edp)

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def staleness_violations(self) -> int:
        return sum(s.staleness_violations for s in self.per_edp)

    @property
    def staleness_violation_rate(self) -> float:
        return self.staleness_violations / self.requests if self.requests else 0.0

    @property
    def refreshes(self) -> int:
        return sum(s.refreshes for s in self.per_edp)

    @property
    def backhaul_mb(self) -> float:
        return sum(s.backhaul_mb for s in self.per_edp)

    @property
    def revenue(self) -> float:
        return sum(s.revenue for s in self.per_edp)

    @property
    def backhaul_cost(self) -> float:
        """Backhaul charge ``eta2 * bytes / H_c`` (the Eq. (9) rate)."""
        return self.eta2 * self.backhaul_mb / self.backhaul_rate

    @property
    def net_income(self) -> float:
        """Trading revenue net of backhaul cost."""
        return self.revenue - self.backhaul_cost

    @property
    def mean_latency_s(self) -> float:
        total = sum(s.latency_s for s in self.per_edp)
        return total / self.requests if self.requests else 0.0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Union[str, int, float]]:
        """The aggregate metrics as one JSON-friendly record."""
        return {
            "policy": self.policy,
            "n_edps": self.n_edps,
            "n_slots": self.n_slots,
            "dt": self.dt,
            "seed": self.seed,
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "staleness_violations": self.staleness_violations,
            "staleness_violation_rate": self.staleness_violation_rate,
            "refreshes": self.refreshes,
            "backhaul_mb": self.backhaul_mb,
            "backhaul_cost": self.backhaul_cost,
            "revenue": self.revenue,
            "net_income": self.net_income,
            "mean_latency_s": self.mean_latency_s,
        }

    def to_row(self) -> Tuple[Union[str, int, float], ...]:
        """One comparison-table row (matches :data:`REPORT_HEADERS`)."""
        return (
            self.policy, self.requests, self.hit_ratio,
            self.staleness_violation_rate, self.backhaul_mb,
            self.mean_latency_s, self.revenue, self.net_income,
        )

    def per_edp_rows(self) -> List[Tuple[Union[int, float], ...]]:
        """Per-EDP breakdown rows for CSV export."""
        return [
            (
                s.edp, s.requests, s.hits, s.hit_ratio,
                s.staleness_violations, s.refreshes, s.backhaul_mb,
                s.revenue, s.mean_latency_s,
            )
            for s in self.per_edp
        ]


def comparison_rows(
    reports: Sequence[ServingReport],
) -> List[Tuple[Union[str, int, float], ...]]:
    """Comparison-table rows, best hit ratio first."""
    return [r.to_row() for r in sorted(reports, key=lambda r: -r.hit_ratio)]


def export_serving_reports(
    reports: Sequence[ServingReport], directory: Union[str, Path]
) -> List[Path]:
    """Dump replay outcomes to a directory of CSV/JSON artifacts.

    Produces ``serving_comparison.csv`` (one row per policy, the
    acceptance table), ``serving_summary.json`` (full aggregates per
    policy), and one ``per_edp_<policy>.csv`` breakdown per report.
    Returns the files written.
    """
    if not reports:
        raise ValueError("no serving reports to export")
    directory = Path(directory)
    written: List[Path] = []
    written.append(
        write_rows_csv(
            directory / "serving_comparison.csv",
            list(REPORT_HEADERS),
            comparison_rows(reports),
        )
    )
    written.append(
        write_json(
            directory / "serving_summary.json",
            {report.policy: report.summary() for report in reports},
        )
    )
    for report in reports:
        slug = report.policy.replace("/", "-").replace(" ", "-")
        written.append(
            write_rows_csv(
                directory / f"per_edp_{slug}.csv",
                ["edp", "requests", "hits", "hit_ratio",
                 "staleness_violations", "refreshes", "backhaul_mb",
                 "revenue", "mean_latency_s"],
                report.per_edp_rows(),
            )
        )
    return written
