"""Edge cache mechanics: capacity accounting, lookup, eviction.

An :class:`EdgeCache` models one EDP's content store at whole-content
granularity (the classical simulator abstraction; cf. the icarus line
of cache simulators).  The cache knows *mechanics* only — what is
stored, how full it is, when each copy was fetched and last used.
*Decisions* (admit? evict whom? refresh when?) belong to the policies
in :mod:`repro.serve.policies`; the split keeps every policy honest
against identical bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class CacheEntry:
    """One cached content copy.

    Attributes
    ----------
    content:
        Catalog index ``k``.
    size_mb:
        Bytes held (whole-content granularity).
    fetched_at:
        Time of the last backhaul fetch/refresh; the copy's age at a
        serve is ``t - fetched_at`` and drives staleness accounting.
    last_used:
        Last serve time (LRU's signal).
    hits:
        Serves from this copy since admission (LFU's signal).
    """

    content: int
    size_mb: float
    fetched_at: float
    last_used: float
    hits: int = 0

    def age(self, t: float) -> float:
        """Seconds since the copy was last fetched."""
        return max(0.0, t - self.fetched_at)


@dataclass
class EdgeCache:
    """One EDP's content store with strict capacity accounting.

    Attributes
    ----------
    capacity_mb:
        Total edge storage in MB.
    entries:
        Cached copies by content index, in admission order (python
        dicts preserve insertion order, which policies exploit for
        deterministic tie-breaking).
    """

    capacity_mb: float
    entries: Dict[int, CacheEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {self.capacity_mb}")

    @property
    def used_mb(self) -> float:
        """Bytes currently held."""
        return sum(entry.size_mb for entry in self.entries.values())

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, content: int) -> bool:
        return content in self.entries

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(self.entries.values())

    def lookup(self, content: int) -> Optional[CacheEntry]:
        """The cached copy of ``content``, or ``None`` on a miss."""
        return self.entries.get(content)

    def has_room(self, size_mb: float) -> bool:
        """Whether ``size_mb`` fits without eviction."""
        return size_mb <= self.free_mb + 1e-9

    def fits(self, size_mb: float) -> bool:
        """Whether ``size_mb`` could ever fit (capacity bound)."""
        return size_mb <= self.capacity_mb + 1e-9

    def store(self, content: int, size_mb: float, t: float) -> CacheEntry:
        """Admit a fresh copy; the caller must have made room first."""
        if size_mb <= 0:
            raise ValueError(f"size_mb must be positive, got {size_mb}")
        if content in self.entries:
            raise ValueError(f"content {content} is already cached")
        if not self.has_room(size_mb):
            raise ValueError(
                f"no room for {size_mb} MB (free {self.free_mb:.1f} MB); "
                f"evict first"
            )
        entry = CacheEntry(
            content=content, size_mb=size_mb, fetched_at=t, last_used=t
        )
        self.entries[content] = entry
        return entry

    def evict(self, content: int) -> CacheEntry:
        """Drop a cached copy; returns the evicted entry."""
        entry = self.entries.pop(content, None)
        if entry is None:
            raise KeyError(f"content {content} is not cached")
        return entry
