"""Serving policies: admission, eviction, and refresh decisions.

A :class:`ServingPolicy` answers the three questions the replay engine
asks on the request path:

* ``admit(slot, content, count, cache, rng)`` — cache this missed
  content (requested ``count`` times in the slot)?
* ``victim(slot, cache, rng)`` — which cached content makes room?
* ``refresh_due(slot, content, age)`` — re-fetch a stale cached copy
  before serving?

Classical eviction policies (LRU, LFU, random replacement) and a
static most-popular placement mirror the paper's comparison schemes on
the serving plane.  :class:`MFGPolicyAdapter` closes the loop with the
reproduction: it drives admission probabilities from the solved
equilibrium :class:`~repro.core.policy.CachingPolicy` (caching rate
``x*``), ranks eviction victims by the equilibrium's predicted
population occupancy, and refreshes on a schedule that tightens as the
equilibrium caches more aggressively.

Policies are stateless across EDPs — all mutable serving state lives
in the per-EDP :class:`~repro.serve.cache.EdgeCache` — so one policy
instance serves a whole shard and pickles cleanly to pool workers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.equilibrium import EquilibriumResult
from repro.serve.cache import EdgeCache

POLICY_NAMES = ("mfg", "lru", "lfu", "random", "most-popular")


class ServingPolicy(abc.ABC):
    """Decision strategy consulted by the replay engine."""

    name: str = "policy"

    def warm(self, cache: EdgeCache, t: float = 0.0) -> float:
        """Optional static preload before the replay; returns MB fetched.

        The default cold start loads nothing.  Static placements
        (most-popular) fill the cache here and then refuse admission.
        """
        del cache, t
        return 0.0

    def admit(
        self,
        slot: int,
        content: int,
        count: int,
        cache: EdgeCache,
        rng: np.random.Generator,
    ) -> bool:
        """Whether a missed ``content`` (``count`` requests) should be cached."""
        del slot, content, count, cache, rng
        return True

    @abc.abstractmethod
    def victim(
        self, slot: int, cache: EdgeCache, rng: np.random.Generator
    ) -> int:
        """The cached content to evict when room is needed.

        Only called with a non-empty cache.  Must be deterministic
        given the cache state and the RNG stream.
        """

    def refresh_due(self, slot: int, content: int, age: float) -> bool:
        """Whether a cached copy of this ``age`` should be re-fetched."""
        del slot, content, age
        return False


class LRUPolicy(ServingPolicy):
    """Evict the least-recently-used copy; admit everything."""

    name = "lru"

    def victim(self, slot, cache, rng):
        del slot, rng
        return min(cache, key=lambda e: (e.last_used, e.content)).content


class LFUPolicy(ServingPolicy):
    """Evict the least-frequently-used copy; admit everything."""

    name = "lfu"

    def victim(self, slot, cache, rng):
        del slot, rng
        return min(cache, key=lambda e: (e.hits, e.last_used, e.content)).content


class RandomEvictionPolicy(ServingPolicy):
    """Evict a uniformly random copy (the RR scheme's serving analogue)."""

    name = "random"

    def victim(self, slot, cache, rng):
        del slot
        keys = list(cache.entries)
        return int(keys[int(rng.integers(len(keys)))])


@dataclass
class MostPopularPolicy(ServingPolicy):
    """Static placement of the most popular contents that fit.

    The serving analogue of
    :class:`repro.baselines.most_popular.MostPopularScheme`: the cache
    is filled once, by descending popularity, and never changes — no
    admission on misses, no eviction, no refresh.
    """

    sizes_mb: Sequence[float]
    popularity: Sequence[float]

    name = "most-popular"

    def __post_init__(self) -> None:
        if len(self.sizes_mb) != len(self.popularity):
            raise ValueError(
                f"{len(self.sizes_mb)} sizes for {len(self.popularity)} "
                f"popularity values"
            )

    def placement(self, capacity_mb: float) -> Sequence[int]:
        """Contents preloaded into a cache of the given capacity."""
        order = np.argsort(-np.asarray(self.popularity, dtype=float), kind="stable")
        chosen, used = [], 0.0
        for k in order:
            size = float(self.sizes_mb[int(k)])
            if used + size <= capacity_mb + 1e-9:
                chosen.append(int(k))
                used += size
        return chosen

    def warm(self, cache: EdgeCache, t: float = 0.0) -> float:
        loaded = 0.0
        for k in self.placement(cache.capacity_mb):
            loaded += cache.store(k, float(self.sizes_mb[k]), t).size_mb
        return loaded

    def admit(self, slot, content, count, cache, rng):
        del slot, content, count, cache, rng
        return False

    def victim(self, slot, cache, rng):
        raise RuntimeError("most-popular is a static placement; nothing to evict")


@dataclass
class MFGPolicyAdapter(ServingPolicy):
    """Serve from the solved MFG-CP equilibrium.

    The adapter distils each content's equilibrium into two slot-indexed
    tables:

    * ``rate`` — the representative agent's caching rate
      ``x*(t, h̄, q̄(t))`` read from the solved
      :class:`~repro.core.policy.CachingPolicy` along the mean-field
      trajectory.  A missed *singleton* request is admitted with this
      probability (the equilibrium caching *rate* becomes an admission
      *probability* at request granularity); a missed *burst* of
      ``count > 1`` requests is always admitted, because its
      ``count - 1`` immediate edge hits dominate ``count`` cloud
      serves no matter what the equilibrium's retention preference is.
    * ``score`` — the equilibrium's predicted population occupancy
      ``1 - q̄_k(t) / Q_k``.  Eviction drops the lowest-scored copy, so
      the cache tracks what the equilibrium says the population holds.

    Refresh schedule: a cached copy is re-fetched before serving once
    its age exceeds ``(1 - rate) * update_period`` — the harder the
    equilibrium caches, the fresher it keeps its copies, which is how
    the HJB's staleness cost (Eq. (9), weight ``eta2``) surfaces on the
    serving plane.

    Singleton admission is additionally *score-guarded*: a lone
    request that would force an eviction is only admitted when its
    content's occupancy score beats the weakest cached copy's — the
    equilibrium never displaces a copy it values more than a newcomer
    with no immediate reuse.

    Attributes
    ----------
    rate: ``(n_slots, n_contents)`` admission probabilities in [0, 1].
    score: ``(n_slots, n_contents)`` eviction priorities (higher = keep).
    update_periods: per-content cloud refresh periods (time units).
    sizes_mb: per-content sizes (decides when admission needs room).
    """

    rate: np.ndarray
    score: np.ndarray
    update_periods: Sequence[float]
    sizes_mb: Sequence[float]

    name = "mfg"

    def __post_init__(self) -> None:
        self.rate = np.asarray(self.rate, dtype=float)
        self.score = np.asarray(self.score, dtype=float)
        if self.rate.ndim != 2 or self.rate.shape != self.score.shape:
            raise ValueError(
                f"rate {self.rate.shape} and score {self.score.shape} must be "
                f"matching (n_slots, n_contents) tables"
            )
        if self.rate.shape[1] != len(self.update_periods):
            raise ValueError(
                f"{self.rate.shape[1]} contents in tables, "
                f"{len(self.update_periods)} update periods"
            )
        if self.rate.shape[1] != len(self.sizes_mb):
            raise ValueError(
                f"{self.rate.shape[1]} contents in tables, "
                f"{len(self.sizes_mb)} sizes"
            )
        if np.any(self.rate < -1e-9) or np.any(self.rate > 1.0 + 1e-9):
            raise ValueError("admission rates must lie in [0, 1]")
        self.rate = np.clip(self.rate, 0.0, 1.0)
        # Precomputed refresh-slack table (1 - rate) * update_period:
        # the whole refresh schedule becomes one lookup on the request
        # hot path instead of per-request arithmetic.
        self.refresh_slack = (1.0 - self.rate) * np.asarray(
            self.update_periods, dtype=float
        )[None, :]

    @classmethod
    def from_equilibria(
        cls,
        equilibria: Mapping[int, EquilibriumResult],
        sizes_mb: Sequence[float],
        update_periods: Sequence[float],
        slot_times: Sequence[float],
        horizon: Optional[float] = None,
    ) -> "MFGPolicyAdapter":
        """Distil per-content equilibria into replay tables.

        Parameters
        ----------
        equilibria:
            Solved equilibrium per content index (all contents needed).
        sizes_mb, update_periods:
            Catalog geometry, indexed like the equilibria.
        slot_times:
            Replay slot midpoints.
        horizon:
            Replay horizon; slot times are mapped proportionally onto
            each equilibrium's own epoch ``[0, T]``.  Defaults to the
            last slot's end implied by uniform slots.
        """
        slot_times = np.asarray(slot_times, dtype=float)
        if slot_times.ndim != 1 or slot_times.size < 1:
            raise ValueError("slot_times must be a non-empty vector")
        n_contents = len(sizes_mb)
        if len(update_periods) != n_contents:
            raise ValueError(
                f"{len(update_periods)} update periods for {n_contents} contents"
            )
        missing = [k for k in range(n_contents) if k not in equilibria]
        if missing:
            raise ValueError(
                f"no solved equilibrium for contents {missing}; solve every "
                f"catalog content before building the adapter"
            )
        if horizon is None:
            horizon = float(2.0 * slot_times[-1] - (slot_times[-2] if slot_times.size > 1 else 0.0))
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")

        rate = np.empty((slot_times.size, n_contents))
        score = np.empty_like(rate)
        for k in range(n_contents):
            eq = equilibria[k]
            t_eq = slot_times / horizon * eq.config.horizon
            mean_q = np.interp(t_eq, eq.grid.t, eq.mean_field.mean_q)
            h_mean = float(eq.config.channel.mean)
            rate[:, k] = [
                eq.policy(float(t), h_mean, float(q))
                for t, q in zip(t_eq, mean_q)
            ]
            score[:, k] = 1.0 - mean_q / float(eq.config.content_size)
        return cls(
            rate=rate,
            score=score,
            update_periods=tuple(float(u) for u in update_periods),
            sizes_mb=tuple(float(s) for s in sizes_mb),
        )

    def admit(self, slot, content, count, cache, rng):
        if count > 1:
            # A burst pays for its own admission: count-1 immediate
            # edge hits beat count cloud serves.
            return True
        if not bool(rng.random() < self.rate[slot, content]):
            return False
        if cache.has_room(float(self.sizes_mb[content])):
            return True
        weakest = min(self.score[slot, entry.content] for entry in cache)
        return bool(self.score[slot, content] > weakest)

    def victim(self, slot, cache, rng):
        del rng
        return min(
            cache,
            key=lambda e: (self.score[slot, e.content], e.last_used, e.content),
        ).content

    def refresh_due(self, slot, content, age):
        return age > self.refresh_slack[slot, content]


def make_policy(
    name: str,
    *,
    sizes_mb: Sequence[float],
    popularity: Sequence[float],
    equilibria: Optional[Mapping[int, EquilibriumResult]] = None,
    update_periods: Optional[Sequence[float]] = None,
    slot_times: Optional[Sequence[float]] = None,
    horizon: Optional[float] = None,
) -> ServingPolicy:
    """Build a serving policy from its CLI name.

    ``"mfg"`` additionally requires solved ``equilibria``,
    ``update_periods`` and the replay ``slot_times`` (the engine
    supplies all three).
    """
    key = str(name).strip().lower()
    if key == "lru":
        return LRUPolicy()
    if key == "lfu":
        return LFUPolicy()
    if key in ("random", "rr"):
        return RandomEvictionPolicy()
    if key in ("most-popular", "mpc"):
        return MostPopularPolicy(sizes_mb=tuple(sizes_mb), popularity=tuple(popularity))
    if key == "mfg":
        if equilibria is None or update_periods is None or slot_times is None:
            raise ValueError(
                "the 'mfg' policy needs solved equilibria, update periods, "
                "and replay slot times"
            )
        return MFGPolicyAdapter.from_equilibria(
            equilibria, sizes_mb, update_periods, slot_times, horizon=horizon
        )
    raise ValueError(
        f"unknown serving policy {name!r}; expected one of {POLICY_NAMES}"
    )
