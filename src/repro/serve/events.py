"""Deterministic per-EDP request streams for trace replay.

The serving engine replays a slotted request trace: time is divided
into ``n_slots`` slots of length ``dt``, and in every slot each EDP
observes a :class:`repro.content.requests.RequestBatch` — Poisson
counts per content split by popularity, each request carrying a Def. 2
timeliness requirement.

Determinism is the whole design.  Every EDP owns an independent RNG
stream spawned from one root ``SeedSequence`` (``spawn`` children are
a pure function of the root entropy, so EDP ``i`` draws the *same*
requests no matter how EDPs are grouped into replay shards), and each
EDP's stream is produced and consumed strictly in slot order.  Replays
are therefore bit-identical across the serial backend, any ``process:N``
pool, and any shard count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.content.requests import RequestBatch, RequestProcess
from repro.content.timeliness import TimelinessModel
from repro.runtime import partition_indices


def edp_seed_sequences(seed: int, n_edps: int) -> List[np.random.SeedSequence]:
    """One child seed per EDP, independent of any sharding.

    ``SeedSequence(seed).spawn(n)`` regenerates identical children on
    every call, so a shard holding EDPs ``{3, 7}`` derives exactly the
    streams a serial replay would have used for those EDPs.
    """
    if n_edps < 1:
        raise ValueError(f"need at least one EDP, got {n_edps}")
    return list(np.random.SeedSequence(int(seed)).spawn(n_edps))


@dataclass(frozen=True)
class SlotEvent:
    """One (slot, EDP) observation of the request trace.

    Attributes
    ----------
    slot:
        Slot index in ``[0, n_slots)``.
    t:
        Slot midpoint time (requests in a slot share its midpoint).
    batch:
        The sampled requests: per-content counts plus the timeliness
        requirement attached to every request.
    """

    slot: int
    t: float
    batch: RequestBatch


@dataclass(frozen=True)
class RequestTraceSource:
    """A picklable recipe for every EDP's request stream.

    Workers rebuild per-EDP streams from this plain-data recipe, so the
    object crosses process boundaries without dragging live generators
    along.  ``stream(edp)`` must be consumed in slot order; policy
    decisions draw from the separate policy member of
    :meth:`rng_pair_for`, so the request trace itself is identical
    under every policy and every backend.

    Attributes
    ----------
    popularity:
        Per-content demand share (tuple so the dataclass stays frozen
        and hashable enough to pickle cheaply).
    rate_per_edp:
        Expected requests one EDP receives per unit time.
    timeliness:
        Law of the per-request timeliness requirements.
    n_slots, dt:
        Slot count and length; the replay horizon is ``n_slots * dt``.
    seed:
        Root entropy for :func:`edp_seed_sequences`.
    n_edps:
        Population size (fixes the spawn fan-out).
    """

    popularity: Tuple[float, ...]
    rate_per_edp: float
    timeliness: TimelinessModel
    n_slots: int
    dt: float
    seed: int
    n_edps: int

    def __post_init__(self) -> None:
        if not self.popularity:
            raise ValueError("popularity must name at least one content")
        if self.rate_per_edp < 0:
            raise ValueError(
                f"rate_per_edp must be non-negative, got {self.rate_per_edp}"
            )
        if self.n_slots < 1:
            raise ValueError(f"n_slots must be positive, got {self.n_slots}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.n_edps < 1:
            raise ValueError(f"need at least one EDP, got {self.n_edps}")

    @property
    def n_contents(self) -> int:
        return len(self.popularity)

    @property
    def horizon(self) -> float:
        """Replay horizon ``n_slots * dt``."""
        return self.n_slots * self.dt

    def slot_times(self) -> np.ndarray:
        """Midpoint time of every slot."""
        return (np.arange(self.n_slots) + 0.5) * self.dt

    def rng_pair_for(
        self, edp: int
    ) -> Tuple[np.random.Generator, np.random.Generator]:
        """The EDP's (request, policy) generator pair.

        Requests and policy decisions draw from *separate* streams so
        the request trace is identical under every policy — comparison
        tables then measure policy quality on the same requests, not
        on diverged sample paths.  Both streams descend from the EDP's
        own child seed, so the shard-independence argument carries.
        """
        if not 0 <= edp < self.n_edps:
            raise IndexError(f"EDP index {edp} out of range [0, {self.n_edps})")
        request_seed, policy_seed = edp_seed_sequences(
            self.seed, self.n_edps
        )[edp].spawn(2)
        return (
            np.random.default_rng(request_seed),
            np.random.default_rng(policy_seed),
        )

    def rng_for(self, edp: int) -> np.random.Generator:
        """The EDP's request-stream generator."""
        return self.rng_pair_for(edp)[0]

    def process_for(self, edp: int, rng: np.random.Generator = None) -> RequestProcess:
        """The EDP's arrival process bound to its own stream."""
        return RequestProcess(
            n_contents=self.n_contents,
            rate_per_edp=self.rate_per_edp,
            timeliness_model=self.timeliness,
            rng=rng if rng is not None else self.rng_for(edp),
        )

    def stream(
        self, edp: int, rng: np.random.Generator = None
    ) -> Iterator[SlotEvent]:
        """The EDP's slot-ordered request trace.

        Pass the EDP's generator explicitly when policy decisions share
        it (the engine does); otherwise a fresh one is derived.
        """
        process = self.process_for(edp, rng)
        popularity = np.asarray(self.popularity, dtype=float)
        for slot in range(self.n_slots):
            yield SlotEvent(
                slot=slot,
                t=(slot + 0.5) * self.dt,
                batch=process.sample(popularity, self.dt),
            )

    def expected_total_requests(self) -> float:
        """Mean request volume of a full replay (all EDPs, all slots)."""
        return self.rate_per_edp * self.horizon * self.n_edps


def partition_edps(n_edps: int, n_shards: int) -> List[Tuple[int, ...]]:
    """Contiguous, near-even EDP groups for sharded replay.

    The shard *grouping* never affects results (each EDP's stream is
    self-contained); it only sets the parallel grain.  Shard counts
    beyond ``n_edps`` collapse to one EDP per shard, and zero EDPs
    yield zero shards (the engine itself still requires a non-empty
    population).  Delegates to the runtime's generic
    :func:`repro.runtime.partition_indices`.
    """
    if n_edps < 0:
        raise ValueError(f"EDP count cannot be negative, got {n_edps}")
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    return partition_indices(n_edps, n_shards)
