"""The request-level serving engine: sharded trace replay.

:class:`ServingEngine` replays a slotted request trace (from any
:mod:`repro.content.workloads` scenario) against a population of EDP
edge caches under a pluggable :class:`~repro.serve.policies.ServingPolicy`,
and reports the serving outcomes the paper's evaluation never measures
directly: hit ratio, staleness-violation rate, mean retrieval latency,
backhaul volume, and per-request trading revenue.

Execution shape
---------------
Replay is embarrassingly parallel per EDP: every EDP owns its request
stream (an RNG child spawned from the root seed), its cache, and its
counters.  The engine groups EDPs into shards and submits one
:class:`~repro.runtime.ExecutionPlan` work item per shard, so the
PR-2 runtime contract carries over verbatim — results and merged
telemetry are bit-identical across ``serial`` and any ``process:N``
backend, and across shard counts.

Serving semantics (documented in ``docs/serving.md``)
-----------------------------------------------------
* A request for a cached content is a **hit**: served at the edge
  wireless rate; the copy's age is checked against the request's
  timeliness tolerance ``(L_max - L) / L_max * update_period`` and a
  **staleness violation** is counted when the copy is older.
* A request for an uncached content is a **miss**: served from the
  cloud over the backhaul (fresh, slower, backhaul bytes counted).
  The policy then decides once per missed batch whether to admit the
  content, evicting victims of its choice until the copy fits.
* Every served request earns the slot's trading price times the
  content size (Eq. (6) with the mean-field price path when an
  equilibrium is available, the flat ``p_hat`` otherwise); backhaul
  cost ``eta2 / H_c`` per byte is charged against it in the report.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.content.workloads import Workload
from repro.core.best_response import BatchedBestResponseIterator, BestResponseIterator
from repro.core.equilibrium import EquilibriumResult
from repro.core.parameters import MFGCPConfig
from repro.obs.telemetry import NULL_TELEMETRY, SolverTelemetry
from repro.runtime import ExecutionPlan, ExecutorLike, as_executor, partition_batches
from repro.runtime.checkpoint import atomic_write_bytes
from repro.serve.cache import EdgeCache
from repro.serve.events import RequestTraceSource, partition_edps
from repro.serve.policies import ServingPolicy, make_policy
from repro.serve.report import EDPServingStats, ServingReport
from repro.serve.stream import RequestStream
from repro.testing.faults import active_fault_plan


@dataclass(frozen=True)
class ReplaySpec:
    """Everything one shard needs to replay its EDPs (picklable).

    Attributes
    ----------
    source:
        The request-trace recipe (per-EDP RNG streams included).
    sizes_mb, update_periods:
        Catalog geometry per content.
    capacity_mb:
        Per-EDP edge storage.
    l_max:
        Upper bound of the timeliness requirement range (fixes the
        staleness tolerance map).
    hit_latency_s, miss_latency_s:
        Per-content retrieval latencies: edge wireless serve vs
        cloud-then-edge serve (from :class:`repro.network.rate.RateModel`
        and the backhaul rate ``H_c``).
    price:
        Trading price per slot and content, shape
        ``(n_slots, n_contents)``.
    eta2, backhaul_rate:
        Backhaul cost constants carried into the report.
    stream:
        Optional :class:`~repro.serve.stream.RequestStream`.  When set,
        shards replay in bounded-memory chunks through
        :func:`_replay_edp_stream` (the streamed determinism domain)
        instead of materialising per-EDP traces from ``source``.
    chunk_slots:
        Replay chunk size in slots (streamed mode); ``0`` replays the
        whole trace as one chunk.  Pure memory/progress grain — results
        are bit-identical across every value.
    stream_state_root:
        Optional directory for chunk-granular resume state (one small
        file per (policy, EDP)); ``None`` disables mid-item resume.
    """

    source: RequestTraceSource
    sizes_mb: Tuple[float, ...]
    update_periods: Tuple[float, ...]
    capacity_mb: float
    l_max: float
    hit_latency_s: Tuple[float, ...]
    miss_latency_s: Tuple[float, ...]
    price: np.ndarray
    eta2: float
    backhaul_rate: float
    stream: Optional[RequestStream] = None
    chunk_slots: int = 0
    stream_state_root: Optional[str] = None

    def __post_init__(self) -> None:
        k = self.source.n_contents
        for name in ("sizes_mb", "update_periods", "hit_latency_s", "miss_latency_s"):
            if len(getattr(self, name)) != k:
                raise ValueError(
                    f"{name} has {len(getattr(self, name))} entries for {k} contents"
                )
        price = np.asarray(self.price, dtype=float)
        if price.shape != (self.source.n_slots, k):
            raise ValueError(
                f"price path shape {price.shape} does not match "
                f"({self.source.n_slots}, {k})"
            )
        if self.capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {self.capacity_mb}")
        if self.l_max <= 0:
            raise ValueError(f"l_max must be positive, got {self.l_max}")
        if self.chunk_slots < 0:
            raise ValueError(
                f"chunk_slots must be non-negative, got {self.chunk_slots}"
            )
        if self.stream is not None:
            for field_name, stream_val, source_val in (
                ("n_contents", self.stream.n_contents, k),
                ("n_slots", self.stream.n_slots, self.source.n_slots),
                ("n_edps", self.stream.n_edps, self.source.n_edps),
            ):
                if stream_val != source_val:
                    raise ValueError(
                        f"stream {field_name}={stream_val} does not match "
                        f"the source's {source_val}"
                    )


def _replay_edp(
    spec: ReplaySpec,
    policy: ServingPolicy,
    edp: int,
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> EDPServingStats:
    """Replay one EDP's full request stream against a fresh cache.

    The single place serving semantics live; every backend and shard
    layout funnels through here, which is what makes replays
    bit-identical by construction.
    """
    request_rng, policy_rng = spec.source.rng_pair_for(edp)
    cache = EdgeCache(capacity_mb=spec.capacity_mb)
    stats = EDPServingStats(edp=edp)
    stats.backhaul_mb += policy.warm(cache, 0.0)

    sizes = spec.sizes_mb
    hit_lat = spec.hit_latency_s
    miss_lat = spec.miss_latency_s
    periods = spec.update_periods
    l_max = spec.l_max
    price = spec.price

    for event in spec.source.stream(edp, request_rng):
        s, t, batch = event.slot, event.t, event.batch
        for k in np.nonzero(batch.counts)[0]:
            k = int(k)
            c = int(batch.counts[k])
            stats.requests += c
            stats.revenue += c * price[s, k] * sizes[k]
            entry = cache.lookup(k)
            if entry is None:
                # Miss: served from the cloud, fresh.  One admission
                # decision per missed batch; victims leave until the
                # new copy fits.
                if cache.fits(sizes[k]) and policy.admit(s, k, c, cache, policy_rng):
                    while not cache.has_room(sizes[k]):
                        cache.evict(policy.victim(s, cache, policy_rng))
                    entry = cache.store(k, sizes[k], t)
                    entry.hits += c - 1
                    stats.backhaul_mb += sizes[k]
                    stats.hits += c - 1
                    stats.latency_s += miss_lat[k] + (c - 1) * hit_lat[k]
                else:
                    stats.backhaul_mb += c * sizes[k]
                    stats.latency_s += c * miss_lat[k]
            else:
                # Hit: served at the edge; check freshness first.
                age = t - entry.fetched_at
                if age > 0.0 and policy.refresh_due(s, k, age):
                    stats.backhaul_mb += sizes[k]
                    stats.refreshes += 1
                    entry.fetched_at = t
                    age = 0.0
                if age > 0.0:
                    tolerance = (l_max - batch.timeliness[k]) / l_max * periods[k]
                    stats.staleness_violations += int(
                        np.count_nonzero(age > tolerance)
                    )
                entry.last_used = t
                entry.hits += c
                stats.hits += c
                stats.latency_s += c * hit_lat[k]
    if telemetry.enabled and cache.used_mb > spec.capacity_mb * (1 + 1e-9):
        # Invariant check: admission/eviction must never leave the
        # cache over capacity; an overshoot means a policy bug.
        telemetry.diag(
            "serve.occupancy",
            "error",
            value=float(cache.used_mb),
            threshold=float(spec.capacity_mb),
            message="edge cache occupancy exceeds capacity",
            edp=int(edp),
            policy=policy.name,
        )
    return stats


# ----------------------------------------------------------------------
# Chunk-granular stream state (mid-item checkpoint/resume)
# ----------------------------------------------------------------------

_STREAM_STATE_SCHEMA = 1


def stream_state_key(spec: ReplaySpec, policy: ServingPolicy) -> str:
    """Content-addressed fingerprint of one streamed replay's inputs.

    Everything that changes a replay's outcome is hashed — the stream
    recipe, chunking, catalog geometry, latencies, the price path, and
    the policy itself (its tables included) — so state written by a
    different configuration can never be fast-forwarded over.  The
    state *root path* is deliberately excluded: moving a checkpoint
    directory must not invalidate its contents.
    """
    payload = pickle.dumps(
        (
            _STREAM_STATE_SCHEMA,
            spec.stream,
            int(spec.chunk_slots),
            spec.sizes_mb,
            spec.update_periods,
            float(spec.capacity_mb),
            float(spec.l_max),
            spec.hit_latency_s,
            spec.miss_latency_s,
            np.asarray(spec.price, dtype=float).tobytes(),
            float(spec.eta2),
            float(spec.backhaul_rate),
            policy,
        ),
        protocol=4,
    )
    return hashlib.sha256(payload).hexdigest()


def _stream_state_path(root: str, key: str, edp: int) -> str:
    return os.path.join(root, f"{key[:32]}-edp{int(edp)}.pkl")


def _save_stream_state(
    path: str,
    key: str,
    edp: int,
    next_chunk: int,
    stats: EDPServingStats,
    cache: EdgeCache,
) -> None:
    """Persist one EDP's replay position atomically.

    Cache entries are stored in insertion order (the order an
    :class:`~repro.serve.cache.EdgeCache` iterates), so the rebuilt
    cache is indistinguishable from the live one — LRU/LFU tie-breaks
    and eviction scans see identical state.
    """
    payload = pickle.dumps(
        {
            "schema": _STREAM_STATE_SCHEMA,
            "key": key,
            "edp": int(edp),
            "next_chunk": int(next_chunk),
            "stats": (
                stats.requests,
                stats.hits,
                stats.staleness_violations,
                stats.refreshes,
                stats.backhaul_mb,
                stats.revenue,
                stats.latency_s,
            ),
            "entries": [
                (e.content, e.size_mb, e.fetched_at, e.last_used, e.hits)
                for e in cache
            ],
        },
        protocol=4,
    )
    wrapper = {
        "sha256": hashlib.sha256(payload).hexdigest(),
        "payload": payload,
    }
    atomic_write_bytes(path, pickle.dumps(wrapper, protocol=4))


def _load_stream_state(path: str, key: str, edp: int) -> Optional[dict]:
    """Load one EDP's saved replay position, or ``None``.

    Any integrity failure — unreadable pickle, digest mismatch, a key
    or schema from different inputs — degrades to ``None``: the EDP is
    simply replayed from chunk 0, which is always correct.
    """
    try:
        with open(path, "rb") as handle:
            wrapper = pickle.load(handle)
        payload = wrapper["payload"]
        if hashlib.sha256(payload).hexdigest() != wrapper["sha256"]:
            return None
        state = pickle.loads(payload)
        if (
            state.get("schema") != _STREAM_STATE_SCHEMA
            or state.get("key") != key
            or state.get("edp") != int(edp)
        ):
            return None
        if not isinstance(state.get("next_chunk"), int):
            return None
        return state
    except Exception:
        return None


def _replay_edp_stream(
    spec: ReplaySpec,
    policy: ServingPolicy,
    edp: int,
    telemetry: SolverTelemetry = NULL_TELEMETRY,
    state_key: Optional[str] = None,
) -> EDPServingStats:
    """Replay one EDP's trace in bounded-memory chunks.

    The streamed counterpart of :func:`_replay_edp`: request blocks
    come from the spec's :class:`~repro.serve.stream.RequestStream` one
    :class:`~repro.serve.stream.RequestChunk` at a time, policy draws
    come from per-slot generators, and every per-slot accumulation
    happens in (slot, content) cell order — which is why results are
    bit-identical across chunk sizes, shard counts, and backends, and
    why the materialised oracle (one chunk spanning all slots) matches
    any chunking exactly.

    Warmup phase: slots below ``stream.warmup_slots`` mutate the cache
    and consume policy draws normally but touch no counters (icarus's
    warmup/measured split).  The ``policy.warm`` preload's backhaul is
    counted only when there is no warmup phase, matching the legacy
    path's accounting.

    With ``state_key`` set (and a ``stream_state_root`` on the spec),
    the replay position is persisted after every chunk and restored on
    re-entry, so a killed work item resumes mid-EDP instead of
    recomputing from slot 0; per-slot RNG keying means no generator
    state needs saving.  The chunk loop also consults the active fault
    plan under the label ``serve:<policy>:edp<e>:chunk<c>``, letting
    the test harness kill a replay between specific chunks.
    """
    stream = spec.stream
    assert stream is not None
    chunk_slots = spec.chunk_slots if spec.chunk_slots > 0 else stream.n_slots
    warmup = stream.warmup_slots
    dt = stream.dt

    sizes = spec.sizes_mb
    hit_lat = spec.hit_latency_s
    miss_lat = spec.miss_latency_s
    periods = spec.update_periods
    l_max = spec.l_max
    # Revenue table: price * size per (slot, content), so a whole
    # slot's revenue is one dot product with its request counts.
    revenue_tbl = np.asarray(spec.price, dtype=float) * np.asarray(
        sizes, dtype=float
    )[None, :]

    cache = EdgeCache(capacity_mb=spec.capacity_mb)
    stats = EDPServingStats(edp=edp)
    start_chunk = 0
    state_path = None
    if state_key is not None and spec.stream_state_root:
        state_path = _stream_state_path(spec.stream_state_root, state_key, edp)
        state = _load_stream_state(state_path, state_key, edp)
        if state is not None and state["next_chunk"] > 0:
            start_chunk = int(state["next_chunk"])
            (
                stats.requests,
                stats.hits,
                stats.staleness_violations,
                stats.refreshes,
                stats.backhaul_mb,
                stats.revenue,
                stats.latency_s,
            ) = state["stats"]
            for content, size_mb, fetched_at, last_used, hits in state["entries"]:
                entry = cache.store(int(content), float(size_mb), float(fetched_at))
                entry.last_used = float(last_used)
                entry.hits = int(hits)
            if telemetry.enabled:
                telemetry.event(
                    "stream.resumed",
                    policy=policy.name,
                    edp=int(edp),
                    chunk=start_chunk,
                )
    if start_chunk == 0:
        warm_mb = policy.warm(cache, 0.0)
        if warmup == 0:
            stats.backhaul_mb += warm_mb

    faults = active_fault_plan()
    n_chunks = stream.n_chunks(chunk_slots)
    for chunk_index in range(start_chunk, n_chunks):
        if faults is not None:
            faults.before_item(
                chunk_index,
                f"serve:{policy.name}:edp{edp}:chunk{chunk_index}",
            )
        chunk = stream.chunk(edp, chunk_index, chunk_slots)
        offsets = chunk.offsets()
        n_contents = chunk.n_contents
        for local_slot in range(chunk.n_slots):
            slot = chunk.start_slot + local_slot
            measured = slot >= warmup
            t = (slot + 0.5) * dt
            counts = chunk.counts[local_slot]
            nonzero = np.nonzero(counts)[0]
            if nonzero.size == 0:
                continue
            policy_rng = stream.policy_rng(edp, slot)
            if measured:
                stats.requests += int(counts.sum())
                stats.revenue += float(counts @ revenue_tbl[slot])
            for k in nonzero:
                k = int(k)
                c = int(counts[k])
                entry = cache.lookup(k)
                if entry is None:
                    # Miss: served from the cloud, fresh.  One admission
                    # decision per missed batch; victims leave until the
                    # new copy fits.
                    if cache.fits(sizes[k]) and policy.admit(
                        slot, k, c, cache, policy_rng
                    ):
                        while not cache.has_room(sizes[k]):
                            cache.evict(policy.victim(slot, cache, policy_rng))
                        entry = cache.store(k, sizes[k], t)
                        entry.hits += c - 1
                        if measured:
                            stats.backhaul_mb += sizes[k]
                            stats.hits += c - 1
                            stats.latency_s += miss_lat[k] + (c - 1) * hit_lat[k]
                    elif measured:
                        stats.backhaul_mb += c * sizes[k]
                        stats.latency_s += c * miss_lat[k]
                else:
                    # Hit: served at the edge; check freshness first.
                    age = t - entry.fetched_at
                    if age > 0.0 and policy.refresh_due(slot, k, age):
                        if measured:
                            stats.backhaul_mb += sizes[k]
                            stats.refreshes += 1
                        entry.fetched_at = t
                        age = 0.0
                    if age > 0.0 and measured:
                        cell = local_slot * n_contents + k
                        tol = (
                            (l_max - chunk.timeliness[offsets[cell]:offsets[cell + 1]])
                            / l_max
                            * periods[k]
                        )
                        stats.staleness_violations += int(
                            np.count_nonzero(age > tol)
                        )
                    entry.last_used = t
                    entry.hits += c
                    if measured:
                        stats.hits += c
                        stats.latency_s += c * hit_lat[k]
        if state_path is not None:
            _save_stream_state(
                state_path, state_key, edp, chunk_index + 1, stats, cache
            )
    if telemetry.enabled and cache.used_mb > spec.capacity_mb * (1 + 1e-9):
        # Invariant check: admission/eviction must never leave the
        # cache over capacity; an overshoot means a policy bug.
        telemetry.diag(
            "serve.occupancy",
            "error",
            value=float(cache.used_mb),
            threshold=float(spec.capacity_mb),
            message="edge cache occupancy exceeds capacity",
            edp=int(edp),
            policy=policy.name,
        )
    return stats


def replay_shard(
    spec: ReplaySpec,
    policy: ServingPolicy,
    edp_ids: Tuple[int, ...],
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> List[EDPServingStats]:
    """Replay one shard of EDPs (the ExecutionPlan work item).

    Module-level and argument-complete, so it pickles to pool workers;
    telemetry is the per-worker buffered observer the runtime injects.
    Dispatches to the chunked streaming replay when the spec carries a
    :class:`~repro.serve.stream.RequestStream`; stream state files of
    fully replayed EDPs are removed once the whole shard lands (the
    item-level checkpoint takes over from there).
    """
    with telemetry.span("replay_shard"):
        if spec.stream is not None:
            state_key = None
            if spec.stream_state_root:
                os.makedirs(spec.stream_state_root, exist_ok=True)
                state_key = stream_state_key(spec, policy)
            results = [
                _replay_edp_stream(
                    spec, policy, int(edp),
                    telemetry=telemetry, state_key=state_key,
                )
                for edp in edp_ids
            ]
            if state_key is not None:
                for edp in edp_ids:
                    try:
                        os.unlink(
                            _stream_state_path(
                                spec.stream_state_root, state_key, int(edp)
                            )
                        )
                    except FileNotFoundError:
                        pass
        else:
            results = [
                _replay_edp(spec, policy, int(edp), telemetry=telemetry)
                for edp in edp_ids
            ]
    if telemetry.enabled:
        # Staleness anomaly: an EDP serving most of its hits stale means
        # the refresh schedule is mis-tuned for this workload.
        stale_edps = [
            int(stats.edp)
            for stats in results
            if stats.requests > 0
            and stats.staleness_violations / stats.requests > 0.5
        ]
        if stale_edps:
            telemetry.diag(
                "serve.staleness",
                "warning",
                value=float(len(stale_edps)),
                threshold=0.5,
                message=(
                    f"{len(stale_edps)} EDPs exceed a 50% staleness-violation "
                    "rate"
                ),
                policy=policy.name,
                edps=stale_edps,
            )
        for stats in results:
            telemetry.inc("serve.requests", float(stats.requests))
            telemetry.inc("serve.hits", float(stats.hits))
            telemetry.inc("serve.misses", float(stats.misses))
            telemetry.inc("serve.staleness_violations",
                          float(stats.staleness_violations))
            telemetry.inc("serve.refreshes", float(stats.refreshes))
            telemetry.inc("serve.backhaul_mb", stats.backhaul_mb)
            telemetry.observe("serve.edp_hit_ratio", stats.hit_ratio)
            telemetry.observe("serve.edp_mean_latency_s", stats.mean_latency_s)
        telemetry.event(
            "serve_shard",
            policy=policy.name,
            edps=len(results),
            requests=sum(s.requests for s in results),
            hits=sum(s.hits for s in results),
        )
    return results


def _solve_content(
    config: MFGCPConfig, telemetry: SolverTelemetry = NULL_TELEMETRY
) -> EquilibriumResult:
    """Solve one content's equilibrium (ExecutionPlan work item)."""
    return BestResponseIterator(config, telemetry=telemetry).solve()


def _solve_content_batch(
    content_ids: Sequence[int],
    configs: Sequence[MFGCPConfig],
    telemetry: SolverTelemetry = NULL_TELEMETRY,
) -> List[EquilibriumResult]:
    """Solve one shard of content equilibria through the batched sweeps.

    ``content_ids`` (sorted) leads the argument tuple so checkpoint
    item keys distinguish batched shards from per-content items.
    """
    return BatchedBestResponseIterator(
        configs, content_ids=content_ids, telemetry=telemetry
    ).solve()


def equilibrium_configs(
    config: MFGCPConfig,
    popularity: Sequence[float],
    sizes_mb: Sequence[float],
    rate_per_edp: float,
    timeliness_mean: float,
) -> List[MFGCPConfig]:
    """One solver config per content, specialised to its demand share.

    Each content gets the base config specialised to its popularity
    share, size, and expected per-EDP request rate — the same
    per-content independence the Alg. 1 epoch loop exploits.  Shared
    by :class:`ServingEngine` and the network replay engine so both
    planes solve identical equilibria for identical workloads.
    """
    if len(sizes_mb) != len(popularity):
        raise ValueError(
            f"{len(sizes_mb)} sizes for {len(popularity)} popularity values"
        )
    return [
        replace(
            config,
            popularity=float(np.clip(p, 0.0, 1.0)),
            content_size=float(sizes_mb[k]),
            n_requests=float(rate_per_edp) * float(p),
            timeliness=float(timeliness_mean),
        )
        for k, p in enumerate(popularity)
    ]


def solve_equilibrium_map(
    configs: Sequence[MFGCPConfig],
    *,
    executor: ExecutorLike = None,
    telemetry: SolverTelemetry = NULL_TELEMETRY,
    solver_batching: bool = False,
    batch_size: int = 32,
    label_prefix: str = "serve_eq",
    span: str = "serve_solve_equilibria",
) -> Dict[int, EquilibriumResult]:
    """Solve per-content equilibria through the runtime (content → result).

    Fans the solves out as one :class:`~repro.runtime.ExecutionPlan`
    (per-content items, or one batched item per shard of at most
    ``batch_size`` contents when ``solver_batching`` is set); either
    path returns bit-identical equilibria.
    """
    if solver_batching and batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    runner = as_executor(executor)
    if solver_batching:
        shards = partition_batches(len(configs), batch_size)
        plan = ExecutionPlan.map(
            _solve_content_batch,
            [(shard, tuple(configs[k] for k in shard)) for shard in shards],
            labels=[
                f"{label_prefix}:batch{shard[0]}-{shard[-1]}"
                for shard in shards
            ],
            accepts_telemetry=True,
        )
    else:
        plan = ExecutionPlan.map(
            _solve_content,
            [(cfg,) for cfg in configs],
            labels=[f"{label_prefix}:content{k}" for k in range(len(configs))],
            accepts_telemetry=True,
        )
    if telemetry.live is not None:
        telemetry.live.set_phase(f"{label_prefix}:solve", total_items=len(plan))
    with telemetry.span(span):
        results = runner.run(plan, telemetry=telemetry)
    if solver_batching:
        return {
            int(k): res
            for shard, shard_results in zip(shards, results)
            for k, res in zip(shard, shard_results)
        }
    return dict(enumerate(results))


class ServingEngine:
    """Replay a workload against a population of EDP edge caches.

    Parameters
    ----------
    workload:
        A :class:`repro.content.workloads.Workload` (catalog,
        popularity, timeliness law, request process).
    n_edps:
        Population size ``M``.
    config:
        MFG-CP model constants (latency, pricing, equilibrium solves);
        defaults to the fast preset so ``mfg`` replays stay cheap.
    n_slots:
        Trace resolution; the replay horizon is ``config.horizon``.
    capacity_fraction / capacity_mb:
        Per-EDP edge storage, as a fraction of the catalog volume or
        absolute (absolute wins when both are given).
    rate_per_edp:
        Request intensity override; defaults to the workload's own.
    seed:
        Root seed for every per-EDP stream.
    shards:
        Replay shard count (defaults to ``min(n_edps, 8)``); pure
        parallel grain, never affects results.
    executor:
        A :mod:`repro.runtime` backend, spec string, or ``None``.
    telemetry:
        The run's observer (shared with equilibrium solves).
    solver_batching / batch_size:
        Solve the mfg policy's equilibria through the batched tensor
        pipeline — one work item per shard of at most ``batch_size``
        contents instead of one per content.  Results are
        bit-identical to the per-content path.
    stream:
        Optional :class:`~repro.serve.stream.RequestStream`.  When
        given, replay runs in bounded-memory chunks and the trace
        geometry (slots, dt, seed, rate, timeliness, popularity) is
        taken from the stream — the ``n_slots``, ``seed``, and
        ``rate_per_edp`` parameters must be left at their defaults.
        The streamed RNG keying (per ``(EDP, slot)`` spawn keys) is a
        *new* determinism domain: bit-stable in itself across chunk
        sizes, shard counts, and backends, but not bit-compatible with
        the materialised path at equal seeds.
    stream_chunk:
        Chunk size in slots for streamed replay (``0`` = the whole
        trace as one chunk).  Pure memory grain — never affects
        results.
    stream_state_dir:
        Optional directory for chunk-granular resume state; pair it
        with a checkpointing executor so an interrupted replay resumes
        mid-shard *and* mid-EDP.
    """

    def __init__(
        self,
        workload: Workload,
        n_edps: int,
        *,
        config: Optional[MFGCPConfig] = None,
        n_slots: int = 25,
        capacity_fraction: float = 0.3,
        capacity_mb: Optional[float] = None,
        rate_per_edp: Optional[float] = None,
        seed: int = 0,
        shards: Optional[int] = None,
        executor: ExecutorLike = None,
        telemetry: SolverTelemetry = NULL_TELEMETRY,
        solver_batching: bool = False,
        batch_size: int = 32,
        stream: Optional[RequestStream] = None,
        stream_chunk: int = 0,
        stream_state_dir: Optional[str] = None,
    ) -> None:
        if n_edps < 1:
            raise ValueError(f"need at least one EDP, got {n_edps}")
        if stream is not None and rate_per_edp is not None:
            raise ValueError(
                "rate_per_edp and stream are mutually exclusive: a stream "
                "fixes its own request rate"
            )
        if stream is not None and stream.n_edps != int(n_edps):
            raise ValueError(
                f"stream covers {stream.n_edps} EDPs but the engine was "
                f"asked for {n_edps}"
            )
        if stream_chunk < 0:
            raise ValueError(
                f"stream_chunk must be non-negative, got {stream_chunk}"
            )
        if solver_batching and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.solver_batching = bool(solver_batching)
        self.batch_size = int(batch_size)
        if not 0.0 < capacity_fraction <= 1.0 and capacity_mb is None:
            raise ValueError(
                f"capacity_fraction must lie in (0, 1], got {capacity_fraction}"
            )
        self.workload = workload
        self.config = config if config is not None else MFGCPConfig.fast()
        self.n_edps = int(n_edps)
        self.executor = as_executor(executor)
        self.telemetry = telemetry
        self.shards = min(self.n_edps, 8) if shards is None else int(shards)
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")

        catalog = workload.catalog
        if len(catalog) == 0:
            raise ValueError("workload catalog has no contents")
        self.sizes_mb = tuple(float(c.size_mb) for c in catalog)
        self.update_periods = tuple(float(c.update_period) for c in catalog)
        total = sum(self.sizes_mb)
        self.capacity_mb = (
            float(capacity_mb) if capacity_mb is not None
            else capacity_fraction * total
        )
        if self.capacity_mb < min(self.sizes_mb):
            raise ValueError(
                f"capacity {self.capacity_mb:.1f} MB holds no content "
                f"(smallest is {min(self.sizes_mb):.1f} MB)"
            )
        self.stream = stream
        self.stream_chunk = int(stream_chunk)
        self.stream_state_dir = (
            None if stream_state_dir is None else os.fspath(stream_state_dir)
        )
        if stream is not None:
            if stream.n_contents != len(catalog):
                raise ValueError(
                    f"stream catalog of {stream.n_contents} contents does not "
                    f"match the workload's {len(catalog)}"
                )
            # The stream fixes the trace geometry; the source mirrors it
            # so price paths, policy tables, and reports share one shape.
            self.source = RequestTraceSource(
                popularity=tuple(float(p) for p in stream.popularity),
                rate_per_edp=float(stream.rate_per_edp),
                timeliness=stream.timeliness,
                n_slots=int(stream.n_slots),
                dt=float(stream.dt),
                seed=int(stream.seed),
                n_edps=self.n_edps,
            )
        else:
            rate = (
                float(rate_per_edp) if rate_per_edp is not None
                else float(workload.requests.rate_per_edp)
            )
            self.source = RequestTraceSource(
                popularity=tuple(float(p) for p in workload.popularity),
                rate_per_edp=rate,
                timeliness=workload.timeliness_model,
                n_slots=int(n_slots),
                dt=self.config.horizon / int(n_slots),
                seed=int(seed),
                n_edps=self.n_edps,
            )
        self._equilibria: Optional[Dict[int, EquilibriumResult]] = None

    # ------------------------------------------------------------------
    # Equilibria (the mfg policy's input)
    # ------------------------------------------------------------------
    def solve_equilibria(self) -> Dict[int, EquilibriumResult]:
        """Per-content equilibria on this engine's executor (cached).

        Each content gets the engine config specialised to its
        popularity share, size, and expected per-EDP request rate —
        the same per-content independence the Alg. 1 epoch loop
        exploits, fanned out through the runtime.
        """
        if self._equilibria is None:
            configs = equilibrium_configs(
                self.config,
                self.source.popularity,
                self.sizes_mb,
                self.source.rate_per_edp,
                min(
                    self.workload.timeliness_model.mean(),
                    self.workload.timeliness_model.l_max,
                ),
            )
            self._equilibria = solve_equilibrium_map(
                configs,
                executor=self.executor,
                telemetry=self.telemetry,
                solver_batching=self.solver_batching,
                batch_size=self.batch_size,
            )
        return self._equilibria

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def build_policy(self, name: str) -> ServingPolicy:
        """Instantiate a policy by name (solving equilibria for mfg)."""
        key = str(name).strip().lower()
        kwargs = {}
        if key == "mfg":
            kwargs = dict(
                equilibria=self.solve_equilibria(),
                update_periods=self.update_periods,
                slot_times=self.source.slot_times(),
                horizon=self.source.horizon,
            )
        return make_policy(
            key,
            sizes_mb=self.sizes_mb,
            popularity=self.source.popularity,
            **kwargs,
        )

    def _price_path(self) -> np.ndarray:
        """Trading price per (slot, content).

        The mean-field price path (Eq. (17)) of each solved
        equilibrium when available, the flat ``p_hat`` otherwise.
        Shared by every policy of a comparison, so revenue differences
        come from serving outcomes, not from different markets.
        """
        n_slots, k = self.source.n_slots, self.source.n_contents
        if self._equilibria is None:
            return np.full((n_slots, k), float(self.config.p_hat))
        slot_times = self.source.slot_times()
        price = np.empty((n_slots, k))
        for idx, eq in self._equilibria.items():
            t_eq = slot_times / self.source.horizon * eq.config.horizon
            price[:, idx] = np.interp(t_eq, eq.grid.t, eq.mean_field.price)
        return price

    def spec(self) -> ReplaySpec:
        """The picklable replay recipe shards receive."""
        edge_rate = float(
            self.config.channel.rate_of_fading(
                np.asarray(self.config.channel.mean)
            )
        )
        if edge_rate <= 0:
            raise ValueError("edge wireless rate must be positive")
        hit_latency = tuple(size / edge_rate for size in self.sizes_mb)
        miss_latency = tuple(
            size / self.config.backhaul_rate + lat
            for size, lat in zip(self.sizes_mb, hit_latency)
        )
        return ReplaySpec(
            source=self.source,
            sizes_mb=self.sizes_mb,
            update_periods=self.update_periods,
            capacity_mb=self.capacity_mb,
            l_max=float(self.workload.timeliness_model.l_max),
            hit_latency_s=hit_latency,
            miss_latency_s=miss_latency,
            price=self._price_path(),
            eta2=float(self.config.eta2),
            backhaul_rate=float(self.config.backhaul_rate),
            stream=self.stream,
            chunk_slots=self.stream_chunk,
            stream_state_root=self.stream_state_dir,
        )

    def replay(self, policy: Union[str, ServingPolicy]) -> ServingReport:
        """Replay the full trace under one policy."""
        policy_obj = (
            policy if isinstance(policy, ServingPolicy)
            else self.build_policy(policy)
        )
        spec = self.spec()
        shards = partition_edps(self.n_edps, self.shards)
        plan = ExecutionPlan.map(
            replay_shard,
            [(spec, policy_obj, shard) for shard in shards],
            labels=[
                f"serve:{policy_obj.name}:shard{i}" for i in range(len(shards))
            ],
            accepts_telemetry=True,
        )
        live = self.telemetry.live
        if live is not None:
            live.set_phase(
                f"serve:replay:{policy_obj.name}", total_items=len(plan)
            )
            if self.stream is not None:
                chunk = self.stream_chunk or self.stream.n_slots
                live.set_stream(
                    workload=type(self.stream).__name__,
                    chunk_slots=chunk,
                    n_chunks=self.stream.n_chunks(chunk),
                    expected_requests=self.stream.expected_total_requests(),
                )

        def _shard_progress(outcome) -> None:
            # Fold each landed shard's serving counters into the live
            # windowed views (recent hit ratio, latency sketch).  Pure
            # side channel — the report below recomputes everything
            # from the ordered outcomes.
            if live is None or outcome.result is None:
                return
            for stats in outcome.result:
                live.note_requests(
                    stats.requests, hits=stats.hits, latency_s=stats.latency_s
                )

        with self.telemetry.span(f"serve_replay_{policy_obj.name}"):
            outcomes = self.executor.run(
                plan,
                telemetry=self.telemetry,
                progress=_shard_progress if live is not None else None,
            )
        lost = [i for i, shard in enumerate(outcomes) if shard is None]
        if lost and self.telemetry.enabled:
            # A skip/degrade fault policy dropped whole shards; report
            # the hole rather than silently under-counting EDPs.
            self.telemetry.diag(
                "serve.shard_dropped",
                "warning",
                value=float(len(lost)),
                message=(
                    f"{len(lost)} of {len(outcomes)} replay shards were "
                    "dropped by the fault policy"
                ),
                policy=policy_obj.name,
                shards=lost,
            )
        per_edp = tuple(
            stats
            for shard in outcomes
            if shard is not None
            for stats in shard
        )
        report = ServingReport(
            policy=policy_obj.name,
            n_slots=self.source.n_slots,
            dt=self.source.dt,
            seed=self.source.seed,
            eta2=float(self.config.eta2),
            backhaul_rate=float(self.config.backhaul_rate),
            per_edp=per_edp,
        )
        if self.telemetry.enabled:
            self.telemetry.gauge(
                f"serve.{policy_obj.name}.hit_ratio", report.hit_ratio
            )
            self.telemetry.event(
                "serving_report",
                policy=report.policy,
                requests=report.requests,
                hit_ratio=report.hit_ratio,
                staleness_violation_rate=report.staleness_violation_rate,
                backhaul_mb=report.backhaul_mb,
            )
        return report

    def compare(
        self, policies: Sequence[Union[str, ServingPolicy]]
    ) -> List[ServingReport]:
        """Replay the same trace under several policies.

        Equilibria are solved up front when ``mfg`` is among the
        policies so every report shares one price path; every replay
        consumes identical per-EDP request streams (same root seed),
        making the reports directly comparable request for request.
        """
        if not policies:
            raise ValueError("no policies to compare")
        if any(
            isinstance(p, str) and p.strip().lower() == "mfg" for p in policies
        ):
            self.solve_equilibria()
        return [self.replay(policy) for policy in policies]
