"""Content popularity: Zipf prior and the request-driven update, Eq. (3).

Definition 1 of the paper initialises the popularity of content ``k``
as a Zipf law

    Pi_k(t0) = (1 / k^iota) / sum_{k'=1}^{K} 1 / k'^iota

and updates it online from observed request counts:

    Pi_k(t) = ( K * Pi_k(t0) + |I_k(t)| ) / ( K + sum_k' |I_k'(t)| ).

This additive-smoothing form keeps the popularity vector a proper
probability distribution at all times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


def zipf_distribution(n_contents: int, exponent: float) -> np.ndarray:
    """Zipf probability vector over ranks ``1..n_contents``.

    Parameters
    ----------
    n_contents:
        Number of contents ``K``.
    exponent:
        Steepness ``iota > 0``; larger values concentrate demand on the
        top-ranked contents.
    """
    if n_contents < 1:
        raise ValueError(f"need at least one content, got {n_contents}")
    if exponent <= 0:
        raise ValueError(f"Zipf exponent must be positive, got {exponent}")
    ranks = np.arange(1, n_contents + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


@dataclass(frozen=True)
class ZipfPopularity:
    """The Zipf popularity prior of Def. 1.

    Examples
    --------
    >>> pop = ZipfPopularity(n_contents=5, exponent=0.8)
    >>> float(pop.initial().sum())
    1.0
    """

    n_contents: int
    exponent: float = 0.8

    def __post_init__(self) -> None:
        # Validation happens in zipf_distribution; trigger it eagerly so
        # misconfigured objects fail at construction time.
        zipf_distribution(self.n_contents, self.exponent)

    def initial(self) -> np.ndarray:
        """The prior ``Pi(t0)`` over all contents."""
        return zipf_distribution(self.n_contents, self.exponent)

    def updated(self, request_counts: Sequence[float]) -> np.ndarray:
        """Eq. (3): popularity refreshed by observed request counts."""
        counts = np.asarray(request_counts, dtype=float)
        if counts.shape != (self.n_contents,):
            raise ValueError(
                f"expected {self.n_contents} request counts, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("request counts must be non-negative")
        k = float(self.n_contents)
        return (k * self.initial() + counts) / (k + counts.sum())


@dataclass
class PopularityTracker:
    """Online popularity state shared by the simulator and the solver.

    Maintains the current popularity vector, applying Eq. (3) whenever
    a new batch of request counts is observed.  An optional exponential
    forgetting factor lets long simulations track drifting demand (the
    paper assumes demand changes slowly relative to one optimization
    epoch; with ``forgetting = 1.0`` the tracker matches Eq. (3)
    exactly, accumulating all history).

    Parameters
    ----------
    prior:
        The Zipf prior.
    forgetting:
        Multiplier in ``(0, 1]`` applied to accumulated counts before
        each new batch is added.
    """

    prior: ZipfPopularity
    forgetting: float = 1.0
    _accumulated: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.forgetting <= 1.0:
            raise ValueError(f"forgetting must lie in (0, 1], got {self.forgetting}")
        self._accumulated = np.zeros(self.prior.n_contents)

    @property
    def current(self) -> np.ndarray:
        """Current popularity vector (a probability distribution)."""
        return self.prior.updated(self._accumulated)

    def observe(self, request_counts: Sequence[float]) -> np.ndarray:
        """Fold a batch of request counts into the popularity state."""
        counts = np.asarray(request_counts, dtype=float)
        if counts.shape != self._accumulated.shape:
            raise ValueError(
                f"expected shape {self._accumulated.shape}, got {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("request counts must be non-negative")
        self._accumulated = self.forgetting * self._accumulated + counts
        return self.current

    def reset(self) -> None:
        """Drop all observed history, reverting to the Zipf prior."""
        self._accumulated = np.zeros_like(self._accumulated)

    def rank_order(self) -> np.ndarray:
        """Content indices sorted from most to least popular."""
        return np.argsort(-self.current, kind="stable")

    def top(self, n: int) -> np.ndarray:
        """Indices of the ``n`` currently most popular contents."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return self.rank_order()[:n]
