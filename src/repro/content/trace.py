"""YouTube-trending-style workload trace: synthetic generator + loader.

The paper's evaluation derives per-category request counts from the
Kaggle "Trending YouTube Video Statistics" dataset.  That dataset is
not available offline, so this module provides a drop-in substitute:

* :class:`SyntheticYouTubeTrace` generates records with the same schema
  (video id, category, tags, views, likes, comment count, publish
  time) whose per-category view totals follow a Zipf law with
  log-normal per-video noise — i.e. exactly the popularity prior the
  paper itself assumes (Def. 1), so everything downstream of the trace
  behaves identically.
* :func:`load_trace_csv` reads the real Kaggle CSV when present, with
  the same output type, so users with the dataset can swap it in.
* :func:`trace_to_popularity` converts either trace into the
  per-category request share consumed by
  :class:`repro.content.popularity.PopularityTracker`.

The substitution is recorded in DESIGN.md §3.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

# Category labels mirroring the YouTube trending category taxonomy; the
# paper selects K = 20 categories.
DEFAULT_CATEGORIES: Tuple[str, ...] = (
    "Film & Animation", "Autos & Vehicles", "Music", "Pets & Animals",
    "Sports", "Travel & Events", "Gaming", "People & Blogs",
    "Comedy", "Entertainment", "News & Politics", "Howto & Style",
    "Education", "Science & Technology", "Nonprofits & Activism",
    "Movies", "Shows", "Trailers", "Documentary", "Shorts",
)

_TAG_POOL: Tuple[str, ...] = (
    "viral", "trending", "new", "official", "live", "review", "tutorial",
    "highlights", "music video", "vlog", "funny", "breaking", "4k",
    "interview", "reaction", "episode", "gameplay", "news", "howto",
)


@dataclass(frozen=True)
class TraceRecord:
    """One trace row (matches the Kaggle schema fields the paper cites).

    ``receiver`` is an optional network attachment point: traces that
    carry a ``receiver`` column can drive multi-receiver cache-network
    replays (:mod:`repro.serve.net`), with each record's demand
    credited to that receiver's request stream.  ``None`` means the
    record is not pinned to any receiver.
    """

    video_id: str
    category: str
    tags: Tuple[str, ...]
    views: int
    likes: int
    comment_count: int
    publish_time: float
    description: str = ""
    receiver: Optional[int] = None

    def __post_init__(self) -> None:
        if self.views < 0 or self.likes < 0 or self.comment_count < 0:
            raise ValueError("views, likes and comment_count must be non-negative")
        if self.receiver is not None and self.receiver < 0:
            raise ValueError(f"receiver id must be non-negative, got {self.receiver}")


@dataclass
class SyntheticYouTubeTrace:
    """Synthetic stand-in for the Kaggle YouTube trending dataset.

    Per-category view totals follow ``Zipf(zipf_exponent)`` over a
    random permutation of the categories (so the "most popular" label
    varies by seed, as in the real data), and per-video views are the
    category share times a log-normal multiplicative factor.  Likes and
    comments are drawn as thinned binomials of views, mirroring the
    heavy correlation in the real dataset.

    Parameters
    ----------
    n_videos:
        Number of trace records to generate.
    categories:
        Category labels; defaults to a 20-category YouTube-like taxonomy
        (the paper's ``K = 20``).
    zipf_exponent:
        Steepness of category demand.
    total_views:
        Approximate sum of views across the trace.
    """

    n_videos: int = 2000
    categories: Sequence[str] = DEFAULT_CATEGORIES
    zipf_exponent: float = 0.8
    total_views: float = 5e7
    view_noise_sigma: float = 0.6
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if self.n_videos < 1:
            raise ValueError(f"n_videos must be positive, got {self.n_videos}")
        if len(self.categories) < 1:
            raise ValueError("need at least one category")
        if self.zipf_exponent <= 0:
            raise ValueError(f"zipf_exponent must be positive, got {self.zipf_exponent}")
        if self.total_views <= 0:
            raise ValueError(f"total_views must be positive, got {self.total_views}")

    def category_shares(self) -> Dict[str, float]:
        """Zipf demand share per category (random rank assignment)."""
        k = len(self.categories)
        ranks = np.arange(1, k + 1, dtype=float)
        weights = ranks ** (-self.zipf_exponent)
        weights /= weights.sum()
        order = self.rng.permutation(k)
        return {self.categories[int(i)]: float(weights[r]) for r, i in enumerate(order)}

    def generate(self) -> List[TraceRecord]:
        """Generate the full synthetic trace."""
        shares = self.category_shares()
        labels = list(shares)
        probs = np.array([shares[c] for c in labels])
        assignments = self.rng.choice(len(labels), size=self.n_videos, p=probs)
        mean_views = self.total_views / self.n_videos

        records: List[TraceRecord] = []
        for idx, cat_idx in enumerate(assignments):
            category = labels[int(cat_idx)]
            # Per-video views: category share times log-normal noise,
            # normalised so the trace total is ~total_views.
            base = mean_views * probs[int(cat_idx)] * len(labels)
            noise = self.rng.lognormal(mean=0.0, sigma=self.view_noise_sigma)
            views = max(1, int(base * noise))
            likes = int(self.rng.binomial(views, 0.03))
            comments = int(self.rng.binomial(views, 0.004))
            n_tags = int(self.rng.integers(1, 6))
            tags = tuple(self.rng.choice(_TAG_POOL, size=n_tags, replace=False))
            records.append(
                TraceRecord(
                    video_id=f"vid{idx:06d}",
                    category=category,
                    tags=tags,
                    views=views,
                    likes=likes,
                    comment_count=comments,
                    publish_time=float(self.rng.uniform(0.0, 30.0)),
                    description=f"synthetic record for {category}",
                )
            )
        return records


class TraceLoadResult(List[TraceRecord]):
    """The records parsed from a trace CSV, plus skip counts.

    A plain list of :class:`TraceRecord` (all existing callers keep
    working) carrying ``skipped_rows`` — how many data rows were
    dropped as malformed (short rows, missing category, non-numeric
    view counts) — and ``skipped_receivers``, the subset of those
    dropped specifically for a malformed ``receiver`` id (non-integer
    or negative) when the trace carries a receiver column.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord] = (),
        skipped_rows: int = 0,
        skipped_receivers: int = 0,
    ) -> None:
        super().__init__(records)
        self.skipped_rows = int(skipped_rows)
        self.skipped_receivers = int(skipped_receivers)


def _optional_count(value: object) -> int:
    """A best-effort non-negative int from an optional CSV cell."""
    try:
        return max(0, int(float(value)))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0


def load_trace_csv(
    path: Path,
    category_column: str = "category_id",
    views_column: str = "views",
    receiver_column: str = "receiver",
) -> TraceLoadResult:
    """Load a real Kaggle trending CSV into :class:`TraceRecord` rows.

    Only the columns the paper actually uses are required; missing
    optional columns default to zero/empty.  Real trending dumps are
    messy mid-file — short rows, missing categories, non-numeric view
    counts — so malformed *data* rows are skipped rather than aborting
    the load; the returned :class:`TraceLoadResult` counts them in
    ``skipped_rows``.  A missing header or required column still
    raises, since no row could ever parse.

    When the trace carries a ``receiver_column`` (optional; absent in
    the real Kaggle dumps), each row's receiver id is parsed into
    :attr:`TraceRecord.receiver` for cache-network replays.  An empty
    cell means "unpinned" (``receiver=None``); a malformed id
    (non-integer or negative) drops the row and is counted in both
    ``skipped_rows`` and ``skipped_receivers``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"trace file not found: {path}")
    records: List[TraceRecord] = []
    skipped = 0
    skipped_receivers = 0
    with path.open(newline="", encoding="utf-8", errors="replace") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or category_column not in reader.fieldnames:
            raise ValueError(
                f"trace file {path} lacks required column {category_column!r}"
            )
        has_receiver = receiver_column in reader.fieldnames
        for row_idx, row in enumerate(reader):
            category = row.get(category_column)
            if category is None or not str(category).strip():
                skipped += 1  # short row: DictReader pads with None
                continue
            try:
                views = int(float(row.get(views_column) or 0))
            except (TypeError, ValueError):
                skipped += 1
                continue
            receiver: Optional[int] = None
            if has_receiver:
                raw = str(row.get(receiver_column) or "").strip()
                if raw:
                    try:
                        receiver = int(raw)
                        if receiver < 0:
                            raise ValueError(raw)
                    except ValueError:
                        skipped += 1
                        skipped_receivers += 1
                        continue
            tags_raw = row.get("tags", "") or ""
            tags = tuple(t.strip(' "') for t in tags_raw.split("|") if t.strip(' "'))
            records.append(
                TraceRecord(
                    video_id=str(row.get("video_id") or f"row{row_idx}"),
                    category=str(category),
                    tags=tags,
                    views=max(0, views),
                    likes=_optional_count(row.get("likes", 0)),
                    comment_count=_optional_count(row.get("comment_count", 0)),
                    publish_time=0.0,
                    description=str(row.get("description", "") or ""),
                    receiver=receiver,
                )
            )
    return TraceLoadResult(
        records, skipped_rows=skipped, skipped_receivers=skipped_receivers
    )


def trace_receiver_popularity(
    records: Iterable[TraceRecord],
    n_receivers: int,
    n_contents: Optional[int] = None,
) -> Tuple[List[str], np.ndarray]:
    """Per-receiver demand shares from a receiver-annotated trace.

    Returns the global category labels (most viewed first, as in
    :func:`trace_to_popularity`) and an ``(n_receivers, n_contents)``
    matrix whose row ``r`` is receiver ``r``'s normalised demand over
    those categories — the shape
    :class:`repro.serve.net.NetworkReplayEngine` accepts as
    ``receiver_popularity``.  Records with ``receiver=None`` (or a
    receiver id outside ``range(n_receivers)``) spread their views
    uniformly across all receivers, so unpinned demand still counts.
    Receivers with no demand at all fall back to the global share.
    """
    if n_receivers < 1:
        raise ValueError(f"n_receivers must be positive, got {n_receivers}")
    records = list(records)
    labels, global_share = trace_to_popularity(records, n_contents=n_contents)
    index = {name: i for i, name in enumerate(labels)}
    totals = np.zeros((n_receivers, len(labels)))
    for rec in records:
        col = index.get(rec.category)
        if col is None:
            continue
        if rec.receiver is not None and 0 <= rec.receiver < n_receivers:
            totals[rec.receiver, col] += float(rec.views)
        else:
            totals[:, col] += float(rec.views) / n_receivers
    matrix = np.empty_like(totals)
    for r in range(n_receivers):
        mass = totals[r].sum()
        matrix[r] = totals[r] / mass if mass > 0 else global_share
    return labels, matrix


def trace_windows(
    records: Iterable[TraceRecord],
    n_windows: int,
    n_contents: Optional[int] = None,
) -> List[Tuple[List[str], np.ndarray]]:
    """Split a trace into publish-time windows of drifting demand.

    The synthetic trace stamps every record with a publish time; this
    helper buckets records into ``n_windows`` equal time windows and
    returns each window's per-category demand share on a *common*
    category axis (the globally most-viewed categories, so window
    vectors are directly comparable).  Feeding consecutive windows into
    :class:`repro.content.popularity.PopularityTracker` drives the
    Alg. 1 epoch loop with realistic popularity drift.

    Windows with no records inherit a uniform share (no information).
    """
    if n_windows < 1:
        raise ValueError(f"n_windows must be positive, got {n_windows}")
    records = list(records)
    if not records:
        raise ValueError("trace contains no records")
    labels, _ = trace_to_popularity(records, n_contents=n_contents)
    index = {name: i for i, name in enumerate(labels)}

    t_lo = min(r.publish_time for r in records)
    t_hi = max(r.publish_time for r in records)
    span = max(t_hi - t_lo, 1e-12)

    windows: List[Tuple[List[str], np.ndarray]] = []
    totals = [np.zeros(len(labels)) for _ in range(n_windows)]
    for rec in records:
        w = min(int((rec.publish_time - t_lo) / span * n_windows), n_windows - 1)
        if rec.category in index:
            totals[w][index[rec.category]] += float(rec.views)
    for w in range(n_windows):
        mass = totals[w].sum()
        if mass > 0:
            share = totals[w] / mass
        else:
            share = np.full(len(labels), 1.0 / len(labels))
        windows.append((list(labels), share))
    return windows


def trace_to_popularity(
    records: Iterable[TraceRecord],
    n_contents: Optional[int] = None,
) -> Tuple[List[str], np.ndarray]:
    """Aggregate a trace into a per-category request share.

    Returns the category labels (most viewed first, truncated to
    ``n_contents`` when given) and the matching normalised popularity
    vector.  This is the paper's workflow: "The number of requests for
    each category is obtained from real-world YouTube Data."
    """
    totals: Dict[str, float] = {}
    for rec in records:
        totals[rec.category] = totals.get(rec.category, 0.0) + float(rec.views)
    if not totals:
        raise ValueError("trace contains no records")
    ordered = sorted(totals.items(), key=lambda item: -item[1])
    if n_contents is not None:
        if n_contents < 1:
            raise ValueError(f"n_contents must be positive, got {n_contents}")
        ordered = ordered[:n_contents]
    labels = [name for name, _ in ordered]
    shares = np.array([v for _, v in ordered], dtype=float)
    total = shares.sum()
    if total <= 0:
        raise ValueError("trace has zero total views; cannot normalise")
    return labels, shares / total
