"""Content catalog.

The integrated cloud centre stores ``K`` content categories, each with
a data size ``Q_k`` and an update frequency (Section II-B).  The paper
evaluates with ``K = 20`` categories of ``Q_k = 100`` MB each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Content:
    """One content category stored at the cloud centre.

    Attributes
    ----------
    content_id:
        Index ``k`` into the catalog.
    size_mb:
        Data size ``Q_k`` in MB.
    name:
        Human-readable label (trace category name when trace-driven).
    update_period:
        How often the centre refreshes the content (time units); the
        paper's examples are traffic data (hourly) vs financial news
        (daily).  Purely descriptive in the model but carried so that
        examples can reason about staleness.
    """

    content_id: int
    size_mb: float
    name: str = ""
    update_period: float = 1.0

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError(f"size_mb must be positive, got {self.size_mb}")
        if self.update_period <= 0:
            raise ValueError(f"update_period must be positive, got {self.update_period}")


@dataclass
class ContentCatalog:
    """The set ``K`` of contents offered by the cloud centre."""

    contents: List[Content] = field(default_factory=list)

    @classmethod
    def uniform(cls, n_contents: int, size_mb: float = 100.0, names: Optional[Sequence[str]] = None) -> "ContentCatalog":
        """Catalog of ``n_contents`` equally sized contents (paper default)."""
        if n_contents < 1:
            raise ValueError(f"need at least one content, got {n_contents}")
        names = names if names is not None else [f"content-{k}" for k in range(n_contents)]
        if len(names) != n_contents:
            raise ValueError(f"got {len(names)} names for {n_contents} contents")
        contents = [
            Content(content_id=k, size_mb=size_mb, name=str(names[k]))
            for k in range(n_contents)
        ]
        return cls(contents=contents)

    @classmethod
    def from_sizes(cls, sizes_mb: Sequence[float]) -> "ContentCatalog":
        """Catalog with heterogeneous content sizes."""
        contents = [
            Content(content_id=k, size_mb=float(size), name=f"content-{k}")
            for k, size in enumerate(sizes_mb)
        ]
        return cls(contents=contents)

    def __len__(self) -> int:
        return len(self.contents)

    def __iter__(self) -> Iterator[Content]:
        return iter(self.contents)

    def __getitem__(self, k: int) -> Content:
        return self.contents[k]

    @property
    def sizes(self) -> np.ndarray:
        """Vector of content sizes ``Q_k`` in MB."""
        return np.array([c.size_mb for c in self.contents])

    @property
    def total_size(self) -> float:
        """Total catalog size in MB."""
        return float(self.sizes.sum())

    def validate_index(self, k: int) -> int:
        """Raise ``IndexError`` unless ``k`` names a catalog content."""
        if not 0 <= k < len(self.contents):
            raise IndexError(f"content index {k} out of range [0, {len(self.contents)})")
        return k
