"""Requester demand process.

Requests arrive per (EDP, content) pair.  The set ``I_{i,k}(t)`` of
requesters asking EDP ``i`` for content ``k`` at time ``t`` is sampled
as a Poisson count whose intensity splits a per-EDP demand rate across
contents proportionally to current popularity.  Each request carries a
timeliness requirement drawn from :class:`repro.content.timeliness.TimelinessModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.content.timeliness import TimelinessModel


@dataclass(frozen=True)
class RequestBatch:
    """Requests observed by one EDP in one time slot.

    Attributes
    ----------
    counts:
        ``|I_{i,k}(t)|`` per content, shape ``(n_contents,)``.
    timeliness:
        Per-content list of the requirements attached to each request;
        ``timeliness[k]`` has length ``counts[k]``.
    """

    counts: np.ndarray
    timeliness: List[np.ndarray]

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts)
        if counts.ndim != 1:
            raise ValueError(
                f"counts must be a vector (one entry per content), got "
                f"shape {counts.shape}"
            )
        if counts.shape[0] < 1:
            raise ValueError("a request batch needs at least one content")
        if np.any(counts < 0):
            raise ValueError(f"request counts must be non-negative, got {counts}")
        if len(self.timeliness) != counts.shape[0]:
            raise ValueError(
                f"{len(self.timeliness)} timeliness groups for "
                f"{counts.shape[0]} contents"
            )
        for k, (count, reqs) in enumerate(zip(self.counts, self.timeliness)):
            if len(reqs) != int(count):
                raise ValueError(
                    f"content {k}: {len(reqs)} requirements for {int(count)} requests"
                )

    @property
    def total(self) -> int:
        """Total number of requests across contents."""
        return int(self.counts.sum())

    def mean_timeliness(self, k: int, default: float = 0.0) -> float:
        """Average requirement for content ``k`` (Def. 2), or ``default``."""
        reqs = self.timeliness[k]
        return float(np.mean(reqs)) if len(reqs) else default


@dataclass
class RequestProcess:
    """Poisson request arrivals split across contents by popularity.

    Parameters
    ----------
    n_contents:
        Catalog size ``K``.
    rate_per_edp:
        Expected total requests a single EDP receives per unit time.
    timeliness_model:
        Law for per-request timeliness requirements.
    rng:
        Random generator.
    """

    n_contents: int
    rate_per_edp: float
    timeliness_model: TimelinessModel = field(default_factory=TimelinessModel)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if int(self.n_contents) != self.n_contents or self.n_contents < 1:
            raise ValueError(
                f"catalog must hold at least one content, got "
                f"n_contents={self.n_contents}"
            )
        if not np.isfinite(self.rate_per_edp) or self.rate_per_edp < 0:
            raise ValueError(
                f"rate_per_edp must be finite and non-negative, got "
                f"{self.rate_per_edp}"
            )

    def intensities(self, popularity: Sequence[float], dt: float) -> np.ndarray:
        """Per-content Poisson intensities for a slot of length ``dt``."""
        pop = np.asarray(popularity, dtype=float)
        if pop.shape != (self.n_contents,):
            raise ValueError(
                f"expected {self.n_contents} popularity values, got {pop.shape}"
            )
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if np.any(pop < 0):
            raise ValueError(f"popularity values must be non-negative, got {pop}")
        total = pop.sum()
        if total <= 0:
            raise ValueError("popularity vector must have positive mass")
        return self.rate_per_edp * dt * pop / total

    def sample(self, popularity: Sequence[float], dt: float) -> RequestBatch:
        """Sample one slot's requests for one EDP."""
        counts = self.rng.poisson(self.intensities(popularity, dt))
        timeliness = [
            self.timeliness_model.sample(int(c), self.rng) for c in counts
        ]
        return RequestBatch(counts=counts.astype(int), timeliness=timeliness)

    def sample_population(
        self, popularity: Sequence[float], dt: float, n_edps: int
    ) -> np.ndarray:
        """Request-count matrix for a population of EDPs.

        Returns shape ``(n_edps, n_contents)``; timeliness draws are
        omitted here because population-level experiments only need the
        counts (Def. 2's averages come from :meth:`sample` per EDP).
        """
        if n_edps < 1:
            raise ValueError(f"need at least one EDP, got {n_edps}")
        lam = self.intensities(popularity, dt)
        return self.rng.poisson(lam, size=(n_edps, self.n_contents))

    def expected_requests(self, popularity: Sequence[float], dt: float) -> np.ndarray:
        """Mean of :meth:`sample`'s counts (used by deterministic solvers)."""
        return self.intensities(popularity, dt)
