"""Content timeliness, Def. 2 of the paper.

Each requester attaches a timeliness requirement ``L_{i,k,j} in
[0, L_max]`` to its request; the content-level timeliness ``L_{i,k}(t)``
is the mean requirement over the current requesters.  Larger values
mean more urgent demand (e.g. drivers wanting live traffic data), and
enter the caching drift of Eq. (4) through the decreasing factor
``xi^L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TimelinessModel:
    """Population law for requester timeliness requirements.

    Requirements are drawn from a Beta distribution rescaled to
    ``[0, L_max]``; the Beta shape lets scenarios range from mostly lax
    (mass near 0) to mostly urgent (mass near ``L_max``).

    Attributes
    ----------
    l_max:
        Upper bound ``L_max`` of the requirement range.
    shape_a, shape_b:
        Beta shape parameters; the default (2, 2) is a symmetric hump
        with mean ``L_max / 2``.
    """

    l_max: float = 3.0
    shape_a: float = 2.0
    shape_b: float = 2.0

    def __post_init__(self) -> None:
        if self.l_max <= 0:
            raise ValueError(f"l_max must be positive, got {self.l_max}")
        if self.shape_a <= 0 or self.shape_b <= 0:
            raise ValueError("Beta shape parameters must be positive")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` per-requester timeliness requirements."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return self.l_max * rng.beta(self.shape_a, self.shape_b, size=n)

    def mean(self) -> float:
        """Population mean requirement."""
        return self.l_max * self.shape_a / (self.shape_a + self.shape_b)


@dataclass
class TimelinessTracker:
    """Per-content running timeliness ``L_k(t)`` (Def. 2).

    ``observe`` ingests the requirements attached to the current batch
    of requests for a content and returns the updated average.  When a
    content receives no requests the last value is retained, matching
    the paper's "approximated by the average value" definition which is
    only refreshed by live requests.
    """

    model: TimelinessModel
    n_contents: int
    initial: Optional[Sequence[float]] = None
    _values: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n_contents < 1:
            raise ValueError(f"need at least one content, got {self.n_contents}")
        if self.initial is not None:
            values = np.asarray(self.initial, dtype=float)
            if values.shape != (self.n_contents,):
                raise ValueError(
                    f"expected {self.n_contents} initial values, got {values.shape}"
                )
            if np.any(values < 0) or np.any(values > self.model.l_max):
                raise ValueError("initial timeliness values must lie in [0, l_max]")
            self._values = values.copy()
        else:
            self._values = np.full(self.n_contents, self.model.mean())

    @property
    def current(self) -> np.ndarray:
        """Current per-content timeliness vector ``L_k(t)``."""
        return self._values.copy()

    def observe(self, content: int, requirements: Sequence[float]) -> float:
        """Update content ``k``'s timeliness from a request batch."""
        if not 0 <= content < self.n_contents:
            raise IndexError(f"content index {content} out of range")
        reqs = np.asarray(requirements, dtype=float)
        if reqs.size == 0:
            return float(self._values[content])
        if np.any(reqs < 0) or np.any(reqs > self.model.l_max):
            raise ValueError("timeliness requirements must lie in [0, l_max]")
        self._values[content] = float(reqs.mean())
        return float(self._values[content])

    def urgency_factor(self, xi: float) -> np.ndarray:
        """The drift factor ``xi^{L_k(t)}`` of Eq. (4) for all contents."""
        if not 0.0 < xi < 1.0:
            raise ValueError(f"xi must lie in (0, 1), got {xi}")
        return np.power(xi, self._values)
