"""Canned workload scenarios.

Three ready-made scenarios mirroring the paper's motivating use cases,
each bundling a catalog, a popularity prior, a timeliness law, and a
request process so examples, tests, and user experiments can spin up a
realistic market in one line:

* :func:`video_marketplace` — trending videos (Zipf demand from a
  synthetic YouTube trace, relaxed timeliness);
* :func:`traffic_information` — live traffic data (flat-ish demand,
  urgent timeliness, small contents updated often);
* :func:`news_cycle` — breaking-news demand that drifts across epochs
  (returns per-window popularity vectors from a drifting trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.content.catalog import Content, ContentCatalog
from repro.content.popularity import PopularityTracker, ZipfPopularity
from repro.content.requests import RequestProcess
from repro.content.timeliness import TimelinessModel
from repro.content.trace import SyntheticYouTubeTrace, trace_to_popularity, trace_windows


@dataclass(frozen=True)
class Workload:
    """A fully specified demand scenario.

    Attributes
    ----------
    name:
        Scenario label.
    catalog:
        The contents on offer.
    popularity:
        Initial per-content demand share (a distribution).
    timeliness_model:
        Law of per-request urgency.
    requests:
        The arrival process (rates split by popularity).
    """

    name: str
    catalog: ContentCatalog
    popularity: np.ndarray
    timeliness_model: TimelinessModel
    requests: RequestProcess

    def __post_init__(self) -> None:
        pop = np.asarray(self.popularity, dtype=float)
        if pop.shape != (len(self.catalog),):
            raise ValueError(
                f"popularity shape {pop.shape} does not match "
                f"{len(self.catalog)} contents"
            )
        if np.any(pop < 0) or not np.isclose(pop.sum(), 1.0):
            raise ValueError("popularity must be a distribution over contents")
        object.__setattr__(self, "popularity", pop)

    def tracker(self, forgetting: float = 1.0) -> PopularityTracker:
        """A popularity tracker seeded with this workload's demand."""
        tracker = PopularityTracker(
            prior=ZipfPopularity(n_contents=len(self.catalog)),
            forgetting=forgetting,
        )
        tracker.observe(self.popularity * 1000.0)
        return tracker


def zipf_workload(
    n_contents: int = 12,
    alpha: float = 1.0,
    content_size_mb: float = 50.0,
    rate_per_edp: float = 40.0,
    seed: int = 0,
) -> Workload:
    """A bare Zipf(``alpha``) catalog — the classical cache benchmark.

    The workload cache-network experiments run on: ``n_contents``
    equally sized contents whose demand shares follow
    ``rank^(-alpha)``, with the relaxed video-style timeliness law.
    Rank 1 is content 0 (no permutation), so hit-ratio comparisons
    across runs and seeds talk about the same head and tail.
    """
    rng = np.random.default_rng(seed)
    popularity = ZipfPopularity(n_contents=n_contents, exponent=alpha).initial()
    catalog = ContentCatalog.uniform(n_contents, size_mb=content_size_mb)
    timeliness = TimelinessModel(l_max=3.0, shape_a=1.5, shape_b=4.0)  # lax
    return Workload(
        name=f"zipf-{alpha:g}",
        catalog=catalog,
        popularity=popularity,
        timeliness_model=timeliness,
        requests=RequestProcess(
            n_contents=n_contents,
            rate_per_edp=rate_per_edp,
            timeliness_model=timeliness,
            rng=rng,
        ),
    )


def video_marketplace(
    n_contents: int = 8,
    content_size_mb: float = 100.0,
    rate_per_edp: float = 30.0,
    seed: int = 0,
) -> Workload:
    """Trending-video trading: Zipf demand, relaxed urgency."""
    rng = np.random.default_rng(seed)
    trace = SyntheticYouTubeTrace(n_videos=1500, rng=rng)
    labels, shares = trace_to_popularity(trace.generate(), n_contents=n_contents)
    catalog = ContentCatalog.uniform(
        len(labels), size_mb=content_size_mb, names=labels
    )
    timeliness = TimelinessModel(l_max=3.0, shape_a=1.5, shape_b=4.0)  # lax
    return Workload(
        name="video-marketplace",
        catalog=catalog,
        popularity=shares,
        timeliness_model=timeliness,
        requests=RequestProcess(
            n_contents=len(labels),
            rate_per_edp=rate_per_edp,
            timeliness_model=timeliness,
            rng=rng,
        ),
    )


def traffic_information(
    n_roads: int = 6,
    content_size_mb: float = 20.0,
    rate_per_edp: float = 50.0,
    seed: int = 0,
) -> Workload:
    """Live traffic data: near-uniform demand, urgent timeliness.

    Small contents ("traffic flow data of several important roads")
    that the centre updates hourly; drivers want them immediately.
    """
    rng = np.random.default_rng(seed)
    catalog = ContentCatalog(
        contents=[
            # Hourly-updated road segments (the paper's own example).
            Content(
                content_id=k,
                size_mb=content_size_mb,
                name=f"road-{k}",
                update_period=1.0,
            )
            for k in range(n_roads)
        ]
    )
    # Demand is nearly uniform with mild hotspots.
    weights = 1.0 + 0.3 * rng.uniform(0, 1, n_roads)
    popularity = weights / weights.sum()
    timeliness = TimelinessModel(l_max=3.0, shape_a=6.0, shape_b=1.5)  # urgent
    return Workload(
        name="traffic-information",
        catalog=catalog,
        popularity=popularity,
        timeliness_model=timeliness,
        requests=RequestProcess(
            n_contents=n_roads,
            rate_per_edp=rate_per_edp,
            timeliness_model=timeliness,
            rng=rng,
        ),
    )


def news_cycle(
    n_contents: int = 6,
    n_windows: int = 3,
    content_size_mb: float = 100.0,
    rate_per_edp: float = 40.0,
    seed: int = 0,
) -> Tuple[Workload, List[np.ndarray]]:
    """Breaking-news demand: a workload plus per-window drift vectors.

    Returns the initial workload and the sequence of per-window demand
    shares (on the workload's content axis) to feed epoch by epoch into
    ``Workload.tracker().observe``.
    """
    rng = np.random.default_rng(seed)
    trace = SyntheticYouTubeTrace(n_videos=2000, zipf_exponent=0.7, rng=rng)
    records = trace.generate()
    windows = trace_windows(records, n_windows=n_windows, n_contents=n_contents)
    labels = windows[0][0]
    catalog = ContentCatalog.uniform(
        len(labels), size_mb=content_size_mb, names=labels
    )
    timeliness = TimelinessModel(l_max=3.0, shape_a=4.0, shape_b=2.0)  # newsy
    workload = Workload(
        name="news-cycle",
        catalog=catalog,
        popularity=windows[0][1],
        timeliness_model=timeliness,
        requests=RequestProcess(
            n_contents=len(labels),
            rate_per_edp=rate_per_edp,
            timeliness_model=timeliness,
            rng=rng,
        ),
    )
    return workload, [share for _, share in windows]
