"""Content substrate for MFG-CP.

Implements the paper's Section II-B content model and the Section V
trace-driven workload:

* the content catalog (:mod:`repro.content.catalog`),
* Zipf popularity with the request-driven update of Eq. (3)
  (:mod:`repro.content.popularity`),
* content timeliness, Def. 2 (:mod:`repro.content.timeliness`),
* the requester demand process (:mod:`repro.content.requests`), and
* the YouTube-trending-style trace generator and loader
  (:mod:`repro.content.trace`).
"""

from repro.content.catalog import Content, ContentCatalog
from repro.content.popularity import ZipfPopularity, PopularityTracker, zipf_distribution
from repro.content.timeliness import TimelinessModel, TimelinessTracker
from repro.content.requests import RequestProcess, RequestBatch
from repro.content.trace import (
    TraceLoadResult,
    SyntheticYouTubeTrace,
    TraceRecord,
    load_trace_csv,
    trace_receiver_popularity,
    trace_to_popularity,
    trace_windows,
)
from repro.content.workloads import (
    Workload,
    news_cycle,
    traffic_information,
    video_marketplace,
    zipf_workload,
)

__all__ = [
    "Content",
    "ContentCatalog",
    "ZipfPopularity",
    "PopularityTracker",
    "zipf_distribution",
    "TimelinessModel",
    "TimelinessTracker",
    "RequestProcess",
    "RequestBatch",
    "SyntheticYouTubeTrace",
    "TraceRecord",
    "TraceLoadResult",
    "load_trace_csv",
    "trace_receiver_popularity",
    "trace_to_popularity",
    "trace_windows",
    "Workload",
    "news_cycle",
    "traffic_information",
    "video_marketplace",
    "zipf_workload",
]
