"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness used by the runtime test suite and the CLI's debug-only
``--inject-faults`` flag.  :func:`normalized_events` is the canonical
event-stream normalisation behind the runtime determinism contract:
two runs are "bit-identical" when their normalised streams compare
equal (see ``docs/runtime.md``).
"""

from repro.testing.faults import (
    FAULT_ENV_VAR,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    WorkerKilled,
    active_fault_plan,
    clear_faults,
    install_faults,
    parse_fault_plan,
)

__all__ = [
    "FAULT_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedFault",
    "WorkerKilled",
    "active_fault_plan",
    "clear_faults",
    "install_faults",
    "parse_fault_plan",
    "normalized_events",
]

# Fields that are wall-clock or resource *measurements* rather than
# deterministic functions of solver state.  ``_s``-suffixed timing
# fields are stripped wholesale by normalized_events.
MEASURED_FIELDS = ("cpu_s", "rss_kb", "gc")

# Fault-layer bookkeeping: emitted by the resumable executor (or the
# streaming replay's chunk fast-forward) when a run was cached,
# retried, failed, or resumed mid-item, so by construction they differ
# between an uninterrupted run and a resumed or retried one.
BOOKKEEPING_EVENTS = ("item.cached", "item.retry", "item.failed", "stream.resumed")

# Event-kind prefixes that are wall-clock side channels, stripped
# wholesale.  ``live.*`` status/phase events are throttled on real
# time, so their *count* differs run to run even when the results are
# bit-identical.
SIDE_CHANNEL_PREFIXES = ("live.",)


def normalized_events(source):
    """Normalise a JSONL event stream for determinism comparisons.

    ``source`` is an iterable of event dicts, a ``StringIO``/file
    handle, or a path.  Strips sequence numbers, every ``*_s`` timing
    field, profiling measurements, the final ``metrics`` dump (its
    histograms hold timings), the fault-layer bookkeeping events, and
    the wall-clock-throttled ``live.*`` status events — everything
    left must be byte-identical between an uninterrupted run and any
    interrupted-resumed or retried equivalent.
    """
    from repro.obs.events import read_events_tolerant

    if hasattr(source, "read") or isinstance(source, (str, bytes)) or hasattr(
        source, "__fspath__"
    ):
        if hasattr(source, "seek"):
            source.seek(0)
        events, _ = read_events_tolerant(source)
    else:
        events = list(source)
    normalised = []
    for event in events:
        kind = event.get("ev")
        if kind == "metrics" or kind in BOOKKEEPING_EVENTS:
            continue
        if isinstance(kind, str) and kind.startswith(SIDE_CHANNEL_PREFIXES):
            continue
        clean = {
            k: v
            for k, v in event.items()
            if k != "seq" and not str(k).endswith("_s") and k not in MEASURED_FIELDS
        }
        normalised.append(clean)
    return normalised
